"""repro: efficient cube construction for smart city data.

A from-scratch reproduction of Scriney & Roantree (EDBT 2016): DWARF
cubes built from XML/JSON smart-city streams and stored through a
bi-directional mapper in a columnar NoSQL engine, evaluated against
three comparison schemas on MySQL-style and Cassandra-style substrates.

Quickstart::

    from repro import CubeConstructionPipeline
    from repro.smartcity import BikeFeedGenerator, bikes_pipeline
    from repro.mapping import NoSQLDwarfMapper

    docs = BikeFeedGenerator().generate_documents(days=1, total_records=7358)
    pipeline = CubeConstructionPipeline(bikes_pipeline(), NoSQLDwarfMapper())
    report = pipeline.run(docs)
    cube = pipeline.reload(report.schema_id)
    cube.value(station="Fenian St")
"""

from repro.core.aggregators import AVG, COUNT, MAX, MIN, SUM, Aggregator
from repro.core.errors import (
    PipelineError,
    QueryError,
    ReproError,
    SchemaError,
    TupleShapeError,
)
from repro.core.pipeline import CubeConstructionPipeline, PipelineReport
from repro.core.schema import CubeSchema, Dimension
from repro.core.tuples import FactTuple, TupleSet
from repro.dwarf import (
    ALL,
    DwarfBuilder,
    DwarfCube,
    build_cube,
    extract_subcube,
    merge_cubes,
)

__version__ = "1.0.0"

__all__ = [
    "ALL",
    "AVG",
    "Aggregator",
    "COUNT",
    "CubeConstructionPipeline",
    "CubeSchema",
    "Dimension",
    "DwarfBuilder",
    "DwarfCube",
    "FactTuple",
    "MAX",
    "MIN",
    "PipelineError",
    "PipelineReport",
    "QueryError",
    "ReproError",
    "SUM",
    "SchemaError",
    "TupleSet",
    "TupleShapeError",
    "build_cube",
    "extract_subcube",
    "merge_cubes",
]
