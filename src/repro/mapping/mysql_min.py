"""The MySQL-Min mapper: the join-free relational schema (paper §5).

The relational twin of NoSQL-Min: one cube registry plus one flat cell
table, no link tables, no secondary indexes — designed "to test how well
MySQL performs using a schema without joins".  Smallest on disk for the
small datasets (Table 4), at the price of node reconstruction work at
load time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.schema import CubeSchema
from repro.dwarf.cube import DwarfCube
from repro.mapping.base import (
    CellRecord,
    CubeMapper,
    MappingError,
    NodeRecord,
    StoredSchemaInfo,
    derive_levels,
    rebuild_cube,
    schema_from_rows,
    schema_to_rows,
    transform_cube,
)
from repro.sqldb.engine import SQLEngine

DEFAULT_DATABASE = "dwarf_mysql_min"

_DDL = [
    """
    CREATE TABLE IF NOT EXISTS DWARF_CUBE (
      id INT PRIMARY KEY,
      node_count INT,
      cell_count INT,
      size_as_mb INT,
      size_as_bytes INT
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS DWARF_CELL (
      id INT PRIMARY KEY,
      item INT,
      name VARCHAR(128),
      leaf BOOLEAN NOT NULL,
      root BOOLEAN NOT NULL,
      cubeid INT NOT NULL,
      parentNodeId INT,
      childNodeId INT
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS DWARF_DIMENSION (
      id INT PRIMARY KEY,
      schema_id INT,
      position INT,
      name VARCHAR(64),
      dimension_table VARCHAR(64),
      schema_name VARCHAR(64),
      measure VARCHAR(64),
      aggregator VARCHAR(16)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS DWARF_EPOCH (
      id INT PRIMARY KEY,
      epoch INT,
      base_id INT,
      delta_ids TEXT,
      retired_ids TEXT,
      pending_id INT
    )
    """,
]


class MySQLMinMapper(CubeMapper):
    """Single flat cell table in the relational engine."""

    name = "MySQL-Min"
    registry_table = "DWARF_CUBE"
    dimension_table = "DWARF_DIMENSION"
    epoch_table = "DWARF_EPOCH"

    def __init__(self, engine: Optional[SQLEngine] = None, database: str = DEFAULT_DATABASE) -> None:
        self.engine = engine or SQLEngine()
        self.database_name = database
        self.session = self.engine.connect()
        self._prepared: Dict[str, object] = {}
        self._compiled: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def install(self) -> None:
        self.session.execute(f"CREATE DATABASE IF NOT EXISTS {self.database_name}")
        self.session.execute(f"USE {self.database_name}")
        for ddl in _DDL:
            self.session.execute(ddl)
        self._prepared = {
            "cube": self.session.prepare(
                "INSERT INTO DWARF_CUBE (id, node_count, cell_count, size_as_mb) "
                "VALUES (?, ?, ?, ?)"
            ),
            "cell": self.session.prepare(
                "INSERT INTO DWARF_CELL (id, item, name, leaf, root, cubeid, "
                "parentNodeId, childNodeId) VALUES (?, ?, ?, ?, ?, ?, ?, ?)"
            ),
            "dimension": self.session.prepare(
                "INSERT INTO DWARF_DIMENSION (id, schema_id, position, name, "
                "dimension_table, schema_name, measure, aggregator) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)"
            ),
        }
        # The zero-parse fast path: the same statements fully planned so
        # store() streams record batches straight into the heap/B-trees.
        self._compiled = {
            name: self.session.compile_insert(prepared.text)
            for name, prepared in self._prepared.items()
        }

    def _next_ids(self) -> Dict[str, int]:
        rows = self.session.execute("SELECT * FROM DWARF_CUBE")
        cube_id = 1
        node_id = 1
        cell_id = 1
        for row in rows:
            cube_id = max(cube_id, row["id"] + 1)
            node_id += row["node_count"]
            cell_id += row["cell_count"]
        return {"cube": cube_id, "node": node_id, "cell": cell_id}

    # ------------------------------------------------------------------
    def store(
        self,
        cube: DwarfCube,
        is_cube: bool = False,
        probe_size: bool = True,
        compiled: bool = True,
    ) -> int:
        """Persist ``cube``; ``compiled`` selects the zero-parse fast path."""
        if not self._prepared:
            raise MappingError(f"{self.name}: call install() before store()")
        ids = self._next_ids()
        transformed = transform_cube(
            cube, first_node_id=ids["node"], first_cell_id=ids["cell"]
        )
        cube_id = ids["cube"]
        cube_row = (cube_id, len(transformed.nodes), len(transformed.cells), 0)
        cell_rows = (
            (
                r.cell_id, r.measure, r.key_text, r.is_leaf, r.is_root_cell,
                cube_id, r.parent_node_id, r.pointer_node_id,
            )
            for r in transformed.cells
        )
        dimension_rows = (
            (
                row["id"], row["schema_id"], row["position"], row["name"],
                row["dimension_table"], row["schema_name"], row["measure"],
                row["aggregator"],
            )
            for row in schema_to_rows(cube.schema, cube_id)
        )
        if compiled:
            self._compiled["cube"].execute(cube_row)
            self._compiled["cell"].execute_batch(cell_rows)
            self._compiled["dimension"].execute_batch(dimension_rows)
        else:
            self.session.execute_prepared(self._prepared["cube"], cube_row)
            self.session.execute_many(self._prepared["cell"], cell_rows)
            self.session.execute_many(self._prepared["dimension"], dimension_rows)
        if probe_size:
            self.probe_size(cube_id)
        return cube_id

    def probe_size(self, cube_id: int) -> int:
        size_bytes = self.size_bytes()
        size_mb = self._size_as_mb(size_bytes)
        self.session.execute(
            "UPDATE DWARF_CUBE SET size_as_mb = ?, size_as_bytes = ? WHERE id = ?",
            (size_mb, size_bytes, cube_id),
        )
        return size_mb

    # ------------------------------------------------------------------
    def info(self, schema_id: int) -> StoredSchemaInfo:
        row = self.session.execute(
            "SELECT * FROM DWARF_CUBE WHERE id = ?", (schema_id,)
        ).one()
        if row is None:
            raise MappingError(f"no stored cube with id {schema_id}")
        return StoredSchemaInfo(
            schema_id=row["id"],
            node_count=row["node_count"],
            cell_count=row["cell_count"],
            size_as_mb=row["size_as_mb"],
            entry_node_id=None,
            is_cube=False,
            size_as_bytes=row["size_as_bytes"],
        )

    def load(self, schema_id: int, schema: Optional[CubeSchema] = None) -> DwarfCube:
        self.info(schema_id)  # validates existence
        if schema is None:
            dimension_rows = list(
                self.session.execute(
                    "SELECT * FROM DWARF_DIMENSION WHERE schema_id = ?", (schema_id,)
                )
            )
            schema = schema_from_rows(dimension_rows)
        cell_rows = list(
            self.session.execute("SELECT * FROM DWARF_CELL WHERE cubeid = ?", (schema_id,))
        )
        cells = [
            CellRecord(
                cell_id=row["id"],
                key_text=row["name"],
                measure=row["item"],
                parent_node_id=row["parentNodeId"],
                pointer_node_id=row["childNodeId"],
                is_leaf=row["leaf"],
                is_root_cell=row["root"],
                dimension_table=None,
                level=0,
            )
            for row in cell_rows
        ]
        entry_node_id = self._entry_node_id(cells)
        levels = derive_levels(cells, entry_node_id)
        nodes = self._rebuild_node_records(cells, levels, entry_node_id)
        return rebuild_cube(schema, nodes, cells, entry_node_id)

    @staticmethod
    def _entry_node_id(cells: List[CellRecord]) -> int:
        for record in cells:
            if record.is_root_cell:
                return record.parent_node_id
        raise MappingError("stored cube has no root cells")

    @staticmethod
    def _rebuild_node_records(
        cells: List[CellRecord],
        levels: Dict[int, int],
        entry_node_id: int,
    ) -> List[NodeRecord]:
        children: Dict[int, List[int]] = {}
        parents: Dict[int, List[int]] = {}
        for record in cells:
            children.setdefault(record.parent_node_id, []).append(record.cell_id)
            if record.pointer_node_id is not None:
                parents.setdefault(record.pointer_node_id, []).append(record.cell_id)
        return [
            NodeRecord(
                node_id=node_id,
                level=levels.get(node_id, 0),
                is_root=node_id == entry_node_id,
                children_cell_ids=tuple(cell_ids),
                parent_cell_ids=tuple(parents.get(node_id, ())),
            )
            for node_id, cell_ids in children.items()
        ]

    # ------------------------------------------------------------------
    def delete_cube_rows(self, cube_id: int) -> int:
        """Remove one stored cube's cell/dimension rows (compaction).

        The ``DWARF_CUBE`` registry row is kept as an allocation
        watermark so ``_next_ids`` never reissues the reclaimed range.
        """
        reclaimed = self.session.execute(
            "DELETE FROM DWARF_CELL WHERE cubeid = ?", (cube_id,)
        ).rowcount
        reclaimed += self.session.execute(
            "DELETE FROM DWARF_DIMENSION WHERE schema_id = ?", (cube_id,)
        ).rowcount
        return reclaimed

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        return self.engine.database(self.database_name).size_bytes

    def reset(self) -> None:
        database = self.engine.database(self.database_name)
        for table in ("DWARF_CUBE", "DWARF_CELL", "DWARF_DIMENSION", "DWARF_EPOCH"):
            if database.has_table(table):
                self.session.execute(f"TRUNCATE {self.database_name}.{table}")
        database.checkpoint()
