"""The traversal lookup table (paper §4).

A DWARF contains multiple inheritance — nodes with several parent cells —
so the transformation "records each Node and Cell visited by assigning
them a unique ID.  Upon visiting a Cell or Node ... the lookup table is
first checked to ensure that is has not already been transformed."
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class LookupTable:
    """Assigns sequential unique ids to objects on first visit.

    Keyed by object identity; the table holds a reference to each object
    so CPython cannot recycle an id() while the table is alive.
    """

    def __init__(self, first_id: int = 1) -> None:
        self._next_id = first_id
        self._ids: Dict[int, int] = {}
        self._objects: Dict[int, object] = {}

    def seen(self, obj) -> bool:
        return id(obj) in self._ids

    def assign(self, obj) -> Tuple[int, bool]:
        """Return ``(unique_id, first_visit)`` for ``obj``."""
        key = id(obj)
        existing = self._ids.get(key)
        if existing is not None:
            return existing, False
        assigned = self._next_id
        self._next_id += 1
        self._ids[key] = assigned
        self._objects[key] = obj
        return assigned, True

    def id_of(self, obj) -> int:
        """The id previously assigned to ``obj`` (KeyError when unseen)."""
        return self._ids[id(obj)]

    def __len__(self) -> int:
        return len(self._ids)

    def items(self) -> Iterator[Tuple[object, int]]:
        for key, assigned in self._ids.items():
            yield self._objects[key], assigned
