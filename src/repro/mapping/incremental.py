"""Incremental cube maintenance: epochs, delta stores, background merge.

The batch pipeline stores one cube and queries it forever; a live feed
needs the stored cube to *follow* the stream.  This module adds the
maintenance loop on top of the existing mappers, with one small registry
table per storage schema (``dwarf_epoch`` / ``DWARF_EPOCH``):

==============  ======================================================
column          meaning
==============  ======================================================
``id``          the **logical** cube id clients query (stable forever;
                equals the first base's physical id)
``epoch``       bumped by every merge flip
``base_id``     physical id of the current merged base cube
``delta_ids``   physical ids of delta cubes not yet folded in
                (comma-joined; the pre-merge overlay)
``retired_ids`` tombstoned physical ids awaiting compaction
``pending_id``  physical id a store in flight intends to register
                (crash-recovery intent marker; 0 = none)
==============  ======================================================

Readers resolve the logical id through **one primary-key read** of this
row (:func:`resolve_epoch`) and then touch only the physical cubes it
names.  Appends add a delta id; a merge stores the folded cube under a
fresh physical id and then *flips* the row in a single UPDATE — epoch+1,
new base, empty delta list, old base + deltas tombstoned — so any query
sees either the pre-merge overlay (base + deltas) or the post-merge base,
never a torn mix.  :func:`compact_epoch` reclaims the tombstoned rows;
the one-line registry entries of retired cubes are kept as allocation
watermarks so ``_next_ids`` never reissues a reclaimed id range.

Crash safety: every store first records its predicted physical id in
``pending_id`` and clears it in the same UPDATE that publishes the
result.  After a crash (NoSQL: ``replay_commit_log``; SQL: the surviving
heap), :func:`recover_epoch` finds the orphaned intent, tombstones any
partially/fully written rows under that id, and leaves the last
*published* epoch authoritative — the overlay answers exactly as before
the crash.

:class:`CubeMaintainer` drives the loop in memory: build a delta per
micro-batch (:class:`~repro.dwarf.delta.DeltaDwarfBuilder`), store it,
and fold deltas into the base in a background thread while foreground
stored queries keep answering through the epoch row.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence, Tuple

from repro.dwarf.cube import DwarfCube
from repro.dwarf.delta import DeltaDwarfBuilder
from repro.mapping.base import CubeMapper, MappingError, cached_statement
from repro.telemetry import get_registry, get_tracer

__all__ = [
    "CubeMaintainer",
    "EpochView",
    "compact_epoch",
    "open_epoch",
    "recover_epoch",
    "resolve_epoch",
    "resolve_merge_deltas",
    "store_delta",
]

_REGISTRY = get_registry()
_G_CUBE_EPOCH = _REGISTRY.gauge(
    "cube_epoch", "current epoch of the maintained cube, by storage schema",
    labels=("schema",),
)
_M_DELTA_STORES = _REGISTRY.counter(
    "mapper_delta_stores_total", "delta cubes stored, by storage schema",
    labels=("schema",),
)
_M_EPOCH_FLIPS = _REGISTRY.counter(
    "mapper_epoch_flips_total", "merge flips published, by storage schema",
    labels=("schema",),
)
_M_RECLAIMED = _REGISTRY.counter(
    "mapper_compacted_rows_total",
    "tombstoned node/cell/link rows reclaimed by compaction",
    labels=("schema",),
)

#: Fold pending deltas into the base after this many appends when the
#: caller does not choose explicitly (``REPRO_MERGE_DELTAS``).
DEFAULT_MERGE_DELTAS = 4


def resolve_merge_deltas(merge_deltas: Optional[int] = None) -> int:
    """Merge cadence: explicit argument > ``REPRO_MERGE_DELTAS`` > 4."""
    import os

    if merge_deltas is None:
        env = os.environ.get("REPRO_MERGE_DELTAS", "").strip()
        if env:
            try:
                merge_deltas = int(env)
            except ValueError:
                merge_deltas = DEFAULT_MERGE_DELTAS
        else:
            merge_deltas = DEFAULT_MERGE_DELTAS
    return max(1, int(merge_deltas))


class EpochView:
    """One consistent read of a logical cube's epoch row."""

    __slots__ = (
        "logical_id", "epoch", "base_id", "delta_ids", "retired_ids", "pending_id",
    )

    def __init__(
        self,
        logical_id: int,
        epoch: int,
        base_id: int,
        delta_ids: Tuple[int, ...],
        retired_ids: Tuple[int, ...],
        pending_id: int,
    ) -> None:
        self.logical_id = logical_id
        self.epoch = epoch
        self.base_id = base_id
        self.delta_ids = delta_ids
        self.retired_ids = retired_ids
        self.pending_id = pending_id

    @property
    def cube_ids(self) -> Tuple[int, ...]:
        """Physical cubes a query must consult: base plus unfolded deltas."""
        return (self.base_id,) + self.delta_ids

    def __repr__(self) -> str:
        return (
            f"EpochView(logical={self.logical_id}, epoch={self.epoch}, "
            f"base={self.base_id}, deltas={self.delta_ids}, "
            f"retired={self.retired_ids}, pending={self.pending_id})"
        )


# ----------------------------------------------------------------------
# epoch-row I/O (dialect differences live in the mappers' table names)
# ----------------------------------------------------------------------
def _encode_ids(ids: Sequence[int]) -> str:
    return ",".join(str(i) for i in ids)


def _decode_ids(text: Optional[str]) -> Tuple[int, ...]:
    if not text:
        return ()
    return tuple(int(part) for part in text.split(","))


def _epoch_table(mapper: CubeMapper) -> Optional[str]:
    return getattr(mapper, "epoch_table", None)


def _has_epoch_table(mapper: CubeMapper) -> bool:
    if getattr(mapper, "_epoch_table_present", False):
        return True
    name = _epoch_table(mapper)
    if name is None:
        return False
    try:
        keyspace = getattr(mapper, "keyspace_name", None)
        if keyspace is not None:
            present = mapper.engine.keyspace(keyspace).has_table(name)
        else:
            present = mapper.engine.database(mapper.database_name).has_table(name)
    except Exception:
        present = False
    if present:
        # Only the positive answer is cached: install() may create the
        # table after the first probe.
        mapper._epoch_table_present = True
    return present


def resolve_epoch(mapper: CubeMapper, logical_id: int) -> Optional[EpochView]:
    """The epoch row for ``logical_id`` — one primary-key read — or
    ``None`` when the id is not a maintained cube (legacy stored cubes
    keep their direct physical-id semantics)."""
    if not _has_epoch_table(mapper):
        return None
    statement = cached_statement(
        mapper, f"SELECT * FROM {mapper.epoch_table} WHERE id = ?"
    )
    row = mapper.session.execute_prepared(statement, (logical_id,)).one()
    if row is None:
        return None
    return EpochView(
        logical_id=row["id"],
        epoch=row["epoch"],
        base_id=row["base_id"],
        delta_ids=_decode_ids(row["delta_ids"]),
        retired_ids=_decode_ids(row["retired_ids"]),
        pending_id=row["pending_id"] or 0,
    )


def require_epoch(mapper: CubeMapper, logical_id: int) -> EpochView:
    view = resolve_epoch(mapper, logical_id)
    if view is None:
        raise MappingError(
            f"{mapper.name}: no maintained cube with logical id {logical_id}"
        )
    return view


def _insert_epoch_row(mapper: CubeMapper, view: EpochView) -> None:
    statement = cached_statement(
        mapper,
        f"INSERT INTO {mapper.epoch_table} "
        "(id, epoch, base_id, delta_ids, retired_ids, pending_id) "
        "VALUES (?, ?, ?, ?, ?, ?)",
    )
    mapper.session.execute_prepared(
        statement,
        (
            view.logical_id,
            view.epoch,
            view.base_id,
            _encode_ids(view.delta_ids),
            _encode_ids(view.retired_ids),
            view.pending_id,
        ),
    )


def _update_epoch_row(mapper: CubeMapper, view: EpochView) -> None:
    """Publish ``view`` — one single-row UPDATE, the atomic flip point."""
    statement = cached_statement(
        mapper,
        f"UPDATE {mapper.epoch_table} SET epoch = ?, base_id = ?, "
        "delta_ids = ?, retired_ids = ?, pending_id = ? WHERE id = ?",
    )
    mapper.session.execute_prepared(
        statement,
        (
            view.epoch,
            view.base_id,
            _encode_ids(view.delta_ids),
            _encode_ids(view.retired_ids),
            view.pending_id,
            view.logical_id,
        ),
    )


def _predict_physical_id(mapper: CubeMapper) -> int:
    """The id the next ``store()`` will register (the intent marker).

    Valid while the caller holds the maintainer's write lock — nothing
    else may store into this mapper between prediction and store.
    """
    ids = mapper._next_ids()
    physical = ids.get("schema", ids.get("cube"))
    if physical is None:  # pragma: no cover - defensive
        raise MappingError(f"{mapper.name}: cannot predict next physical id")
    return physical


# ----------------------------------------------------------------------
# storage-side maintenance primitives
# ----------------------------------------------------------------------
def open_epoch(mapper: CubeMapper, base: DwarfCube) -> int:
    """Store ``base`` and open its maintenance epoch; returns the logical
    id clients query from now on."""
    if not _has_epoch_table(mapper):
        raise MappingError(
            f"{mapper.name}: install() must create {_epoch_table(mapper) or 'the epoch table'} "
            "before opening a maintained cube"
        )
    physical = mapper.store(base, is_cube=True)
    view = EpochView(
        logical_id=physical, epoch=0, base_id=physical,
        delta_ids=(), retired_ids=(), pending_id=0,
    )
    _insert_epoch_row(mapper, view)
    _G_CUBE_EPOCH.labels(mapper.name).set(0)
    return physical


def store_delta(mapper: CubeMapper, logical_id: int, delta: DwarfCube) -> int:
    """Persist one delta cube and publish it into the overlay.

    The intent marker (``pending_id``) is set before any row is written
    and cleared by the same UPDATE that appends the delta to
    ``delta_ids`` — a crash in between leaves a recoverable orphan, never
    a half-visible delta.
    """
    view = require_epoch(mapper, logical_id)
    with get_tracer().span("ingest.store_delta", schema=mapper.name):
        pending = _predict_physical_id(mapper)
        view.pending_id = pending
        _update_epoch_row(mapper, view)
        physical = mapper.store(delta, is_cube=False, probe_size=False)
        view.delta_ids = view.delta_ids + (physical,)
        view.pending_id = 0
        _update_epoch_row(mapper, view)
    _M_DELTA_STORES.labels(mapper.name).inc()
    return physical


def flip_epoch(mapper: CubeMapper, logical_id: int, merged: DwarfCube) -> Tuple[int, int]:
    """Store ``merged`` and atomically make it the new base.

    Returns ``(new_base_physical_id, new_epoch)``.  The superseded base
    and the folded deltas are tombstoned for :func:`compact_epoch`.
    """
    view = require_epoch(mapper, logical_id)
    pending = _predict_physical_id(mapper)
    view.pending_id = pending
    _update_epoch_row(mapper, view)
    new_id = mapper.store(merged, is_cube=True)
    retired = view.retired_ids + (view.base_id,) + view.delta_ids
    flipped = EpochView(
        logical_id=logical_id,
        epoch=view.epoch + 1,
        base_id=new_id,
        delta_ids=(),
        retired_ids=retired,
        pending_id=0,
    )
    _update_epoch_row(mapper, flipped)
    mapper.bump_cube_epoch()
    _M_EPOCH_FLIPS.labels(mapper.name).inc()
    _G_CUBE_EPOCH.labels(mapper.name).set(flipped.epoch)
    return new_id, flipped.epoch


def compact_epoch(mapper: CubeMapper, logical_id: int) -> int:
    """Reclaim the tombstoned physical cubes; returns rows deleted.

    Node/cell/link/dimension rows of every retired id are removed; the
    one-line registry entries stay behind as allocation watermarks (they
    keep ``_next_ids`` monotone so reclaimed id ranges are never reused).
    """
    view = require_epoch(mapper, logical_id)
    reclaimed = 0
    with get_tracer().span("ingest.compact", schema=mapper.name):
        for physical in view.retired_ids:
            reclaimed += mapper.delete_cube_rows(physical)
        view.retired_ids = ()
        _update_epoch_row(mapper, view)
    if reclaimed:
        _M_RECLAIMED.labels(mapper.name).inc(reclaimed)
    mapper.bump_cube_epoch()
    return reclaimed


def recover_epoch(mapper: CubeMapper, logical_id: int) -> EpochView:
    """Resolve an interrupted store after a crash.

    If the epoch row carries an intent marker, the store it announced
    never published: whatever rows it managed to write are tombstoned
    (when the physical id got as far as the registry) and the marker is
    cleared.  The last published epoch — base + overlay — remains
    authoritative and answers exactly as before the crash.
    """
    view = require_epoch(mapper, logical_id)
    if not view.pending_id:
        return view
    try:
        mapper.info(view.pending_id)
        registered = True
    except MappingError:
        registered = False
    if registered:
        view.retired_ids = view.retired_ids + (view.pending_id,)
    view.pending_id = 0
    _update_epoch_row(mapper, view)
    mapper.bump_cube_epoch()
    return view


# ----------------------------------------------------------------------
# the in-memory maintenance loop
# ----------------------------------------------------------------------
class CubeMaintainer:
    """Drive incremental maintenance of one stored cube.

    Holds the in-memory base and pending delta cubes, serialises every
    storage write behind one lock, and folds deltas into the base either
    synchronously (:meth:`merge`) or on a background thread
    (:meth:`merge_async`) while foreground queries read through the
    epoch row.
    """

    def __init__(
        self,
        mapper: CubeMapper,
        base: DwarfCube,
        logical_id: int,
        epoch: int = 0,
        deltas: Sequence[DwarfCube] = (),
    ) -> None:
        self.mapper = mapper
        self.schema = base.schema
        self.logical_id = logical_id
        self.epoch = epoch
        self._base_cube = base
        self._delta_cubes: List[DwarfCube] = list(deltas)
        self._delta_builder = DeltaDwarfBuilder(base.schema)
        self._write_lock = threading.Lock()
        self._merge_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, mapper: CubeMapper, base: DwarfCube) -> "CubeMaintainer":
        """Store ``base`` as a new maintained cube and start its loop."""
        logical_id = open_epoch(mapper, base)
        return cls(mapper, base, logical_id)

    @classmethod
    def attach(cls, mapper: CubeMapper, logical_id: int) -> "CubeMaintainer":
        """Resume maintenance of a stored cube (e.g. after a restart):
        the base and any unfolded deltas are reloaded from storage."""
        view = recover_epoch(mapper, logical_id)
        base = mapper.load(view.base_id)
        deltas = [mapper.load(delta_id) for delta_id in view.delta_ids]
        return cls(mapper, base, logical_id, epoch=view.epoch, deltas=deltas)

    # ------------------------------------------------------------------
    @property
    def base_cube(self) -> DwarfCube:
        """The in-memory merged base (foreground reads go to storage)."""
        return self._base_cube

    @property
    def pending_deltas(self) -> int:
        return len(self._delta_cubes)

    def view(self) -> EpochView:
        return require_epoch(self.mapper, self.logical_id)

    # ------------------------------------------------------------------
    def append(self, facts) -> int:
        """Build a delta cube from one micro-batch and publish it into
        the overlay; returns the delta's physical id."""
        delta = self._delta_builder.build_delta(facts)
        with self._write_lock:
            physical = store_delta(self.mapper, self.logical_id, delta)
            self._delta_cubes.append(delta)
        return physical

    def merge(self) -> int:
        """Fold every pending delta into the base and flip the epoch.

        Returns the epoch after the merge (unchanged when there was
        nothing to fold).
        """
        with self._write_lock:
            if not self._delta_cubes:
                return self.epoch
            merged = self._delta_builder.merge(self._base_cube, *self._delta_cubes)
            _, new_epoch = flip_epoch(self.mapper, self.logical_id, merged)
            self._base_cube = merged
            self._delta_cubes.clear()
            self._delta_builder.reset_memo()
            self.epoch = new_epoch
            return new_epoch

    def merge_async(self) -> threading.Thread:
        """Run :meth:`merge` on a background thread.

        Appends keep working (they serialise on the write lock) and
        foreground stored queries are answered from the pre-merge overlay
        until the flip publishes.  :meth:`wait` joins the thread.
        """
        thread = threading.Thread(
            target=self.merge, name=f"delta-merge-{self.logical_id}", daemon=True
        )
        self._merge_thread = thread
        thread.start()
        return thread

    def wait(self, timeout: Optional[float] = None) -> None:
        """Join an in-flight background merge (no-op when idle)."""
        thread = self._merge_thread
        if thread is not None:
            thread.join(timeout)
            if not thread.is_alive():
                self._merge_thread = None

    def compact(self) -> int:
        """Reclaim tombstoned rows of superseded physical cubes."""
        with self._write_lock:
            return compact_epoch(self.mapper, self.logical_id)

    # ------------------------------------------------------------------
    def value(self, *coordinates):
        """Answer a point query through the epoch row (overlay-aware)."""
        from repro.mapping.stored_query import stored_point_query

        return stored_point_query(self.mapper, self.logical_id, coordinates)

    def __repr__(self) -> str:
        return (
            f"CubeMaintainer({self.mapper.name}, logical={self.logical_id}, "
            f"epoch={self.epoch}, pending_deltas={self.pending_deltas})"
        )
