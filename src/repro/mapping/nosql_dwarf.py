"""The NoSQL-DWARF mapper: the paper's contribution (Table 1, §3–4).

Three column families model the DWARF: ``dwarf_schema`` (the registry and
traversal entry point), ``dwarf_node`` (parent/child cell-id sets — one
row per node, the relationships packed into ``set<int>`` columns) and
``dwarf_cell`` (key, measure, parent/pointer node ids, Fig. 3).  One
primary index per table, no secondary indexes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.core.schema import CubeSchema
from repro.dwarf.cube import DwarfCube
from repro.mapping.base import (
    CellRecord,
    CubeMapper,
    MappingError,
    NodeRecord,
    StoredSchemaInfo,
    cached_statement,
    derive_levels,
    rebuild_cube,
    schema_from_rows,
    schema_to_rows,
    transform_cube,
)
from repro.nosqldb.engine import NoSQLEngine

DEFAULT_KEYSPACE = "dwarf_warehouse"

_SCHEMA_DDL = """
CREATE TABLE IF NOT EXISTS dwarf_schema (
  id int PRIMARY KEY,
  node_count int,
  cell_count int,
  size_as_mb int,
  size_as_bytes int,
  entry_node_id int,
  is_cube boolean
)
"""

_NODE_DDL = """
CREATE TABLE IF NOT EXISTS dwarf_node (
  id int PRIMARY KEY,
  parentIds set<int>,
  childrenIds set<int>,
  root boolean,
  schema_id int
)
"""

_CELL_DDL = """
CREATE TABLE IF NOT EXISTS dwarf_cell (
  id int PRIMARY KEY,
  key text,
  measure int,
  parentNode int,
  pointerNode int,
  leaf boolean,
  schema_id int,
  dimension_table_name text
)
"""

_DIMENSION_DDL = """
CREATE TABLE IF NOT EXISTS dwarf_dimension (
  id int PRIMARY KEY,
  schema_id int,
  position int,
  name text,
  dimension_table text,
  schema_name text,
  measure text,
  aggregator text
)
"""

_EPOCH_DDL = """
CREATE TABLE IF NOT EXISTS dwarf_epoch (
  id int PRIMARY KEY,
  epoch int,
  base_id int,
  delta_ids text,
  retired_ids text,
  pending_id int
)
"""


class NoSQLDwarfMapper(CubeMapper):
    """Bi-directional DWARF ⇄ columnar-NoSQL mapping (the paper's model)."""

    name = "NoSQL-DWARF"
    registry_table = "dwarf_schema"
    dimension_table = "dwarf_dimension"
    epoch_table = "dwarf_epoch"

    def __init__(
        self,
        engine: Optional[NoSQLEngine] = None,
        keyspace: str = DEFAULT_KEYSPACE,
        compression: bool = True,
    ) -> None:
        self.engine = engine or NoSQLEngine()
        self.keyspace_name = keyspace
        self.compression = compression
        self.session = self.engine.connect()
        self._prepared: Dict[str, object] = {}
        self._compiled: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def install(self) -> None:
        self.session.execute(f"CREATE KEYSPACE IF NOT EXISTS {self.keyspace_name}")
        self.session.execute(f"USE {self.keyspace_name}")
        suffix = "" if self.compression else " WITH COMPRESSION = false"
        for ddl in (_SCHEMA_DDL, _NODE_DDL, _CELL_DDL, _DIMENSION_DDL, _EPOCH_DDL):
            self.session.execute(ddl.strip() + suffix)
        self._prepared = {
            "schema": self.session.prepare(
                "INSERT INTO dwarf_schema (id, node_count, cell_count, size_as_mb, "
                "entry_node_id, is_cube) VALUES (?, ?, ?, ?, ?, ?)"
            ),
            "node": self.session.prepare(
                "INSERT INTO dwarf_node (id, parentIds, childrenIds, root, schema_id) "
                "VALUES (?, ?, ?, ?, ?)"
            ),
            "cell": self.session.prepare(
                "INSERT INTO dwarf_cell (id, key, measure, parentNode, pointerNode, "
                "leaf, schema_id, dimension_table_name) VALUES (?, ?, ?, ?, ?, ?, ?, ?)"
            ),
            "dimension": self.session.prepare(
                "INSERT INTO dwarf_dimension (id, schema_id, position, name, "
                "dimension_table, schema_name, measure, aggregator) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)"
            ),
        }
        # The zero-parse fast path: the same statements fully planned so
        # store() streams record batches straight into the memtable.
        self._compiled = {
            name: self.session.compile_insert(prepared.text)
            for name, prepared in self._prepared.items()
        }

    # ------------------------------------------------------------------
    def _next_ids(self) -> Dict[str, int]:
        """Allocate the next schema/node/cell ids by querying the registry (§4)."""
        result = self.session.execute("SELECT * FROM dwarf_schema")
        schema_id = 1
        node_id = 1
        cell_id = 1
        for row in result:
            schema_id = max(schema_id, row["id"] + 1)
            node_id += row["node_count"]
            cell_id += row["cell_count"]
        return {"schema": schema_id, "node": node_id, "cell": cell_id}

    def store(
        self,
        cube: DwarfCube,
        is_cube: bool = False,
        probe_size: bool = True,
        compiled: bool = True,
    ) -> int:
        """Persist ``cube``.

        ``compiled=True`` (the default) streams the node/cell record
        batches through the zero-parse compiled-statement path;
        ``compiled=False`` keeps the per-row prepared-statement path.
        Both produce byte-identical storage.
        """
        if not self._prepared:
            raise MappingError(f"{self.name}: call install() before store()")
        ids = self._next_ids()
        transformed = transform_cube(
            cube, first_node_id=ids["node"], first_cell_id=ids["cell"]
        )
        schema_id = ids["schema"]
        schema_row = (
            schema_id,
            len(transformed.nodes),
            len(transformed.cells),
            0,
            transformed.entry_node_id,
            is_cube,
        )
        node_rows = (
            (
                record.node_id,
                set(record.parent_cell_ids),
                set(record.children_cell_ids),
                record.is_root,
                schema_id,
            )
            for record in transformed.nodes
        )
        cell_rows = (
            (
                record.cell_id,
                record.key_text,
                record.measure,
                record.parent_node_id,
                record.pointer_node_id,
                record.is_leaf,
                schema_id,
                record.dimension_table,
            )
            for record in transformed.cells
        )
        dimension_rows = (
            (
                row["id"],
                row["schema_id"],
                row["position"],
                row["name"],
                row["dimension_table"],
                row["schema_name"],
                row["measure"],
                row["aggregator"],
            )
            for row in schema_to_rows(cube.schema, schema_id)
        )
        if compiled:
            self._compiled["schema"].execute(schema_row)
            self._compiled["node"].execute_batch(node_rows)
            self._compiled["cell"].execute_batch(cell_rows)
            self._compiled["dimension"].execute_batch(dimension_rows)
        else:
            self.session.execute_prepared(self._prepared["schema"], schema_row)
            self.session.execute_batch(
                (self._prepared["node"], row) for row in node_rows
            )
            self.session.execute_batch(
                (self._prepared["cell"], row) for row in cell_rows
            )
            self.session.execute_batch(
                (self._prepared["dimension"], row) for row in dimension_rows
            )
        if probe_size:
            self.probe_size(schema_id)
        return schema_id

    def probe_size(self, schema_id: int) -> int:
        """Measure the store and write ``size_as_mb`` back (paper §4).

        Also records the exact byte count: sub-megabyte cubes at reduced
        ``REPRO_SCALE`` floor to 0 MB, and bench reporting needs a
        non-degenerate size column.
        """
        size_bytes = self.size_bytes()
        size_mb = self._size_as_mb(size_bytes)
        self.session.execute(
            "UPDATE dwarf_schema SET size_as_mb = ?, size_as_bytes = ? WHERE id = ?",
            (size_mb, size_bytes, schema_id),
        )
        return size_mb

    # ------------------------------------------------------------------
    def statements(self, cube: DwarfCube, schema_id: int = 1) -> Iterator[str]:
        """Literal CQL INSERTs for ``cube`` (the Fig. 3 transformation).

        The bulk path uses prepared statements instead; this generator is
        the textual form used in tests and the raw-CQL ablation bench.
        """
        transformed = transform_cube(cube)
        yield (
            "INSERT INTO dwarf_schema (id, node_count, cell_count, size_as_mb, "
            f"entry_node_id, is_cube) VALUES ({schema_id}, {len(transformed.nodes)}, "
            f"{len(transformed.cells)}, 0, {transformed.entry_node_id}, false)"
        )
        for record in transformed.nodes:
            parents = _cql_set(record.parent_cell_ids)
            children = _cql_set(record.children_cell_ids)
            yield (
                "INSERT INTO dwarf_node (id, parentIds, childrenIds, root, schema_id) "
                f"VALUES ({record.node_id}, {parents}, {children}, "
                f"{_cql_bool(record.is_root)}, {schema_id})"
            )
        for record in transformed.cells:
            yield (
                "INSERT INTO dwarf_cell (id, key, measure, parentNode, pointerNode, "
                "leaf, schema_id, dimension_table_name) VALUES ("
                f"{record.cell_id}, {_cql_text(record.key_text)}, "
                f"{_cql_opt(record.measure)}, {record.parent_node_id}, "
                f"{_cql_opt(record.pointer_node_id)}, {_cql_bool(record.is_leaf)}, "
                f"{schema_id}, {_cql_text_opt(record.dimension_table)})"
            )

    # ------------------------------------------------------------------
    def info(self, schema_id: int) -> StoredSchemaInfo:
        row = self.session.execute(
            "SELECT * FROM dwarf_schema WHERE id = ?", (schema_id,)
        ).one()
        if row is None:
            raise MappingError(f"no stored schema with id {schema_id}")
        return StoredSchemaInfo(
            schema_id=row["id"],
            node_count=row["node_count"],
            cell_count=row["cell_count"],
            size_as_mb=row["size_as_mb"],
            entry_node_id=row["entry_node_id"],
            is_cube=row["is_cube"],
            size_as_bytes=row["size_as_bytes"],
        )

    def list_schemas(self) -> List[StoredSchemaInfo]:
        rows = self.session.execute("SELECT * FROM dwarf_schema")
        return sorted(
            (
                StoredSchemaInfo(
                    r["id"], r["node_count"], r["cell_count"], r["size_as_mb"],
                    r["entry_node_id"], r["is_cube"], r["size_as_bytes"],
                )
                for r in rows
            ),
            key=lambda info: info.schema_id,
        )

    def load(self, schema_id: int, schema: Optional[CubeSchema] = None) -> DwarfCube:
        info = self.info(schema_id)
        if schema is None:
            dimension_rows = list(
                self.session.execute(
                    "SELECT * FROM dwarf_dimension WHERE schema_id = ? ALLOW FILTERING",
                    (schema_id,),
                )
            )
            schema = schema_from_rows(dimension_rows)
        cell_rows = self.session.execute(
            "SELECT * FROM dwarf_cell WHERE schema_id = ? ALLOW FILTERING", (schema_id,)
        )
        cells = [
            CellRecord(
                cell_id=row["id"],
                key_text=row["key"],
                measure=row["measure"],
                parent_node_id=row["parentNode"],
                pointer_node_id=row["pointerNode"],
                is_leaf=row["leaf"],
                is_root_cell=False,
                dimension_table=row["dimension_table_name"],
                level=0,
            )
            for row in cell_rows
        ]
        levels = derive_levels(cells, info.entry_node_id)
        node_rows = self.session.execute(
            "SELECT * FROM dwarf_node WHERE schema_id = ? ALLOW FILTERING", (schema_id,)
        )
        nodes = [
            NodeRecord(
                node_id=row["id"],
                level=levels.get(row["id"], 0),
                is_root=row["root"],
                children_cell_ids=tuple(row["childrenIds"] or ()),
                parent_cell_ids=tuple(row["parentIds"] or ()),
            )
            for row in node_rows
        ]
        return rebuild_cube(schema, nodes, cells, info.entry_node_id)

    # ------------------------------------------------------------------
    def delete_cube_rows(self, schema_id: int) -> int:
        """Remove one stored cube's node/cell/dimension rows (compaction).

        The ``dwarf_schema`` registry row is kept as an allocation
        watermark so ``_next_ids`` never reissues the reclaimed range.
        """
        reclaimed = 0
        for table in ("dwarf_node", "dwarf_cell", "dwarf_dimension"):
            rows = list(
                self.session.execute(
                    f"SELECT id FROM {table} WHERE schema_id = ? ALLOW FILTERING",
                    (schema_id,),
                )
            )
            delete = cached_statement(self, f"DELETE FROM {table} WHERE id = ?")
            for row in rows:
                self.session.execute_prepared(delete, (row["id"],))
            reclaimed += len(rows)
        return reclaimed

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        return self.engine.keyspace(self.keyspace_name).size_bytes

    def reset(self) -> None:
        keyspace = self.engine.keyspace(self.keyspace_name)
        for table in (
            "dwarf_schema", "dwarf_node", "dwarf_cell", "dwarf_dimension",
            "dwarf_epoch",
        ):
            if keyspace.has_table(table):
                self.session.execute(f"TRUNCATE {self.keyspace_name}.{table}")
        keyspace.clear_commit_log()


# ----------------------------------------------------------------------
# CQL literal formatting
# ----------------------------------------------------------------------
def _cql_text(value: str) -> str:
    escaped = value.replace("'", "''")
    return f"'{escaped}'"


def _cql_text_opt(value: Optional[str]) -> str:
    return "null" if value is None else _cql_text(value)


def _cql_opt(value: Optional[int]) -> str:
    return "null" if value is None else str(value)


def _cql_bool(value: bool) -> str:
    return "true" if value else "false"


def _cql_set(values) -> str:
    return "{" + ", ".join(str(v) for v in sorted(values)) + "}"
