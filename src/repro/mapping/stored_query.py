"""Query primitives over *stored* DWARF cubes (paper §3, §7).

The ``entry_node_id`` column "serves as the entry point for all traversal
functions" — these functions.  A :func:`stored_point_query` answers a
point/ALL query directly against the storage engine, without rebuilding
the whole cube, using whatever access paths the schema offers:

* **NoSQL-DWARF** — walk node rows by primary key; each node's
  ``childrenIds`` set gives the candidate cells, read by primary key.
* **NoSQL-Min** — no node rows: descend through the ``parentNodeId``
  *secondary index*, which is exactly the query workload the paper keeps
  those expensive indexes for.
* **MySQL-DWARF** — a NODE_CHILDREN prefix probe plus one batched CELL
  fetch per level.
* **MySQL-Min** — no node construct and no indexes: the paper predicts
  "a significant impact on query times as DWARF Node reconstruction is
  required"; the strategy scans the cube's cells once, reconstructs
  nodes in memory, and keeps the reconstruction in a version-guarded
  cache so repeated queries only rescan after a mutation.

All strategies return the same answers as
:meth:`repro.dwarf.cube.DwarfCube.value` on the reloaded cube, and all
fetch a node's candidate cells through the engines' batched multi-get
(``execute_many`` / ``select_many`` → ``get_many``) instead of one
session round-trip per cell (docs/read_path.md).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.errors import QueryError
from repro.dwarf.cell import ALL
from repro.mapping.base import ALL_KEY_TEXT, MappingError, encode_member
from repro.mapping.mysql_dwarf import MySQLDwarfMapper
from repro.mapping.mysql_min import MySQLMinMapper
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.mapping.nosql_min import NoSQLMinMapper


def _prepared(mapper, text: str):
    """A per-mapper prepared-statement cache for the stored-query walks.

    Each distinct statement shape is parsed and planned once per mapper;
    after that the walks only bind parameters.
    """
    cache = getattr(mapper, "_query_statements", None)
    if cache is None:
        cache = {}
        mapper._query_statements = cache
    statement = cache.get(text)
    if statement is None:
        statement = mapper.session.prepare(text)
        cache[text] = statement
    return statement


def stored_point_query(
    mapper,
    schema_id: int,
    coordinates: Sequence,
):
    """Answer a point query against the stored cube ``schema_id``.

    ``coordinates`` holds one entry per dimension — a member value or
    :data:`~repro.dwarf.ALL`.  Returns the aggregate (or ``None`` when no
    fact matches), identical to ``mapper.load(schema_id).value(...)``.
    """
    strategy = _STRATEGIES.get(type(mapper))
    if strategy is None:
        raise MappingError(f"no stored-query strategy for {type(mapper).__name__}")
    keys = [ALL_KEY_TEXT if c is ALL else encode_member(c) for c in coordinates]
    return strategy(mapper, schema_id, keys)


# ----------------------------------------------------------------------
# NoSQL-DWARF: primary-key walks over node and cell rows
# ----------------------------------------------------------------------
def _nosql_dwarf_point(mapper: NoSQLDwarfMapper, schema_id: int, keys: List[str]):
    session = mapper.session
    info = mapper.info(schema_id)
    node_statement = _prepared(mapper, "SELECT childrenIds FROM dwarf_node WHERE id = ?")
    cell_statement = _prepared(mapper, "SELECT * FROM dwarf_cell WHERE id = ?")
    node_id: Optional[int] = info.entry_node_id
    measure = None
    for level, key_text in enumerate(keys):
        if node_id is None:
            return None
        node_row = session.execute_prepared(node_statement, (node_id,)).one()
        if node_row is None:
            raise MappingError(f"stored node {node_id} missing")
        cell_ids = sorted(node_row["childrenIds"] or ())
        # One batched multi-get for all candidate cells of this node —
        # grouped by SSTable block — instead of one round-trip per cell.
        match = None
        for result in session.execute_many(cell_statement, [(c,) for c in cell_ids]):
            cell = result.one()
            if cell is not None and cell["key"] == key_text:
                match = cell
                break
        if match is None:
            return None
        node_id = match["pointerNode"]
        measure = match["measure"]
        if match["leaf"] and level != len(keys) - 1:
            raise QueryError("coordinate vector longer than the stored cube's depth")
    return measure


# ----------------------------------------------------------------------
# NoSQL-Min: descend through the parentNodeId secondary index
# ----------------------------------------------------------------------
def _nosql_min_point(mapper: NoSQLMinMapper, schema_id: int, keys: List[str]):
    session = mapper.session
    mapper.info(schema_id)  # validate
    node_id: Optional[int] = mapper._entry_cache.get(schema_id)
    if node_id is None:
        # No entry_node_id in Table 3: one filtered scan, then cached.
        first = session.execute_prepared(
            _prepared(
                mapper,
                "SELECT * FROM dwarf_cell WHERE root = true AND cubeid = ? ALLOW FILTERING",
            ),
            (schema_id,),
        ).one()
        if first is None:
            return None
        node_id = first["parentNodeId"]
        mapper._entry_cache[schema_id] = node_id
    sibling_statement = _prepared(
        mapper, "SELECT * FROM dwarf_cell WHERE parentNodeId = ?"
    )
    measure = None
    for key_text in keys:
        if node_id is None:
            return None
        # The secondary index the schema pays for (paper §5.1); the index
        # resolves its candidate keys through the batched multi-get.
        siblings = session.execute_prepared(sibling_statement, (node_id,))
        match = next((row for row in siblings if row["name"] == key_text), None)
        if match is None:
            return None
        node_id = match["childNodeId"]
        measure = match["item"]
    return measure


# ----------------------------------------------------------------------
# MySQL-DWARF: a NODE_CHILDREN prefix probe + one batched CELL fetch per level
# ----------------------------------------------------------------------
def _mysql_dwarf_point(mapper: MySQLDwarfMapper, schema_id: int, keys: List[str]):
    session = mapper.session
    info = mapper.info(schema_id)
    children_statement = _prepared(
        mapper, "SELECT cell_id FROM NODE_CHILDREN WHERE node_id = ?"
    )
    cell_statement = _prepared(
        mapper, "SELECT id, cell_key, measure, leaf FROM CELL WHERE id = ?"
    )
    pointer_statement = _prepared(
        mapper, "SELECT node_id FROM CELL_CHILDREN WHERE cell_id = ?"
    )
    node_id: Optional[int] = info.entry_node_id
    measure = None
    for key_text in keys:
        if node_id is None:
            return None
        # Clustered-prefix probe for the link rows, then all candidate
        # cells in one batched point-select (Table.get_many) — same rows,
        # in the same (cell_id-ascending) order, as the old per-level
        # NODE_CHILDREN ⋈ CELL hash join.
        children = session.execute_prepared(children_statement, (node_id,))
        cell_ids = sorted(link["cell_id"] for link in children)
        match = None
        for result in session.select_many(cell_statement, [(c,) for c in cell_ids]):
            cell = result.one()
            if cell is not None and cell["cell_key"] == key_text:
                match = cell
                break
        if match is None:
            return None
        measure = match["measure"]
        if match["leaf"]:
            node_id = None
        else:
            pointer = session.execute_prepared(
                pointer_statement, (match["id"],)
            ).one()
            node_id = pointer["node_id"] if pointer else None
    return measure


# ----------------------------------------------------------------------
# MySQL-Min: scan once, reconstruct nodes, walk in memory
# ----------------------------------------------------------------------
def _mysql_min_point(mapper: MySQLMinMapper, schema_id: int, keys: List[str]):
    session = mapper.session
    mapper.info(schema_id)  # validate
    table = session.engine.database(mapper.database_name).table("DWARF_CELL")
    # The reconstruction is cached against the table's mutation counter:
    # repeated queries walk the cached node map and only rescan after a
    # write invalidates it (cf. the paper's "DWARF Node reconstruction
    # is required" cost, paid once per table version instead of per query).
    cache = getattr(mapper, "_reconstruction_cache", None)
    if cache is None:
        cache = {}
        mapper._reconstruction_cache = cache
    cached = cache.get(schema_id)
    if cached is not None and cached[0] == table.version:
        _, by_parent, entry = cached
    else:
        rows = list(
            session.execute_prepared(
                _prepared(mapper, "SELECT * FROM DWARF_CELL WHERE cubeid = ?"),
                (schema_id,),
            )
        )
        if not rows:
            return None
        by_parent: Dict[int, List[dict]] = {}
        entry: Optional[int] = None
        for row in rows:
            by_parent.setdefault(row["parentNodeId"], []).append(row)
            if row["root"]:
                entry = row["parentNodeId"]
        if entry is None:
            raise MappingError("stored cube has no root cells")
        cache[schema_id] = (table.version, by_parent, entry)
    node_id: Optional[int] = entry
    measure = None
    for key_text in keys:
        if node_id is None:
            return None
        match = next(
            (row for row in by_parent.get(node_id, ()) if row["name"] == key_text),
            None,
        )
        if match is None:
            return None
        node_id = match["childNodeId"]
        measure = match["item"]
    return measure


_STRATEGIES = {
    NoSQLDwarfMapper: _nosql_dwarf_point,
    NoSQLMinMapper: _nosql_min_point,
    MySQLDwarfMapper: _mysql_dwarf_point,
    MySQLMinMapper: _mysql_min_point,
}


# ----------------------------------------------------------------------
# declarative select over the stored NoSQL-DWARF cube
# ----------------------------------------------------------------------
def stored_select(
    mapper: NoSQLDwarfMapper,
    schema_id: int,
    constraints: Optional[Mapping[str, object]] = None,
    **by_name,
):
    """Run a :mod:`repro.dwarf.query`-style query against storage.

    Accepts the same constraint vocabulary (``Member``/``In``/``Range``/
    ``Each``/``All``) keyed by dimension name; unmentioned dimensions
    aggregate through their ALL cells.  Yields ``(coordinates, value)``
    pairs exactly like :func:`repro.dwarf.query.select`, but every node
    and cell is read from the column families on demand — nothing is
    rebuilt in memory.

    Implemented for the paper's primary schema (NoSQL-DWARF), whose node
    rows make the walk a sequence of primary-key reads.
    """
    from repro.dwarf.query import All, Constraint, Each, In, Member, Range
    from repro.mapping.base import decode_member, schema_from_rows

    if not isinstance(mapper, NoSQLDwarfMapper):
        raise MappingError("stored_select is implemented for NoSQL-DWARF storage")
    spec = dict(constraints or {})
    spec.update(by_name)

    dimension_rows = list(
        mapper.session.execute(
            "SELECT * FROM dwarf_dimension WHERE schema_id = ? ALLOW FILTERING",
            (schema_id,),
        )
    )
    schema = schema_from_rows(dimension_rows)
    per_level: List[object] = [All()] * schema.n_dimensions
    for name, constraint in spec.items():
        if not isinstance(constraint, Constraint):
            raise QueryError(f"constraint for {name!r} must be a Constraint")
        per_level[schema.dimension_index(name)] = constraint

    session = mapper.session
    info = mapper.info(schema_id)
    n_dims = schema.n_dimensions

    node_statement = _prepared(mapper, "SELECT childrenIds FROM dwarf_node WHERE id = ?")
    cell_statement = _prepared(mapper, "SELECT * FROM dwarf_cell WHERE id = ?")

    def cells_of(node_id: int) -> List[dict]:
        node_row = session.execute_prepared(node_statement, (node_id,)).one()
        if node_row is None:
            raise MappingError(f"stored node {node_id} missing")
        cell_ids = sorted(node_row["childrenIds"] or ())
        cells = []
        for result in session.execute_many(cell_statement, [(c,) for c in cell_ids]):
            cell = result.one()
            if cell is not None:
                cells.append(cell)
        return cells

    def matching(constraint, cells: List[dict]) -> List[dict]:
        ordinary = [c for c in cells if c["key"] != ALL_KEY_TEXT]
        if isinstance(constraint, All):
            return [c for c in cells if c["key"] == ALL_KEY_TEXT]
        if isinstance(constraint, Member):
            wanted = encode_member(constraint.key)
            return [c for c in ordinary if c["key"] == wanted]
        if isinstance(constraint, In):
            wanted = {encode_member(k) for k in constraint.keys}
            return [c for c in ordinary if c["key"] in wanted]
        if isinstance(constraint, Range):
            inside = []
            for cell in ordinary:
                member = decode_member(cell["key"])
                try:
                    if constraint.lo <= member <= constraint.hi:
                        inside.append(cell)
                except TypeError:
                    continue
            return inside
        if isinstance(constraint, Each):
            return ordinary
        raise QueryError(f"unsupported constraint {constraint!r}")

    def walk(node_id: Optional[int], level: int, coords: tuple):
        if node_id is None:
            return
        constraint = per_level[level]
        grouped = constraint.grouped
        for cell in matching(constraint, cells_of(node_id)):
            if grouped:
                next_coords = coords + (decode_member(cell["key"]),)
            else:
                next_coords = coords
            if level == n_dims - 1:
                yield next_coords, cell["measure"]
            else:
                yield from walk(cell["pointerNode"], level + 1, next_coords)

    yield from walk(info.entry_node_id, 0, ())
