"""Query primitives over *stored* DWARF cubes (paper §3, §7).

The ``entry_node_id`` column "serves as the entry point for all traversal
functions" — these functions.  A :func:`stored_point_query` answers a
point/ALL query directly against the storage engine, without rebuilding
the whole cube, using whatever access paths the schema offers:

* **NoSQL-DWARF** — walk node rows by primary key; each node's
  ``childrenIds`` set gives the candidate cells, read by primary key.
* **NoSQL-Min** — no node rows: descend through the ``parentNodeId``
  *secondary index*, which is exactly the query workload the paper keeps
  those expensive indexes for.
* **MySQL-DWARF** — one NODE_CHILDREN ⋈ CELL join per level.
* **MySQL-Min** — no node construct and no indexes: the paper predicts
  "a significant impact on query times as DWARF Node reconstruction is
  required"; the strategy scans the cube's cells once and reconstructs
  nodes in memory before walking.

All strategies return the same answers as
:meth:`repro.dwarf.cube.DwarfCube.value` on the reloaded cube.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.errors import QueryError
from repro.dwarf.cell import ALL
from repro.mapping.base import ALL_KEY_TEXT, MappingError, encode_member
from repro.mapping.mysql_dwarf import MySQLDwarfMapper
from repro.mapping.mysql_min import MySQLMinMapper
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.mapping.nosql_min import NoSQLMinMapper


def stored_point_query(
    mapper,
    schema_id: int,
    coordinates: Sequence,
):
    """Answer a point query against the stored cube ``schema_id``.

    ``coordinates`` holds one entry per dimension — a member value or
    :data:`~repro.dwarf.ALL`.  Returns the aggregate (or ``None`` when no
    fact matches), identical to ``mapper.load(schema_id).value(...)``.
    """
    strategy = _STRATEGIES.get(type(mapper))
    if strategy is None:
        raise MappingError(f"no stored-query strategy for {type(mapper).__name__}")
    keys = [ALL_KEY_TEXT if c is ALL else encode_member(c) for c in coordinates]
    return strategy(mapper, schema_id, keys)


# ----------------------------------------------------------------------
# NoSQL-DWARF: primary-key walks over node and cell rows
# ----------------------------------------------------------------------
def _nosql_dwarf_point(mapper: NoSQLDwarfMapper, schema_id: int, keys: List[str]):
    session = mapper.session
    info = mapper.info(schema_id)
    node_id: Optional[int] = info.entry_node_id
    measure = None
    for level, key_text in enumerate(keys):
        if node_id is None:
            return None
        node_row = session.execute(
            "SELECT childrenIds FROM dwarf_node WHERE id = ?", (node_id,)
        ).one()
        if node_row is None:
            raise MappingError(f"stored node {node_id} missing")
        match = None
        for cell_id in sorted(node_row["childrenIds"] or ()):
            cell = session.execute(
                "SELECT * FROM dwarf_cell WHERE id = ?", (cell_id,)
            ).one()
            if cell is not None and cell["key"] == key_text:
                match = cell
                break
        if match is None:
            return None
        node_id = match["pointerNode"]
        measure = match["measure"]
        if match["leaf"] and level != len(keys) - 1:
            raise QueryError("coordinate vector longer than the stored cube's depth")
    return measure


# ----------------------------------------------------------------------
# NoSQL-Min: descend through the parentNodeId secondary index
# ----------------------------------------------------------------------
def _nosql_min_point(mapper: NoSQLMinMapper, schema_id: int, keys: List[str]):
    session = mapper.session
    mapper.info(schema_id)  # validate
    node_id: Optional[int] = mapper._entry_cache.get(schema_id)
    if node_id is None:
        # No entry_node_id in Table 3: one filtered scan, then cached.
        first = session.execute(
            "SELECT * FROM dwarf_cell WHERE root = true AND cubeid = ? ALLOW FILTERING",
            (schema_id,),
        ).one()
        if first is None:
            return None
        node_id = first["parentNodeId"]
        mapper._entry_cache[schema_id] = node_id
    measure = None
    for key_text in keys:
        if node_id is None:
            return None
        # The secondary index the schema pays for (paper §5.1).
        siblings = session.execute(
            "SELECT * FROM dwarf_cell WHERE parentNodeId = ?", (node_id,)
        )
        match = next((row for row in siblings if row["name"] == key_text), None)
        if match is None:
            return None
        node_id = match["childNodeId"]
        measure = match["item"]
    return measure


# ----------------------------------------------------------------------
# MySQL-DWARF: one join per level
# ----------------------------------------------------------------------
def _mysql_dwarf_point(mapper: MySQLDwarfMapper, schema_id: int, keys: List[str]):
    session = mapper.session
    info = mapper.info(schema_id)
    node_id: Optional[int] = info.entry_node_id
    measure = None
    for key_text in keys:
        if node_id is None:
            return None
        row = session.execute(
            "SELECT c.id, c.measure, c.leaf FROM NODE_CHILDREN nc "
            "JOIN CELL c ON nc.cell_id = c.id "
            "WHERE nc.node_id = ? AND c.cell_key = ?",
            (node_id, key_text),
        ).one()
        if row is None:
            return None
        measure = row["c.measure"]
        if row["c.leaf"]:
            node_id = None
        else:
            pointer = session.execute(
                "SELECT node_id FROM CELL_CHILDREN WHERE cell_id = ?", (row["c.id"],)
            ).one()
            node_id = pointer["node_id"] if pointer else None
    return measure


# ----------------------------------------------------------------------
# MySQL-Min: scan once, reconstruct nodes, walk in memory
# ----------------------------------------------------------------------
def _mysql_min_point(mapper: MySQLMinMapper, schema_id: int, keys: List[str]):
    session = mapper.session
    mapper.info(schema_id)  # validate
    rows = list(
        session.execute("SELECT * FROM DWARF_CELL WHERE cubeid = ?", (schema_id,))
    )
    if not rows:
        return None
    by_parent: Dict[int, List[dict]] = {}
    entry: Optional[int] = None
    for row in rows:
        by_parent.setdefault(row["parentNodeId"], []).append(row)
        if row["root"]:
            entry = row["parentNodeId"]
    if entry is None:
        raise MappingError("stored cube has no root cells")
    node_id: Optional[int] = entry
    measure = None
    for key_text in keys:
        if node_id is None:
            return None
        match = next(
            (row for row in by_parent.get(node_id, ()) if row["name"] == key_text),
            None,
        )
        if match is None:
            return None
        node_id = match["childNodeId"]
        measure = match["item"]
    return measure


_STRATEGIES = {
    NoSQLDwarfMapper: _nosql_dwarf_point,
    NoSQLMinMapper: _nosql_min_point,
    MySQLDwarfMapper: _mysql_dwarf_point,
    MySQLMinMapper: _mysql_min_point,
}


# ----------------------------------------------------------------------
# declarative select over the stored NoSQL-DWARF cube
# ----------------------------------------------------------------------
def stored_select(
    mapper: NoSQLDwarfMapper,
    schema_id: int,
    constraints: Optional[Mapping[str, object]] = None,
    **by_name,
):
    """Run a :mod:`repro.dwarf.query`-style query against storage.

    Accepts the same constraint vocabulary (``Member``/``In``/``Range``/
    ``Each``/``All``) keyed by dimension name; unmentioned dimensions
    aggregate through their ALL cells.  Yields ``(coordinates, value)``
    pairs exactly like :func:`repro.dwarf.query.select`, but every node
    and cell is read from the column families on demand — nothing is
    rebuilt in memory.

    Implemented for the paper's primary schema (NoSQL-DWARF), whose node
    rows make the walk a sequence of primary-key reads.
    """
    from repro.dwarf.query import All, Constraint, Each, In, Member, Range
    from repro.mapping.base import decode_member, schema_from_rows

    if not isinstance(mapper, NoSQLDwarfMapper):
        raise MappingError("stored_select is implemented for NoSQL-DWARF storage")
    spec = dict(constraints or {})
    spec.update(by_name)

    dimension_rows = list(
        mapper.session.execute(
            "SELECT * FROM dwarf_dimension WHERE schema_id = ? ALLOW FILTERING",
            (schema_id,),
        )
    )
    schema = schema_from_rows(dimension_rows)
    per_level: List[object] = [All()] * schema.n_dimensions
    for name, constraint in spec.items():
        if not isinstance(constraint, Constraint):
            raise QueryError(f"constraint for {name!r} must be a Constraint")
        per_level[schema.dimension_index(name)] = constraint

    session = mapper.session
    info = mapper.info(schema_id)
    n_dims = schema.n_dimensions

    def cells_of(node_id: int) -> List[dict]:
        node_row = session.execute(
            "SELECT childrenIds FROM dwarf_node WHERE id = ?", (node_id,)
        ).one()
        if node_row is None:
            raise MappingError(f"stored node {node_id} missing")
        cells = []
        for cell_id in sorted(node_row["childrenIds"] or ()):
            cell = session.execute(
                "SELECT * FROM dwarf_cell WHERE id = ?", (cell_id,)
            ).one()
            if cell is not None:
                cells.append(cell)
        return cells

    def matching(constraint, cells: List[dict]) -> List[dict]:
        ordinary = [c for c in cells if c["key"] != ALL_KEY_TEXT]
        if isinstance(constraint, All):
            return [c for c in cells if c["key"] == ALL_KEY_TEXT]
        if isinstance(constraint, Member):
            wanted = encode_member(constraint.key)
            return [c for c in ordinary if c["key"] == wanted]
        if isinstance(constraint, In):
            wanted = {encode_member(k) for k in constraint.keys}
            return [c for c in ordinary if c["key"] in wanted]
        if isinstance(constraint, Range):
            inside = []
            for cell in ordinary:
                member = decode_member(cell["key"])
                try:
                    if constraint.lo <= member <= constraint.hi:
                        inside.append(cell)
                except TypeError:
                    continue
            return inside
        if isinstance(constraint, Each):
            return ordinary
        raise QueryError(f"unsupported constraint {constraint!r}")

    def walk(node_id: Optional[int], level: int, coords: tuple):
        if node_id is None:
            return
        constraint = per_level[level]
        grouped = constraint.grouped
        for cell in matching(constraint, cells_of(node_id)):
            if grouped:
                next_coords = coords + (decode_member(cell["key"]),)
            else:
                next_coords = coords
            if level == n_dims - 1:
                yield next_coords, cell["measure"]
            else:
                yield from walk(cell["pointerNode"], level + 1, next_coords)

    yield from walk(info.entry_node_id, 0, ())
