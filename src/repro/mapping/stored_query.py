"""Query primitives over *stored* DWARF cubes (paper §3, §7).

The ``entry_node_id`` column "serves as the entry point for all traversal
functions" — these functions.  A :func:`stored_point_query` answers a
point/ALL query directly against the storage engine, without rebuilding
the whole cube, using whatever access paths the schema offers:

* **NoSQL-DWARF** — walk node rows by primary key; each node's
  ``childrenIds`` set gives the candidate cells, read by primary key.
* **NoSQL-Min** — no node rows: descend through the ``parentNodeId``
  *secondary index*, which is exactly the query workload the paper keeps
  those expensive indexes for.
* **MySQL-DWARF** — a NODE_CHILDREN prefix probe plus one batched CELL
  fetch per level.
* **MySQL-Min** — no node construct and no indexes: the paper predicts
  "a significant impact on query times as DWARF Node reconstruction is
  required"; the strategy scans the cube's cells once, reconstructs
  nodes in memory, and keeps the reconstruction in a version-guarded
  cache so repeated queries only rescan after a mutation.

Every fetch the walks perform is a :mod:`repro.query` plan.  Statement
shapes (node lookups, prefix probes, the reconstruction scan) go through
the session's plan cache as prepared text; the per-level cell-match loops
are *direct* kernel plans — ``MultiGet → Filter`` (or ``IndexScan →
Filter`` for NoSQL-Min) — built once per mapper, cached in the same
:class:`~repro.query.PlanCache` under ``stored:`` labels, and guarded
against DDL exactly like session plans.  :func:`explain_strategy` renders
each strategy's access paths in the shared EXPLAIN vocabulary.
"""

from __future__ import annotations

from functools import reduce
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.aggregators import Aggregator
from repro.core.errors import QueryError
from repro.core.tuples import member_sort_key
from repro.dwarf.cell import ALL
from repro.mapping.base import (
    ALL_KEY_TEXT,
    MappingError,
    cached_statement,
    encode_member,
)
from repro.mapping.incremental import EpochView, resolve_epoch
from repro.mapping.mysql_dwarf import MySQLDwarfMapper
from repro.mapping.mysql_min import MySQLMinMapper
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.mapping.nosql_min import NoSQLMinMapper
from repro.nosqldb.sharding import resolve_shards
from repro.query import (
    Aggregate,
    Filter,
    FullScan,
    IndexScan,
    MultiGet,
    Plan,
    PushedCondition,
    PushedPredicate,
    annotate_explain,
    count_partial,
    counter_totals,
    snapshot_counters,
)
from repro.telemetry import get_query_log, get_registry, get_tracer, wall_clock

_M_STORED_QUERIES = get_registry().counter(
    "mapper_stored_queries_total",
    "stored point queries answered, by storage schema",
    labels=("schema",),
)

_QUERY_LOG = get_query_log()


# A per-mapper prepared-statement cache for the stored-query walks: each
# distinct statement shape is parsed once per mapper; its plan lives in
# the session's PlanCache, so after the first execution the walks only
# bind parameters.
_prepared = cached_statement


def _kernel_plan(mapper, label: str, build) -> Plan:
    """A direct :mod:`repro.query` plan, memoised in the session's cache.

    Keyed ``(scope, "stored:<label>", shards, cube_epoch)`` next to the
    statement-text entries, so warm stored-query walks register as
    plan-cache hits and DDL on the underlying table invalidates them
    through the plan's guards like any other cached plan.  The key's
    tail closes two staleness windows: a changed ``REPRO_SHARDS`` layout
    (a fanout plan cached under the old shard count must not serve the
    new one) and an epoch flip of a maintained cube (pre-flip kernels
    become unreachable and LRU-evict instead of walking superseded rows).
    """
    session = mapper.session
    scope = getattr(mapper, "keyspace_name", None) or mapper.database_name
    key = (scope, "stored:" + label, resolve_shards(), mapper.cube_epoch)
    plan = session.plan_cache.get(key)
    if plan is None:
        plan = build(mapper)
        session.plan_cache.put(key, plan)
    return plan


def _cql_guard(mapper, name: str, table):
    engine = mapper.session.engine
    keyspace = mapper.keyspace_name
    signature = frozenset(table.indexed_columns)
    shards = getattr(table, "shard_count", 1)

    def guard() -> bool:
        current = engine.keyspace(keyspace).table(name)
        return (
            current is table
            and frozenset(table.indexed_columns) == signature
            and getattr(current, "shard_count", 1) == shards
        )

    return guard


def _sql_guard(mapper, name: str, table):
    engine = mapper.session.engine
    database = mapper.database_name
    signature = frozenset(table.indexed_columns)
    shards = getattr(table, "shard_count", 1)

    def guard() -> bool:
        current = engine.database(database).table(name)
        return (
            current is table
            and frozenset(table.indexed_columns) == signature
            and getattr(current, "shard_count", 1) == shards
        )

    return guard


def _stored_aggregator(mapper, view: EpochView) -> Aggregator:
    """The maintained cube's aggregate function, read from the dimension
    registry of the current base and cached per ``(logical id, epoch)``
    (an epoch flip clears the cache through ``bump_cube_epoch``)."""
    cache = getattr(mapper, "_aggregator_cache", None)
    if cache is None:
        cache = {}
        mapper._aggregator_cache = cache
    key = (view.logical_id, view.epoch)
    aggregator = cache.get(key)
    if aggregator is None:
        text = f"SELECT * FROM {mapper.dimension_table} WHERE schema_id = ?"
        if getattr(mapper, "keyspace_name", None) is not None:
            text += " ALLOW FILTERING"
        row = mapper.session.execute_prepared(
            _prepared(mapper, text), (view.base_id,)
        ).one()
        if row is None:
            raise MappingError(
                f"maintained cube {view.logical_id} has no dimension rows "
                f"for base {view.base_id}"
            )
        aggregator = Aggregator.get(row["aggregator"])
        cache[key] = aggregator
    return aggregator


def _build_nosql_cells(mapper) -> Plan:
    """NoSQL-DWARF: all candidate cells of one node, block-batched."""
    table = mapper.session.engine.keyspace(mapper.keyspace_name).table("dwarf_cell")
    fetch = MultiGet(
        table, lambda params: params[0], "dwarf_cell", "id",
        cache_probe=lambda: table.block_cache_hits,
    )
    return Plan(fetch, guards=(_cql_guard(mapper, "dwarf_cell", table),))


def _build_nosql_cell_match(mapper) -> Plan:
    """NoSQL-DWARF: the per-level cell match, ``MultiGet → Filter``."""
    table = mapper.session.engine.keyspace(mapper.keyspace_name).table("dwarf_cell")
    fetch = MultiGet(
        table, lambda params: params[0], "dwarf_cell", "id",
        cache_probe=lambda: table.block_cache_hits,
    )
    match = Filter(fetch, lambda row, params: row["key"] == params[1], "key = ?1")
    return Plan(match, guards=(_cql_guard(mapper, "dwarf_cell", table),))


def _build_nosql_min_sibling_match(mapper) -> Plan:
    """NoSQL-Min: the per-level descent, an ``IndexScan`` with the name
    match pushed into the storage layer (no Filter operator remains —
    fetched siblings arrive pre-matched)."""
    table = mapper.session.engine.keyspace(mapper.keyspace_name).table("dwarf_cell")
    pushed = PushedPredicate(
        (PushedCondition("name", "=", lambda params: params[1], "name = ?1"),)
    )
    scan = IndexScan(
        table, "parentNodeId", lambda params: params[0], "dwarf_cell",
        cache_probe=lambda: table.block_cache_hits,
        pushed=pushed,
    )
    return Plan(scan, guards=(_cql_guard(mapper, "dwarf_cell", table),))


def _build_nosql_cube_scan(mapper) -> Plan:
    """NoSQL-DWARF scan strategy: one pushed full scan over the cube.

    ``schema_id = ?0`` travels into the storage layer, so zone-mapped
    columnar blocks holding only other cubes' cells are skipped unread.
    """
    table = mapper.session.engine.keyspace(mapper.keyspace_name).table("dwarf_cell")
    pushed = PushedPredicate(
        (PushedCondition("schema_id", "=", lambda params: params[0], "schema_id = ?0"),)
    )
    scan = FullScan(table, "dwarf_cell", pushed=pushed)
    return Plan(scan, guards=(_cql_guard(mapper, "dwarf_cell", table),))


def _build_nosql_cube_scan_keys(mapper) -> Plan:
    """The cube scan narrowed further by ``key IN ?1`` (all-keyed selects)."""
    table = mapper.session.engine.keyspace(mapper.keyspace_name).table("dwarf_cell")
    pushed = PushedPredicate((
        PushedCondition("schema_id", "=", lambda params: params[0], "schema_id = ?0"),
        PushedCondition("key", "IN", lambda params: params[1], "key IN ?1"),
    ))
    scan = FullScan(table, "dwarf_cell", pushed=pushed)
    return Plan(scan, guards=(_cql_guard(mapper, "dwarf_cell", table),))


def _build_nosql_cube_count(mapper) -> Plan:
    """NoSQL-DWARF: count one stored cube's cells, ``Aggregate(FullScan)``.

    The ``schema_id = ?0`` pushdown skips zone-refuted columnar blocks,
    and the count partial lets a sharded family answer from per-shard
    ``count_shard`` calls — no cell row is ever materialised on the
    all-flushed fast path (docs/parallel_query.md).
    """
    table = mapper.session.engine.keyspace(mapper.keyspace_name).table("dwarf_cell")
    pushed = PushedPredicate(
        (PushedCondition("schema_id", "=", lambda params: params[0], "schema_id = ?0"),)
    )
    scan = FullScan(table, "dwarf_cell", pushed=pushed)
    count = Aggregate(
        scan,
        lambda rows, params: [{"count": len(rows)}],
        "count(*)",
        partial=count_partial(),
    )
    return Plan(count, guards=(_cql_guard(mapper, "dwarf_cell", table),))


def stored_cell_count(mapper, schema_id: int) -> int:
    """How many cells the stored cube ``schema_id`` holds, counted in
    storage (NoSQL-DWARF only).

    Equals ``len(list(stored_select(mapper, schema_id, strategy="scan",
    ...)))`` over every cell rather than a constrained slice — the
    benchmark-grade aggregate the scatter-gather path accelerates.
    """
    if not isinstance(mapper, NoSQLDwarfMapper):
        raise MappingError("stored_cell_count is implemented for NoSQL-DWARF storage")
    t0 = wall_clock() if _QUERY_LOG.enabled else 0.0
    view = resolve_epoch(mapper, schema_id)
    cube_ids = (schema_id,) if view is None else view.cube_ids
    for physical_id in cube_ids:
        mapper.info(physical_id)  # validate
    plan = _kernel_plan(mapper, "nosql_dwarf:cube_count", _build_nosql_cube_count)
    before = counter_totals(plan) if _QUERY_LOG.enabled else None
    with get_tracer().span("stored.cell_count", schema=mapper.name):
        total = sum(plan.run((physical_id,))[0]["count"] for physical_id in cube_ids)
    if _QUERY_LOG.enabled:
        now = counter_totals(plan)
        _QUERY_LOG.record(
            f"stored:{mapper.name}:cell_count",
            "stored",
            wall_clock() - t0,
            rows=len(cube_ids),
            cache_hits=now["cache_hits"] - before["cache_hits"],
            blocks_skipped=now["blocks_skipped"] - before["blocks_skipped"],
            rows_pruned=now["rows_pruned"] - before["rows_pruned"],
            shards=resolve_shards(),
            epoch=mapper.cube_epoch,
        )
    return total


def _build_mysql_cell_match(mapper) -> Plan:
    """MySQL-DWARF: the per-level cell match, ``MultiGet → Filter``."""
    table = mapper.session.engine.database(mapper.database_name).table("CELL")
    fetch = MultiGet(table, lambda params: params[0], "CELL", "id")
    match = Filter(fetch, lambda row, params: row["cell_key"] == params[1], "cell_key = ?1")
    return Plan(match, guards=(_sql_guard(mapper, "CELL", table),))


def stored_point_query(
    mapper,
    schema_id: int,
    coordinates: Sequence,
):
    """Answer a point query against the stored cube ``schema_id``.

    ``coordinates`` holds one entry per dimension — a member value or
    :data:`~repro.dwarf.ALL`.  Returns the aggregate (or ``None`` when no
    fact matches), identical to ``mapper.load(schema_id).value(...)``.

    When ``schema_id`` names a *maintained* cube (one with an epoch row,
    see :mod:`repro.mapping.incremental`), the walk reads through the
    epoch: the same strategy runs once per physical cube of the snapshot
    — base plus any unmerged deltas — and the per-cube answers combine
    with the schema's aggregate function.  The epoch row is resolved in
    one primary-key read, so a query observes either the pre-merge
    overlay or the post-merge base, never a torn mix of the two.
    """
    if not _QUERY_LOG.enabled:
        return _point_query(mapper, schema_id, coordinates)
    # Query-history path: frame the walk's plan counters so the record
    # carries this query's cache/pushdown actuals, not lifetime totals.
    t0 = wall_clock()
    plans = [plan for plan in _strategy_plans(mapper).values() if plan is not None]
    before = [counter_totals(plan) for plan in plans]
    answer = _point_query(mapper, schema_id, coordinates)
    deltas = {"cache_hits": 0, "blocks_skipped": 0, "rows_pruned": 0}
    for plan, b in zip(plans, before):
        now = counter_totals(plan)
        for name in deltas:
            deltas[name] += now[name] - b[name]
    _QUERY_LOG.record(
        f"stored:{mapper.name}:point_query",
        "stored",
        wall_clock() - t0,
        rows=0 if answer is None else 1,
        cache_hits=deltas["cache_hits"],
        blocks_skipped=deltas["blocks_skipped"],
        rows_pruned=deltas["rows_pruned"],
        shards=resolve_shards(),
        epoch=mapper.cube_epoch,
    )
    return answer


def _point_query(mapper, schema_id: int, coordinates: Sequence):
    """The :func:`stored_point_query` walk, shared by the plain, logged
    and analyzed entry points."""
    strategy = _STRATEGIES.get(type(mapper))
    if strategy is None:
        raise MappingError(f"no stored-query strategy for {type(mapper).__name__}")
    keys = [ALL_KEY_TEXT if c is ALL else encode_member(c) for c in coordinates]
    _M_STORED_QUERIES.labels(mapper.name).inc()
    view = resolve_epoch(mapper, schema_id)
    with get_tracer().span("stored.point_query", schema=mapper.name):
        if view is None:
            return strategy(mapper, schema_id, keys)
        if len(view.cube_ids) == 1:
            return strategy(mapper, view.base_id, keys)
        answers = [
            answer
            for physical_id in view.cube_ids
            for answer in (strategy(mapper, physical_id, keys),)
            if answer is not None
        ]
        if not answers:
            return None
        aggregator = _stored_aggregator(mapper, view)
        return reduce(aggregator.merge, answers)


# ----------------------------------------------------------------------
# NoSQL-DWARF: primary-key walks over node and cell rows
# ----------------------------------------------------------------------
def _nosql_dwarf_point(mapper: NoSQLDwarfMapper, schema_id: int, keys: List[str]):
    session = mapper.session
    info = mapper.info(schema_id)
    node_statement = _prepared(mapper, "SELECT childrenIds FROM dwarf_node WHERE id = ?")
    cell_match = _kernel_plan(mapper, "nosql_dwarf:cell_match", _build_nosql_cell_match)
    node_id: Optional[int] = info.entry_node_id
    measure = None
    for level, key_text in enumerate(keys):
        if node_id is None:
            return None
        node_row = session.execute_prepared(node_statement, (node_id,)).one()
        if node_row is None:
            raise MappingError(f"stored node {node_id} missing")
        cell_ids = sorted(node_row["childrenIds"] or ())
        # One batched multi-get for all candidate cells of this node —
        # grouped by SSTable block — with the key match applied by the
        # plan's Filter operator.
        matches = cell_match.run((cell_ids, key_text))
        if not matches:
            return None
        match = matches[0]
        node_id = match["pointerNode"]
        measure = match["measure"]
        if match["leaf"] and level != len(keys) - 1:
            raise QueryError("coordinate vector longer than the stored cube's depth")
    return measure


# ----------------------------------------------------------------------
# NoSQL-Min: descend through the parentNodeId secondary index
# ----------------------------------------------------------------------
def _nosql_min_point(mapper: NoSQLMinMapper, schema_id: int, keys: List[str]):
    session = mapper.session
    mapper.info(schema_id)  # validate
    node_id: Optional[int] = mapper._entry_cache.get(schema_id)
    if node_id is None:
        # No entry_node_id in Table 3: one filtered scan, then cached.
        first = session.execute_prepared(
            _prepared(
                mapper,
                "SELECT * FROM dwarf_cell WHERE root = true AND cubeid = ? ALLOW FILTERING",
            ),
            (schema_id,),
        ).one()
        if first is None:
            return None
        node_id = first["parentNodeId"]
        mapper._entry_cache[schema_id] = node_id
    # The secondary index the schema pays for (paper §5.1), probed and
    # name-matched by one IndexScan → Filter plan per level.
    sibling_match = _kernel_plan(
        mapper, "nosql_min:sibling_match", _build_nosql_min_sibling_match
    )
    measure = None
    for key_text in keys:
        if node_id is None:
            return None
        matches = sibling_match.run((node_id, key_text))
        if not matches:
            return None
        match = matches[0]
        node_id = match["childNodeId"]
        measure = match["item"]
    return measure


# ----------------------------------------------------------------------
# MySQL-DWARF: a NODE_CHILDREN prefix probe + one batched CELL fetch per level
# ----------------------------------------------------------------------
def _mysql_dwarf_point(mapper: MySQLDwarfMapper, schema_id: int, keys: List[str]):
    session = mapper.session
    info = mapper.info(schema_id)
    children_statement = _prepared(
        mapper, "SELECT cell_id FROM NODE_CHILDREN WHERE node_id = ?"
    )
    pointer_statement = _prepared(
        mapper, "SELECT node_id FROM CELL_CHILDREN WHERE cell_id = ?"
    )
    cell_match = _kernel_plan(mapper, "mysql_dwarf:cell_match", _build_mysql_cell_match)
    node_id: Optional[int] = info.entry_node_id
    measure = None
    for key_text in keys:
        if node_id is None:
            return None
        # Clustered-prefix probe for the link rows, then all candidate
        # cells in one batched MultiGet (Table.get_many) with the key
        # match applied by the plan's Filter operator — same rows, in the
        # same (cell_id-ascending) order, as the old per-level
        # NODE_CHILDREN ⋈ CELL hash join.
        children = session.execute_prepared(children_statement, (node_id,))
        cell_ids = sorted(link["cell_id"] for link in children)
        matches = cell_match.run((cell_ids, key_text))
        if not matches:
            return None
        match = matches[0]
        measure = match["measure"]
        if match["leaf"]:
            node_id = None
        else:
            pointer = session.execute_prepared(
                pointer_statement, (match["id"],)
            ).one()
            node_id = pointer["node_id"] if pointer else None
    return measure


# ----------------------------------------------------------------------
# MySQL-Min: scan once, reconstruct nodes, walk in memory
# ----------------------------------------------------------------------
def _mysql_min_point(mapper: MySQLMinMapper, schema_id: int, keys: List[str]):
    session = mapper.session
    mapper.info(schema_id)  # validate
    table = session.engine.database(mapper.database_name).table("DWARF_CELL")
    # The reconstruction is cached against the table's mutation counter:
    # repeated queries walk the cached node map and only rescan after a
    # write invalidates it (cf. the paper's "DWARF Node reconstruction
    # is required" cost, paid once per table version instead of per query).
    # The reconstruction statement's `cubeid = ?` condition is pushed
    # into the storage layer by the SQL planner (FullScan pushed=...),
    # so other cubes' rows are pruned before materialization.
    cache = getattr(mapper, "_reconstruction_cache", None)
    if cache is None:
        cache = {}
        mapper._reconstruction_cache = cache
    cached = cache.get(schema_id)
    if cached is not None and cached[0] == table.version:
        _, by_parent, entry = cached
    else:
        rows = list(
            session.execute_prepared(
                _prepared(mapper, "SELECT * FROM DWARF_CELL WHERE cubeid = ?"),
                (schema_id,),
            )
        )
        if not rows:
            return None
        by_parent: Dict[int, List[dict]] = {}
        entry: Optional[int] = None
        for row in rows:
            by_parent.setdefault(row["parentNodeId"], []).append(row)
            if row["root"]:
                entry = row["parentNodeId"]
        if entry is None:
            raise MappingError("stored cube has no root cells")
        cache[schema_id] = (table.version, by_parent, entry)
    node_id: Optional[int] = entry
    measure = None
    for key_text in keys:
        if node_id is None:
            return None
        match = next(
            (row for row in by_parent.get(node_id, ()) if row["name"] == key_text),
            None,
        )
        if match is None:
            return None
        node_id = match["childNodeId"]
        measure = match["item"]
    return measure


_STRATEGIES = {
    NoSQLDwarfMapper: _nosql_dwarf_point,
    NoSQLMinMapper: _nosql_min_point,
    MySQLDwarfMapper: _mysql_dwarf_point,
    MySQLMinMapper: _mysql_min_point,
}


def _explain_statement(session, text: str) -> List[dict]:
    return list(session.execute("EXPLAIN " + text))


def explain_strategy(mapper, schema_id: Optional[int] = None) -> Dict[str, List[dict]]:
    """EXPLAIN every access path a :func:`stored_point_query` walk uses.

    Returns an ordered mapping of walk step → plan rows in the shared
    :mod:`repro.query` EXPLAIN vocabulary (``step``/``node``/``table``/
    ``key``/``detail``).  Plans are shape-level, so ``schema_id`` is
    accepted for symmetry with the query functions but not required.
    """
    kind = type(mapper)
    if kind not in _STRATEGIES:
        raise MappingError(f"no stored-query strategy for {kind.__name__}")
    session = mapper.session
    if kind is NoSQLDwarfMapper:
        return {
            "node": _explain_statement(
                session, "SELECT childrenIds FROM dwarf_node WHERE id = ?"
            ),
            "cells": _kernel_plan(
                mapper, "nosql_dwarf:cell_match", _build_nosql_cell_match
            ).explain(),
            "cube_scan": _kernel_plan(
                mapper, "nosql_dwarf:cube_scan", _build_nosql_cube_scan
            ).explain(),
            "cube_count": _kernel_plan(
                mapper, "nosql_dwarf:cube_count", _build_nosql_cube_count
            ).explain(),
        }
    if kind is NoSQLMinMapper:
        return {
            "entry": _explain_statement(
                session,
                "SELECT * FROM dwarf_cell WHERE root = true AND cubeid = ? ALLOW FILTERING",
            ),
            "siblings": _kernel_plan(
                mapper, "nosql_min:sibling_match", _build_nosql_min_sibling_match
            ).explain(),
        }
    if kind is MySQLDwarfMapper:
        return {
            "children": _explain_statement(
                session, "SELECT cell_id FROM NODE_CHILDREN WHERE node_id = ?"
            ),
            "cells": _kernel_plan(
                mapper, "mysql_dwarf:cell_match", _build_mysql_cell_match
            ).explain(),
            "pointer": _explain_statement(
                session, "SELECT node_id FROM CELL_CHILDREN WHERE cell_id = ?"
            ),
        }
    if kind is MySQLMinMapper:
        return {
            "cells": _explain_statement(
                session, "SELECT * FROM DWARF_CELL WHERE cubeid = ?"
            ),
        }
    raise MappingError(f"no stored-query strategy for {kind.__name__}")


def _strategy_plans(mapper) -> Dict[str, Optional[Plan]]:
    """Walk step → live plan for the mapper's point-query access paths.

    Kernel plans are fetched (building on first use) through
    :func:`_kernel_plan`; statement plans are *peeked* from the session's
    cache under their ``(scope, text)`` key — a statement that has never
    executed maps to ``None`` rather than being compiled here, so
    reading the plans never changes what a later execution would do.
    """
    kind = type(mapper)
    if kind not in _STRATEGIES:
        raise MappingError(f"no stored-query strategy for {kind.__name__}")
    session = mapper.session
    scope = getattr(mapper, "keyspace_name", None) or mapper.database_name

    def stmt(text: str) -> Optional[Plan]:
        plan = session.plan_cache.peek((scope, text))
        return plan if isinstance(plan, Plan) else None

    if kind is NoSQLDwarfMapper:
        return {
            "node": stmt("SELECT childrenIds FROM dwarf_node WHERE id = ?"),
            "cells": _kernel_plan(
                mapper, "nosql_dwarf:cell_match", _build_nosql_cell_match
            ),
        }
    if kind is NoSQLMinMapper:
        return {
            "entry": stmt(
                "SELECT * FROM dwarf_cell WHERE root = true AND cubeid = ? ALLOW FILTERING"
            ),
            "siblings": _kernel_plan(
                mapper, "nosql_min:sibling_match", _build_nosql_min_sibling_match
            ),
        }
    if kind is MySQLDwarfMapper:
        return {
            "children": stmt("SELECT cell_id FROM NODE_CHILDREN WHERE node_id = ?"),
            "cells": _kernel_plan(
                mapper, "mysql_dwarf:cell_match", _build_mysql_cell_match
            ),
            "pointer": stmt("SELECT node_id FROM CELL_CHILDREN WHERE cell_id = ?"),
        }
    return {
        "cells": stmt("SELECT * FROM DWARF_CELL WHERE cubeid = ?"),
    }


def analyze_strategy(mapper, schema_id: int, coordinates: Sequence) -> Dict[str, object]:
    """EXPLAIN ANALYZE for a :func:`stored_point_query` walk.

    Runs the point query once — per-operator timing forced on for the
    duration — and frames every access-path plan's counters around the
    run, so each step of :func:`explain_strategy` comes back annotated
    with this query's actuals (:data:`repro.query.ACTUAL_COLUMNS`).

    Returns ``{"answer": ..., "steps": {step: rows}}``; the answer is
    exactly what a plain :func:`stored_point_query` returns.  A step the
    walk never reached (say, the reconstruction scan of a warm MySQL-Min
    cache) reports zero actuals; a statement plan that has never been
    compiled only appears once the analyzed run itself creates it.
    """
    before = {
        step: snapshot_counters(plan)
        for step, plan in _strategy_plans(mapper).items()
        if plan is not None
    }
    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.enabled = True  # accrue per-operator wall/CPU for this run
    try:
        answer = stored_point_query(mapper, schema_id, coordinates)
    finally:
        tracer.enabled = was_enabled
    steps = {
        step: annotate_explain(plan, before.get(step))
        for step, plan in _strategy_plans(mapper).items()
        if plan is not None
    }
    return {"answer": answer, "steps": steps}


# ----------------------------------------------------------------------
# declarative select over the stored NoSQL-DWARF cube
# ----------------------------------------------------------------------
def stored_select(
    mapper: NoSQLDwarfMapper,
    schema_id: int,
    constraints: Optional[Mapping[str, object]] = None,
    strategy: str = "walk",
    **by_name,
):
    """Run a :mod:`repro.dwarf.query`-style query against storage.

    Accepts the same constraint vocabulary (``Member``/``In``/``Range``/
    ``Each``/``All``) keyed by dimension name; unmentioned dimensions
    aggregate through their ALL cells.  Yields ``(coordinates, value)``
    pairs exactly like :func:`repro.dwarf.query.select`, but every node
    and cell is read from the column families on demand — nothing is
    rebuilt in memory.

    ``strategy`` picks the read pattern:

    * ``"walk"`` (default) — descend node by node; each level is one
      node read plus one batched cell multi-get.
    * ``"scan"`` — one pushed full scan (``schema_id = ?0``, plus
      ``key IN ?1`` when every constraint is ``All``/``Member``/``In``)
      fetches the cube's surviving cells in a single pass — zone-mapped
      columnar blocks are skipped unread — then the walk runs over the
      in-memory sibling groups.  Same answers, different I/O shape.

    Implemented for the paper's primary schema (NoSQL-DWARF), whose node
    rows make the walk a sequence of primary-key reads.

    A maintained cube (one with an epoch row) is read through its epoch
    exactly like :func:`stored_point_query`: the walk runs over every
    physical cube of the snapshot, per-coordinate values merge with the
    schema's aggregate function, and the overlay's rows stream out in
    the canonical member order the single-cube walk produces.

    Raises :class:`~repro.core.errors.QueryError` for an unknown
    ``strategy`` or constraint, :class:`MappingError` for a non-DWARF
    mapper or a missing stored node.
    """
    rows = _stored_select_impl(mapper, schema_id, constraints, strategy, **by_name)
    if not _QUERY_LOG.enabled:
        return rows
    return _logged_select(mapper, strategy, rows)


def _logged_select(mapper, strategy: str, rows):
    """Drain a :func:`stored_select` generator, recording one query-log
    entry (rows yielded, wall time) once it is exhausted."""
    t0 = wall_clock()
    count = 0
    for item in rows:
        count += 1
        yield item
    _QUERY_LOG.record(
        f"stored:{mapper.name}:select:{strategy}",
        "stored",
        wall_clock() - t0,
        rows=count,
        shards=resolve_shards(),
        epoch=mapper.cube_epoch,
    )


def _stored_select_impl(
    mapper: NoSQLDwarfMapper,
    schema_id: int,
    constraints: Optional[Mapping[str, object]] = None,
    strategy: str = "walk",
    **by_name,
):
    """The :func:`stored_select` walk (a generator; errors surface at
    first iteration, as they always have)."""
    from repro.dwarf.query import All, Constraint
    from repro.mapping.base import schema_from_rows

    if not isinstance(mapper, NoSQLDwarfMapper):
        raise MappingError("stored_select is implemented for NoSQL-DWARF storage")
    if strategy not in ("walk", "scan"):
        raise QueryError(f"unknown stored_select strategy {strategy!r}")
    spec = dict(constraints or {})
    spec.update(by_name)

    view = resolve_epoch(mapper, schema_id)
    base_id = schema_id if view is None else view.base_id
    dimension_rows = list(
        mapper.session.execute(
            "SELECT * FROM dwarf_dimension WHERE schema_id = ? ALLOW FILTERING",
            (base_id,),
        )
    )
    schema = schema_from_rows(dimension_rows)
    per_level: List[object] = [All()] * schema.n_dimensions
    for name, constraint in spec.items():
        if not isinstance(constraint, Constraint):
            raise QueryError(f"constraint for {name!r} must be a Constraint")
        per_level[schema.dimension_index(name)] = constraint

    if view is None or len(view.cube_ids) == 1:
        yield from _select_one(mapper, base_id, schema, per_level, strategy)
        return

    # Pre-merge overlay: run the same walk over base + deltas, fold the
    # per-coordinate values with the cube's aggregate function, and emit
    # in canonical member order (the order one merged walk would yield).
    aggregator = _stored_aggregator(mapper, view)
    merged: Dict[tuple, object] = {}
    for physical_id in view.cube_ids:
        for coords, value in _select_one(mapper, physical_id, schema, per_level, strategy):
            previous = merged.get(coords)
            merged[coords] = (
                value if previous is None else aggregator.merge(previous, value)
            )
    for coords in sorted(
        merged, key=lambda c: tuple(member_sort_key(member) for member in c)
    ):
        yield coords, merged[coords]


def _select_one(
    mapper: NoSQLDwarfMapper,
    schema_id: int,
    schema,
    per_level: List[object],
    strategy: str,
):
    """The :func:`stored_select` walk over one physical stored cube."""
    from repro.dwarf.query import All, Each, In, Member, Range
    from repro.mapping.base import decode_member

    session = mapper.session
    info = mapper.info(schema_id)
    n_dims = schema.n_dimensions

    if strategy == "scan":
        keyed = all(isinstance(c, (All, In, Member)) for c in per_level)
        if keyed:
            # Every level names its surviving keys outright, so the scan
            # can also push `key IN wanted` — the union of ALL markers
            # and requested members — and prune non-matching cells (or
            # whole blocks) inside the storage layer.
            wanted = set()
            for constraint in per_level:
                if isinstance(constraint, All):
                    wanted.add(ALL_KEY_TEXT)
                elif isinstance(constraint, Member):
                    wanted.add(encode_member(constraint.key))
                else:
                    wanted.update(encode_member(k) for k in constraint.keys)
            plan = _kernel_plan(
                mapper, "nosql_dwarf:cube_scan_keys", _build_nosql_cube_scan_keys
            )
            fetched = plan.run((schema_id, sorted(wanted)))
        else:
            plan = _kernel_plan(mapper, "nosql_dwarf:cube_scan", _build_nosql_cube_scan)
            fetched = plan.run((schema_id,))
        by_parent: Dict[int, List[dict]] = {}
        for row in fetched:
            by_parent.setdefault(row["parentNode"], []).append(row)
        for siblings in by_parent.values():
            siblings.sort(key=lambda row: row["id"])

        def cells_of(node_id: int) -> List[dict]:
            return by_parent.get(node_id, [])

    else:
        node_statement = _prepared(
            mapper, "SELECT childrenIds FROM dwarf_node WHERE id = ?"
        )
        cells_plan = _kernel_plan(mapper, "nosql_dwarf:cells", _build_nosql_cells)

        def cells_of(node_id: int) -> List[dict]:
            node_row = session.execute_prepared(node_statement, (node_id,)).one()
            if node_row is None:
                raise MappingError(f"stored node {node_id} missing")
            cell_ids = sorted(node_row["childrenIds"] or ())
            return cells_plan.run((cell_ids,))

    def matching(constraint, cells: List[dict]) -> List[dict]:
        ordinary = [c for c in cells if c["key"] != ALL_KEY_TEXT]
        if isinstance(constraint, All):
            return [c for c in cells if c["key"] == ALL_KEY_TEXT]
        if isinstance(constraint, Member):
            wanted = encode_member(constraint.key)
            return [c for c in ordinary if c["key"] == wanted]
        if isinstance(constraint, In):
            wanted = {encode_member(k) for k in constraint.keys}
            return [c for c in ordinary if c["key"] in wanted]
        if isinstance(constraint, Range):
            inside = []
            for cell in ordinary:
                member = decode_member(cell["key"])
                try:
                    if constraint.lo <= member <= constraint.hi:
                        inside.append(cell)
                except TypeError:
                    continue
            return inside
        if isinstance(constraint, Each):
            return ordinary
        raise QueryError(f"unsupported constraint {constraint!r}")

    def walk(node_id: Optional[int], level: int, coords: tuple):
        if node_id is None:
            return
        constraint = per_level[level]
        grouped = constraint.grouped
        for cell in matching(constraint, cells_of(node_id)):
            if grouped:
                next_coords = coords + (decode_member(cell["key"]),)
            else:
                next_coords = coords
            if level == n_dims - 1:
                yield next_coords, cell["measure"]
            else:
                yield from walk(cell["pointerNode"], level + 1, next_coords)

    yield from walk(info.entry_node_id, 0, ())
