"""Dimension tables: member attributes referenced from DWARF cells.

Paper §4: "if a dimension table is specified in the schema definition,
the ``dimension_table_name`` is also updated to include the name of the
dimension table which contains additional information about the DWARF
Cell."  The paper stores the *name*; this module stores the tables
themselves, so a query can follow a cell's ``dimension_table_name`` to
the member's attributes (a station's coordinates, a car park's
capacity, ...).

One column family per dimension table::

    dim_<name> (member text PRIMARY KEY, attr1 ..., attr2 ..., ...)

with attribute column types inferred from the first row.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.mapping.base import MappingError, encode_member
from repro.nosqldb.errors import InvalidRequest


def _cql_type_of(value) -> str:
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "double"
    if isinstance(value, str):
        return "text"
    raise MappingError(f"unsupported dimension attribute type: {type(value).__name__}")


class DimensionTableStore:
    """Stores and queries dimension tables in a NoSQL-DWARF warehouse.

    Wraps a :class:`~repro.mapping.nosql_dwarf.NoSQLDwarfMapper`'s
    keyspace; the cube rows and the dimension tables live side by side,
    as the paper's schema implies.
    """

    def __init__(self, mapper) -> None:
        self.mapper = mapper
        self.session = mapper.session
        self._columns: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def table_name(dimension_table: str) -> str:
        return f"dim_{dimension_table.lower()}"

    def store(
        self,
        dimension_table: str,
        rows: Mapping[object, Mapping[str, object]],
    ) -> int:
        """Create (if needed) and fill one dimension table.

        ``rows`` maps each dimension member to its attribute dict; all
        rows must share the same attribute names.  Returns the number of
        members stored.
        """
        if not rows:
            raise MappingError(f"dimension table {dimension_table!r} needs rows")
        items = list(rows.items())
        first_attrs = items[0][1]
        attr_names = sorted(first_attrs)
        if not attr_names:
            raise MappingError(f"dimension table {dimension_table!r} has no attributes")
        for member, attrs in items:
            if sorted(attrs) != attr_names:
                raise MappingError(
                    f"member {member!r} has attributes {sorted(attrs)}, "
                    f"expected {attr_names}"
                )

        name = self.table_name(dimension_table)
        column_ddl = ", ".join(
            f"{attr} {_cql_type_of(first_attrs[attr])}" for attr in attr_names
        )
        self.session.execute(
            f"CREATE TABLE IF NOT EXISTS {self.mapper.keyspace_name}.{name} "
            f"(member text PRIMARY KEY, {column_ddl})"
        )
        insert = self.session.prepare(
            f"INSERT INTO {self.mapper.keyspace_name}.{name} "
            f"(member, {', '.join(attr_names)}) "
            f"VALUES (?{', ?' * len(attr_names)})"
        )
        self.session.execute_batch(
            (insert, (encode_member(member),) + tuple(attrs[a] for a in attr_names))
            for member, attrs in items
        )
        self._columns[name] = attr_names
        return len(items)

    # ------------------------------------------------------------------
    def attributes(self, dimension_table: str, member) -> Optional[Dict[str, object]]:
        """The attribute dict of ``member``, or None when absent."""
        name = self.table_name(dimension_table)
        try:
            row = self.session.execute(
                f"SELECT * FROM {self.mapper.keyspace_name}.{name} WHERE member = ?",
                (encode_member(member),),
            ).one()
        except InvalidRequest:
            return None
        if row is None:
            return None
        return {k: v for k, v in row.items() if k != "member"}

    def describe_cell(self, schema_id: int, cell_id: int) -> Optional[Dict[str, object]]:
        """Follow a stored cell's ``dimension_table_name`` to its attributes.

        The paper's join: read the cell row, take its key and dimension
        table name, and look the member up.
        """
        cell = self.session.execute(
            f"SELECT * FROM {self.mapper.keyspace_name}.dwarf_cell WHERE id = ?",
            (cell_id,),
        ).one()
        if cell is None or cell["schema_id"] != schema_id:
            return None
        table = cell["dimension_table_name"]
        if table is None:
            return None
        name = self.table_name(table)
        row = self.session.execute(
            f"SELECT * FROM {self.mapper.keyspace_name}.{name} WHERE member = ?",
            (cell["key"],),
        ).one()
        if row is None:
            return None
        return {k: v for k, v in row.items() if k != "member"}
