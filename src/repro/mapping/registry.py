"""Registry of the paper's four storage schemas."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.mapping.base import CubeMapper
from repro.mapping.mysql_dwarf import MySQLDwarfMapper
from repro.mapping.mysql_min import MySQLMinMapper
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.mapping.nosql_min import NoSQLMinMapper

#: Schema label -> mapper factory, in the paper's Table 4/5 row order.
MAPPER_FACTORIES: Dict[str, Callable[[], CubeMapper]] = {
    "MySQL-DWARF": MySQLDwarfMapper,
    "MySQL-Min": MySQLMinMapper,
    "NoSQL-DWARF": NoSQLDwarfMapper,
    "NoSQL-Min": NoSQLMinMapper,
}


def make_mapper(name: str) -> CubeMapper:
    """Instantiate (and install) a mapper by its paper label."""
    try:
        factory = MAPPER_FACTORIES[name]
    except KeyError:
        known = ", ".join(MAPPER_FACTORIES)
        raise KeyError(f"unknown schema {name!r} (known: {known})") from None
    mapper = factory()
    mapper.install()
    return mapper


def all_mappers() -> List[CubeMapper]:
    """Fresh, installed instances of all four mappers, paper order."""
    return [make_mapper(name) for name in MAPPER_FACTORIES]
