"""Bi-directional DWARF ⇄ storage mappers: the paper's four schemas."""

from repro.mapping.base import (
    ALL_KEY_TEXT,
    CellRecord,
    CubeMapper,
    MappingError,
    NodeRecord,
    StoredSchemaInfo,
    TransformedCube,
    decode_member,
    derive_levels,
    encode_member,
    rebuild_cube,
    schema_from_rows,
    schema_to_rows,
    transform_cube,
)
from repro.mapping.incremental import (
    CubeMaintainer,
    EpochView,
    compact_epoch,
    open_epoch,
    recover_epoch,
    resolve_epoch,
    store_delta,
)
from repro.mapping.lookup import LookupTable
from repro.mapping.mysql_dwarf import MySQLDwarfMapper
from repro.mapping.mysql_min import MySQLMinMapper
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.mapping.nosql_min import NoSQLMinMapper
from repro.mapping.registry import MAPPER_FACTORIES, all_mappers, make_mapper
from repro.mapping.dimension_tables import DimensionTableStore
from repro.mapping.stored_query import (
    analyze_strategy,
    explain_strategy,
    stored_cell_count,
    stored_point_query,
    stored_select,
)

__all__ = [
    "ALL_KEY_TEXT",
    "CellRecord",
    "CubeMaintainer",
    "CubeMapper",
    "DimensionTableStore",
    "EpochView",
    "LookupTable",
    "MAPPER_FACTORIES",
    "MappingError",
    "MySQLDwarfMapper",
    "MySQLMinMapper",
    "NoSQLDwarfMapper",
    "NoSQLMinMapper",
    "NodeRecord",
    "StoredSchemaInfo",
    "TransformedCube",
    "all_mappers",
    "compact_epoch",
    "decode_member",
    "derive_levels",
    "encode_member",
    "make_mapper",
    "open_epoch",
    "rebuild_cube",
    "recover_epoch",
    "resolve_epoch",
    "schema_from_rows",
    "schema_to_rows",
    "store_delta",
    "analyze_strategy",
    "explain_strategy",
    "stored_cell_count",
    "stored_point_query",
    "stored_select",
    "transform_cube",
]
