"""The NoSQL-Min mapper (paper Table 3).

Two column families only: ``dwarf_cube`` (the registry) and
``dwarf_cell``.  DWARF nodes are not stored — cells carry their parent
and pointer node ids and nodes are rebuilt at load time.  The price
(paper §5): two secondary indexes on ``parentNodeId`` and
``childNodeId``, which inflate both insertion time (Table 5, worst
overall) and size (Table 4).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.schema import CubeSchema
from repro.dwarf.cube import DwarfCube
from repro.mapping.base import (
    CellRecord,
    CubeMapper,
    MappingError,
    NodeRecord,
    StoredSchemaInfo,
    cached_statement,
    derive_levels,
    rebuild_cube,
    schema_from_rows,
    schema_to_rows,
    transform_cube,
)
from repro.nosqldb.engine import NoSQLEngine

DEFAULT_KEYSPACE = "dwarf_min_warehouse"

_CUBE_DDL = """
CREATE TABLE IF NOT EXISTS dwarf_cube (
  id int PRIMARY KEY,
  node_count int,
  cell_count int,
  size_as_mb int,
  size_as_bytes int
)
"""

_CELL_DDL = """
CREATE TABLE IF NOT EXISTS dwarf_cell (
  id int PRIMARY KEY,
  item int,
  name text,
  leaf boolean,
  root boolean,
  cubeid int,
  parentNodeId int,
  childNodeId int
)
"""

_DIMENSION_DDL = """
CREATE TABLE IF NOT EXISTS dwarf_dimension (
  id int PRIMARY KEY,
  schema_id int,
  position int,
  name text,
  dimension_table text,
  schema_name text,
  measure text,
  aggregator text
)
"""

_EPOCH_DDL = """
CREATE TABLE IF NOT EXISTS dwarf_epoch (
  id int PRIMARY KEY,
  epoch int,
  base_id int,
  delta_ids text,
  retired_ids text,
  pending_id int
)
"""


class NoSQLMinMapper(CubeMapper):
    """Node-less NoSQL schema with the two mandatory secondary indexes."""

    name = "NoSQL-Min"
    registry_table = "dwarf_cube"
    dimension_table = "dwarf_dimension"
    epoch_table = "dwarf_epoch"

    def __init__(self, engine: Optional[NoSQLEngine] = None, keyspace: str = DEFAULT_KEYSPACE) -> None:
        self.engine = engine or NoSQLEngine()
        self.keyspace_name = keyspace
        self.session = self.engine.connect()
        self._prepared: Dict[str, object] = {}
        self._compiled: Dict[str, object] = {}
        # Table 3 stores no entry_node_id, so finding a cube's root takes
        # a filtered scan; clients cache it per cube id after first use.
        self._entry_cache: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def install(self) -> None:
        self.session.execute(f"CREATE KEYSPACE IF NOT EXISTS {self.keyspace_name}")
        self.session.execute(f"USE {self.keyspace_name}")
        for ddl in (_CUBE_DDL, _CELL_DDL, _DIMENSION_DDL, _EPOCH_DDL):
            self.session.execute(ddl)
        # The node-less design forces both secondary indexes (paper §5.1).
        self.session.execute("CREATE INDEX IF NOT EXISTS ON dwarf_cell (parentNodeId)")
        self.session.execute("CREATE INDEX IF NOT EXISTS ON dwarf_cell (childNodeId)")
        self._prepared = {
            "cube": self.session.prepare(
                "INSERT INTO dwarf_cube (id, node_count, cell_count, size_as_mb) "
                "VALUES (?, ?, ?, ?)"
            ),
            "cell": self.session.prepare(
                "INSERT INTO dwarf_cell (id, item, name, leaf, root, cubeid, "
                "parentNodeId, childNodeId) VALUES (?, ?, ?, ?, ?, ?, ?, ?)"
            ),
            "dimension": self.session.prepare(
                "INSERT INTO dwarf_dimension (id, schema_id, position, name, "
                "dimension_table, schema_name, measure, aggregator) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)"
            ),
        }
        # The zero-parse fast path: the same statements fully planned so
        # store() streams record batches straight into the memtable.
        self._compiled = {
            name: self.session.compile_insert(prepared.text)
            for name, prepared in self._prepared.items()
        }

    def _next_ids(self) -> Dict[str, int]:
        result = self.session.execute("SELECT * FROM dwarf_cube")
        cube_id = 1
        node_id = 1
        cell_id = 1
        for row in result:
            cube_id = max(cube_id, row["id"] + 1)
            node_id += row["node_count"]
            cell_id += row["cell_count"]
        return {"cube": cube_id, "node": node_id, "cell": cell_id}

    # ------------------------------------------------------------------
    def store(
        self,
        cube: DwarfCube,
        is_cube: bool = False,
        probe_size: bool = True,
        compiled: bool = True,
    ) -> int:
        """Persist ``cube``; ``compiled`` selects the zero-parse fast path."""
        if not self._prepared:
            raise MappingError(f"{self.name}: call install() before store()")
        ids = self._next_ids()
        transformed = transform_cube(
            cube, first_node_id=ids["node"], first_cell_id=ids["cell"]
        )
        cube_id = ids["cube"]
        cube_row = (cube_id, len(transformed.nodes), len(transformed.cells), 0)
        cell_rows = (
            (
                record.cell_id,
                record.measure,
                record.key_text,
                record.is_leaf,
                record.is_root_cell,
                cube_id,
                record.parent_node_id,
                record.pointer_node_id,
            )
            for record in transformed.cells
        )
        dimension_rows = (
            (
                row["id"],
                row["schema_id"],
                row["position"],
                row["name"],
                row["dimension_table"],
                row["schema_name"],
                row["measure"],
                row["aggregator"],
            )
            for row in schema_to_rows(cube.schema, cube_id)
        )
        if compiled:
            self._compiled["cube"].execute(cube_row)
            self._compiled["cell"].execute_batch(cell_rows)
            self._compiled["dimension"].execute_batch(dimension_rows)
        else:
            self.session.execute_prepared(self._prepared["cube"], cube_row)
            self.session.execute_batch(
                (self._prepared["cell"], row) for row in cell_rows
            )
            self.session.execute_batch(
                (self._prepared["dimension"], row) for row in dimension_rows
            )
        self._entry_cache[cube_id] = transformed.entry_node_id
        if probe_size:
            self.probe_size(cube_id)
        return cube_id

    def probe_size(self, cube_id: int) -> int:
        size_bytes = self.size_bytes()
        size_mb = self._size_as_mb(size_bytes)
        self.session.execute(
            "UPDATE dwarf_cube SET size_as_mb = ?, size_as_bytes = ? WHERE id = ?",
            (size_mb, size_bytes, cube_id),
        )
        return size_mb

    # ------------------------------------------------------------------
    def info(self, schema_id: int) -> StoredSchemaInfo:
        row = self.session.execute(
            "SELECT * FROM dwarf_cube WHERE id = ?", (schema_id,)
        ).one()
        if row is None:
            raise MappingError(f"no stored cube with id {schema_id}")
        return StoredSchemaInfo(
            schema_id=row["id"],
            node_count=row["node_count"],
            cell_count=row["cell_count"],
            size_as_mb=row["size_as_mb"],
            entry_node_id=None,
            is_cube=False,
            size_as_bytes=row["size_as_bytes"],
        )

    def load(self, schema_id: int, schema: Optional[CubeSchema] = None) -> DwarfCube:
        self.info(schema_id)  # validates existence
        if schema is None:
            dimension_rows = list(
                self.session.execute(
                    "SELECT * FROM dwarf_dimension WHERE schema_id = ? ALLOW FILTERING",
                    (schema_id,),
                )
            )
            schema = schema_from_rows(dimension_rows)
        cell_rows = list(
            self.session.execute(
                "SELECT * FROM dwarf_cell WHERE cubeid = ? ALLOW FILTERING", (schema_id,)
            )
        )
        cells = [
            CellRecord(
                cell_id=row["id"],
                key_text=row["name"],
                measure=row["item"],
                parent_node_id=row["parentNodeId"],
                pointer_node_id=row["childNodeId"],
                is_leaf=row["leaf"],
                is_root_cell=row["root"],
                dimension_table=None,
                level=0,
            )
            for row in cell_rows
        ]
        entry_node_id = self._entry_node_id(cells)
        levels = derive_levels(cells, entry_node_id)
        nodes = self._rebuild_node_records(cells, levels, entry_node_id)
        return rebuild_cube(schema, nodes, cells, entry_node_id)

    @staticmethod
    def _entry_node_id(cells: List[CellRecord]) -> int:
        for record in cells:
            if record.is_root_cell:
                return record.parent_node_id
        raise MappingError("stored cube has no root cells")

    @staticmethod
    def _rebuild_node_records(
        cells: List[CellRecord],
        levels: Dict[int, int],
        entry_node_id: int,
    ) -> List[NodeRecord]:
        """Rebuild the DWARF-node construct the schema chose not to store."""
        children: Dict[int, List[int]] = {}
        parents: Dict[int, List[int]] = {}
        for record in cells:
            children.setdefault(record.parent_node_id, []).append(record.cell_id)
            if record.pointer_node_id is not None:
                parents.setdefault(record.pointer_node_id, []).append(record.cell_id)
        return [
            NodeRecord(
                node_id=node_id,
                level=levels.get(node_id, 0),
                is_root=node_id == entry_node_id,
                children_cell_ids=tuple(cell_ids),
                parent_cell_ids=tuple(parents.get(node_id, ())),
            )
            for node_id, cell_ids in children.items()
        ]

    # ------------------------------------------------------------------
    def delete_cube_rows(self, cube_id: int) -> int:
        """Remove one stored cube's cell/dimension rows (compaction).

        The ``dwarf_cube`` registry row is kept as an allocation
        watermark so ``_next_ids`` never reissues the reclaimed range.
        """
        reclaimed = 0
        for table, column in (("dwarf_cell", "cubeid"), ("dwarf_dimension", "schema_id")):
            rows = list(
                self.session.execute(
                    f"SELECT id FROM {table} WHERE {column} = ? ALLOW FILTERING",
                    (cube_id,),
                )
            )
            delete = cached_statement(self, f"DELETE FROM {table} WHERE id = ?")
            for row in rows:
                self.session.execute_prepared(delete, (row["id"],))
            reclaimed += len(rows)
        self._entry_cache.pop(cube_id, None)
        return reclaimed

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        return self.engine.keyspace(self.keyspace_name).size_bytes

    def reset(self) -> None:
        keyspace = self.engine.keyspace(self.keyspace_name)
        for table in ("dwarf_cube", "dwarf_cell", "dwarf_dimension", "dwarf_epoch"):
            if keyspace.has_table(table):
                self.session.execute(f"TRUNCATE {self.keyspace_name}.{table}")
        keyspace.clear_commit_log()
        self._entry_cache.clear()
