"""The mapper contract and shared transformation machinery.

A :class:`CubeMapper` is one storage schema from the paper's evaluation
(NoSQL-DWARF, NoSQL-Min, MySQL-DWARF, MySQL-Min).  Every mapper is
*bi-directional*: ``store`` walks the in-memory DWARF breadth-first
(with the §4 lookup-table guard), emits one INSERT per node/cell and
executes them in bulk; ``load`` reads the rows back and reassembles an
identical, queryable :class:`~repro.dwarf.cube.DwarfCube`.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.core.errors import ReproError
from repro.core.schema import CubeSchema, Dimension
from repro.dwarf.cell import ALL, DwarfCell
from repro.dwarf.cube import DwarfCube
from repro.dwarf.node import DwarfNode
from repro.dwarf.traversal import breadth_first
from repro.mapping.lookup import LookupTable
from repro.telemetry import get_tracer

#: Reserved ``key`` text of ALL cells in storage.
ALL_KEY_TEXT = "__ALL__"


class MappingError(ReproError):
    """A cube cannot be mapped to / reconstructed from storage."""


class StoredSchemaInfo(NamedTuple):
    """One row of the schema/cube registry (paper Table 1-A).

    ``size_as_mb`` keeps the paper's integer-megabyte column (Table 4);
    ``size_as_bytes`` is the exact footprint, because at reduced
    ``REPRO_SCALE`` every cube floors to 0 MB and the megabyte column
    alone makes size comparisons degenerate.
    """

    schema_id: int
    node_count: int
    cell_count: int
    size_as_mb: int
    entry_node_id: Optional[int]
    is_cube: bool
    size_as_bytes: Optional[int] = None


# ----------------------------------------------------------------------
# member <-> text codec
# ----------------------------------------------------------------------
def encode_member(key) -> str:
    """Losslessly encode a dimension member into the ``key text`` column.

    The paper stores cell keys as ``text``; feeds also produce integer
    members (e.g. the hour), so a one-character type prefix keeps the
    round trip exact: ``s:Fenian St``, ``i:8``, ``f:3.5``, ``b:1``.
    """
    if key is ALL:
        return ALL_KEY_TEXT
    if isinstance(key, bool):
        return f"b:{int(key)}"
    if isinstance(key, int):
        return f"i:{key}"
    if isinstance(key, float):
        # Non-finite floats get canonical spellings instead of repr() so
        # the stored text is platform-independent: parallel workers that
        # serialise partition boundaries must not corrupt keys.
        if key != key:
            return "f:nan"
        if key == float("inf"):
            return "f:inf"
        if key == float("-inf"):
            return "f:-inf"
        return f"f:{key!r}"
    if isinstance(key, str):
        return f"s:{key}"
    raise MappingError(f"unsupported dimension member type: {type(key).__name__}")


def decode_member(text: str):
    """Inverse of :func:`encode_member` (does not decode ALL_KEY_TEXT)."""
    if len(text) < 2 or text[1] != ":":
        raise MappingError(f"corrupt member encoding: {text!r}")
    tag, payload = text[0], text[2:]
    if tag == "s":
        return payload
    if tag == "i":
        return int(payload)
    if tag == "f":
        if payload == "nan":
            return float("nan")
        if payload == "inf":
            return float("inf")
        if payload == "-inf":
            return float("-inf")
        try:
            return float(payload)
        except ValueError:
            raise MappingError(f"corrupt float member encoding: {text!r}") from None
    if tag == "b":
        return bool(int(payload))
    raise MappingError(f"corrupt member tag in {text!r}")


# ----------------------------------------------------------------------
# traversal -> flat transformation records
# ----------------------------------------------------------------------
class NodeRecord(NamedTuple):
    node_id: int
    level: int
    is_root: bool
    children_cell_ids: Tuple[int, ...]
    parent_cell_ids: Tuple[int, ...]


class CellRecord(NamedTuple):
    cell_id: int
    key_text: str
    measure: Optional[int]
    parent_node_id: int
    pointer_node_id: Optional[int]
    is_leaf: bool
    is_root_cell: bool
    dimension_table: Optional[str]
    level: int


class TransformedCube(NamedTuple):
    """The flat form every mapper stores: one record per node and cell."""

    nodes: List[NodeRecord]
    cells: List[CellRecord]
    entry_node_id: int


def transform_cube(
    cube: DwarfCube,
    first_node_id: int = 1,
    first_cell_id: int = 1,
) -> TransformedCube:
    """Flatten a DWARF into node/cell records, BFS order (paper §4).

    Raises :class:`MappingError` for cubes whose aggregation states are
    not integers — the paper's column families type ``measure`` as
    ``int`` (Table 1-C), which covers SUM/COUNT/MIN/MAX over integer
    measures but not AVG states.
    """
    with get_tracer().span("mapper.transform", schema=cube.schema.name):
        return _transform_cube(cube, first_node_id, first_cell_id)


def _transform_cube(
    cube: DwarfCube,
    first_node_id: int,
    first_cell_id: int,
) -> TransformedCube:
    node_table = LookupTable(first_node_id)
    cell_table = LookupTable(first_cell_id)
    nodes: Dict[int, NodeRecord] = {}
    parent_cells: Dict[int, List[int]] = {}
    cells: List[CellRecord] = []
    dimensions = cube.schema.dimensions

    root_id, _ = node_table.assign(cube.root)
    for visit in breadth_first(cube.root):
        if visit.cell is None:
            node = visit.node
            node_id = node_table.id_of(node)
            child_ids = []
            for cell in node.all_cells():
                cell_id, _ = cell_table.assign(cell)
                child_ids.append(cell_id)
            nodes[node_id] = NodeRecord(
                node_id=node_id,
                level=node.level,
                is_root=node is cube.root,
                children_cell_ids=tuple(child_ids),
                parent_cell_ids=(),  # filled after the scan
            )
        else:
            node, cell = visit.node, visit.cell
            cell_id = cell_table.id_of(cell)
            pointer_id: Optional[int] = None
            if cell.node is not None:
                pointer_id, _ = node_table.assign(cell.node)
                parent_cells.setdefault(pointer_id, []).append(cell_id)
            measure: Optional[int] = None
            if cell.is_leaf:
                if not isinstance(cell.value, int) or isinstance(cell.value, bool):
                    raise MappingError(
                        "storage schemas type measure as int (paper Table 1-C); "
                        f"cannot store aggregation state {cell.value!r} — use an "
                        "integer-valued distributive aggregator"
                    )
                measure = cell.value
            dimension = dimensions[node.level]
            cells.append(
                CellRecord(
                    cell_id=cell_id,
                    key_text=encode_member(cell.key),
                    measure=measure,
                    parent_node_id=node_table.id_of(node),
                    pointer_node_id=pointer_id,
                    is_leaf=cell.is_leaf,
                    is_root_cell=node is cube.root,
                    dimension_table=dimension.dimension_table,
                    level=node.level,
                )
            )

    node_records = [
        record._replace(parent_cell_ids=tuple(parent_cells.get(record.node_id, ())))
        for record in nodes.values()
    ]
    return TransformedCube(nodes=node_records, cells=cells, entry_node_id=root_id)


# ----------------------------------------------------------------------
# flat records -> DWARF (the reverse direction)
# ----------------------------------------------------------------------
def rebuild_cube(
    schema: CubeSchema,
    nodes: List[NodeRecord],
    cells: List[CellRecord],
    entry_node_id: int,
    n_source_tuples: int = 0,
) -> DwarfCube:
    """Reassemble an in-memory DWARF from flat node/cell records.

    Joins nodes and cells on their unique ids (paper §3: "reading the
    records ... and joining them based on their unique ids").
    """
    with get_tracer().span(
        "mapper.rebuild", schema=schema.name, nodes=len(nodes), cells=len(cells)
    ):
        return _rebuild_cube(schema, nodes, cells, entry_node_id, n_source_tuples)


def _rebuild_cube(
    schema: CubeSchema,
    nodes: List[NodeRecord],
    cells: List[CellRecord],
    entry_node_id: int,
    n_source_tuples: int,
) -> DwarfCube:
    from repro.dwarf.builder import _member_key

    node_objects: Dict[int, DwarfNode] = {
        record.node_id: DwarfNode(record.level) for record in nodes
    }
    if entry_node_id not in node_objects:
        raise MappingError(f"entry node {entry_node_id} missing from node records")

    by_parent: Dict[int, List[CellRecord]] = {}
    for record in cells:
        by_parent.setdefault(record.parent_node_id, []).append(record)

    for node_record in nodes:
        node = node_objects[node_record.node_id]
        members: List[Tuple[object, CellRecord]] = []
        all_record: Optional[CellRecord] = None
        for cell_record in by_parent.get(node_record.node_id, ()):
            if cell_record.key_text == ALL_KEY_TEXT:
                all_record = cell_record
            else:
                members.append((decode_member(cell_record.key_text), cell_record))
        members.sort(key=lambda pair: _member_key(pair[0]))
        for key, cell_record in members:
            node.add_cell(_build_cell(key, cell_record, node_objects))
        if all_record is not None:
            node.all_cell = _build_cell(ALL, all_record, node_objects)

    return DwarfCube(schema, node_objects[entry_node_id], n_source_tuples=n_source_tuples)


def _build_cell(key, record: CellRecord, node_objects: Dict[int, DwarfNode]) -> DwarfCell:
    if record.is_leaf:
        return DwarfCell(key, value=record.measure)
    pointer = node_objects.get(record.pointer_node_id)
    if pointer is None:
        raise MappingError(
            f"cell {record.cell_id} points at missing node {record.pointer_node_id}"
        )
    return DwarfCell(key, node=pointer)


def derive_levels(cells: List[CellRecord], entry_node_id: int) -> Dict[int, int]:
    """Dimension level of every node id, derived from the cell graph.

    Storage schemas do not persist node levels; they follow from a BFS
    over parent-node → pointer-node edges starting at the entry node.
    """
    from collections import deque

    children: Dict[int, List[int]] = {}
    for record in cells:
        if record.pointer_node_id is not None:
            children.setdefault(record.parent_node_id, []).append(record.pointer_node_id)

    levels: Dict[int, int] = {entry_node_id: 0}
    queue = deque([entry_node_id])
    while queue:
        node_id = queue.popleft()
        for child_id in children.get(node_id, ()):
            if child_id not in levels:
                levels[child_id] = levels[node_id] + 1
                queue.append(child_id)
    return levels


# ----------------------------------------------------------------------
# the mapper contract
# ----------------------------------------------------------------------
class CubeMapper:
    """One storage schema: install, store, probe, reload.

    Subclasses set :attr:`name` to the paper's schema label and implement
    the five primitives.
    """

    #: Label used in benchmark tables, e.g. ``"NoSQL-DWARF"``.
    name = "?"

    #: Monotone counter bumped on every epoch flip of a maintained cube.
    #: Plan-cache keys for stored-query kernels include it, so a flip
    #: makes every pre-flip cached walk unreachable (it LRU-evicts)
    #: instead of serving rows from a superseded physical cube.
    cube_epoch = 0

    def bump_cube_epoch(self) -> None:
        """Invalidate per-mapper derived caches after an epoch flip.

        Clears the mapper-local memoisations that outlive a single
        statement (entry-node and reconstruction caches); storage-level
        row caches are invalidated by the merge's own writes.
        """
        self.cube_epoch += 1
        for attr in ("_entry_cache", "_reconstruction_cache", "_aggregator_cache"):
            cache = getattr(self, attr, None)
            if cache is not None:
                cache.clear()

    def install(self) -> None:
        """Create the keyspace/database and its tables (idempotent)."""
        raise NotImplementedError

    def store(self, cube: DwarfCube, is_cube: bool = False) -> int:
        """Persist ``cube``; returns the new schema/cube id."""
        raise NotImplementedError

    def load(self, schema_id: int, schema: Optional[CubeSchema] = None) -> DwarfCube:
        """Rebuild the DWARF stored under ``schema_id``."""
        raise NotImplementedError

    def info(self, schema_id: int) -> StoredSchemaInfo:
        """The registry row for ``schema_id``."""
        raise NotImplementedError

    def size_bytes(self) -> int:
        """Total on-disk footprint of this mapper's storage."""
        raise NotImplementedError

    def reset(self) -> None:
        """Remove all stored cubes (TRUNCATE every table)."""
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------
    @staticmethod
    def _size_as_mb(size_bytes: int) -> int:
        return size_bytes // (1024 * 1024)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def cached_statement(mapper: CubeMapper, text: str):
    """A per-mapper prepared-statement cache.

    Each distinct statement shape is parsed once per mapper; its plan
    lives in the session's :class:`~repro.query.PlanCache`, so repeated
    executions only bind parameters.  Shared by the stored-query walks
    and the incremental-maintenance paths.
    """
    cache = getattr(mapper, "_query_statements", None)
    if cache is None:
        cache = {}
        mapper._query_statements = cache
    statement = cache.get(text)
    if statement is None:
        statement = mapper.session.prepare(text)
        cache[text] = statement
    return statement


# ----------------------------------------------------------------------
# schema metadata persistence (shared by all mappers)
# ----------------------------------------------------------------------
def schema_to_rows(schema: CubeSchema, schema_id: int) -> List[Dict[str, object]]:
    """Dimension-registry rows making ``load`` self-contained.

    The paper's Table 1 stores no dimension names (it assumes the caller
    knows the cube definition); a bi-directional mapper needs them, so
    every mapper adds one small ``dwarf_dimension`` table.  Documented as
    a substitution in DESIGN.md.
    """
    rows = []
    for position, dimension in enumerate(schema.dimensions):
        rows.append(
            {
                "id": schema_id * 1000 + position,
                "schema_id": schema_id,
                "position": position,
                "name": dimension.name,
                "dimension_table": dimension.dimension_table,
                "schema_name": schema.name,
                "measure": schema.measure,
                "aggregator": schema.aggregator.name,
            }
        )
    return rows


def schema_from_rows(rows: List[Dict[str, object]]) -> CubeSchema:
    """Rebuild a :class:`CubeSchema` from dimension-registry rows."""
    if not rows:
        raise MappingError("no dimension metadata stored for this schema id")
    ordered = sorted(rows, key=lambda row: row["position"])
    from repro.core.aggregators import Aggregator

    first = ordered[0]
    dimensions = [
        Dimension(row["name"], dimension_table=row["dimension_table"]) for row in ordered
    ]
    return CubeSchema(
        first["schema_name"],
        dimensions,
        measure=first["measure"],
        aggregator=Aggregator.get(first["aggregator"]),
    )
