"""The MySQL-DWARF mapper (paper Fig. 4).

The relational schema "most accurately describes a dwarf structure in a
relational database": NODE and CELL entity tables plus NODE_CHILDREN and
CELL_CHILDREN link tables, because nodes contain many cells and many
cells can point to the same node — multiple inheritance that an RDBMS
can only express through join tables.  Every node↔cell relationship
becomes its own indexed row, which is exactly why this schema is the
largest and among the slowest in Tables 4–5.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.schema import CubeSchema
from repro.dwarf.cube import DwarfCube
from repro.mapping.base import (
    CellRecord,
    CubeMapper,
    MappingError,
    NodeRecord,
    StoredSchemaInfo,
    cached_statement,
    derive_levels,
    rebuild_cube,
    schema_from_rows,
    schema_to_rows,
    transform_cube,
)
from repro.sqldb.engine import SQLEngine

DEFAULT_DATABASE = "dwarf_mysql"

_DDL = [
    """
    CREATE TABLE IF NOT EXISTS DWARF_SCHEMA (
      id INT PRIMARY KEY,
      node_count INT,
      cell_count INT,
      size_as_mb INT,
      size_as_bytes INT,
      entry_node_id INT,
      is_cube BOOLEAN
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS NODE (
      id INT PRIMARY KEY,
      root BOOLEAN NOT NULL,
      schema_id INT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS CELL (
      id INT PRIMARY KEY,
      cell_key VARCHAR(128),
      measure INT,
      leaf BOOLEAN NOT NULL,
      schema_id INT NOT NULL,
      dimension_table_name VARCHAR(64)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS NODE_CHILDREN (
      node_id INT,
      cell_id INT,
      PRIMARY KEY (node_id, cell_id)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS CELL_CHILDREN (
      cell_id INT,
      node_id INT,
      PRIMARY KEY (cell_id, node_id)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS DWARF_DIMENSION (
      id INT PRIMARY KEY,
      schema_id INT,
      position INT,
      name VARCHAR(64),
      dimension_table VARCHAR(64),
      schema_name VARCHAR(64),
      measure VARCHAR(64),
      aggregator VARCHAR(16)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS DWARF_EPOCH (
      id INT PRIMARY KEY,
      epoch INT,
      base_id INT,
      delta_ids TEXT,
      retired_ids TEXT,
      pending_id INT
    )
    """,
]


class MySQLDwarfMapper(CubeMapper):
    """Fully relational DWARF schema with explicit link tables."""

    name = "MySQL-DWARF"
    registry_table = "DWARF_SCHEMA"
    dimension_table = "DWARF_DIMENSION"
    epoch_table = "DWARF_EPOCH"

    def __init__(self, engine: Optional[SQLEngine] = None, database: str = DEFAULT_DATABASE) -> None:
        self.engine = engine or SQLEngine()
        self.database_name = database
        self.session = self.engine.connect()
        self._prepared: Dict[str, object] = {}
        self._compiled: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def install(self) -> None:
        self.session.execute(f"CREATE DATABASE IF NOT EXISTS {self.database_name}")
        self.session.execute(f"USE {self.database_name}")
        for ddl in _DDL:
            self.session.execute(ddl)
        self._prepared = {
            "schema": self.session.prepare(
                "INSERT INTO DWARF_SCHEMA (id, node_count, cell_count, size_as_mb, "
                "entry_node_id, is_cube) VALUES (?, ?, ?, ?, ?, ?)"
            ),
            "node": self.session.prepare(
                "INSERT INTO NODE (id, root, schema_id) VALUES (?, ?, ?)"
            ),
            "cell": self.session.prepare(
                "INSERT INTO CELL (id, cell_key, measure, leaf, schema_id, "
                "dimension_table_name) VALUES (?, ?, ?, ?, ?, ?)"
            ),
            "node_child": self.session.prepare(
                "INSERT INTO NODE_CHILDREN (node_id, cell_id) VALUES (?, ?)"
            ),
            "cell_child": self.session.prepare(
                "INSERT INTO CELL_CHILDREN (cell_id, node_id) VALUES (?, ?)"
            ),
            "dimension": self.session.prepare(
                "INSERT INTO DWARF_DIMENSION (id, schema_id, position, name, "
                "dimension_table, schema_name, measure, aggregator) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)"
            ),
        }
        # The zero-parse fast path: the same statements fully planned so
        # store() streams record batches straight into the heap/B-trees.
        self._compiled = {
            name: self.session.compile_insert(prepared.text)
            for name, prepared in self._prepared.items()
        }

    def _next_ids(self) -> Dict[str, int]:
        rows = self.session.execute("SELECT * FROM DWARF_SCHEMA")
        schema_id = 1
        node_id = 1
        cell_id = 1
        for row in rows:
            schema_id = max(schema_id, row["id"] + 1)
            node_id += row["node_count"]
            cell_id += row["cell_count"]
        return {"schema": schema_id, "node": node_id, "cell": cell_id}

    # ------------------------------------------------------------------
    def store(
        self,
        cube: DwarfCube,
        is_cube: bool = False,
        probe_size: bool = True,
        compiled: bool = True,
    ) -> int:
        """Persist ``cube``; ``compiled`` selects the zero-parse fast path."""
        if not self._prepared:
            raise MappingError(f"{self.name}: call install() before store()")
        ids = self._next_ids()
        transformed = transform_cube(
            cube, first_node_id=ids["node"], first_cell_id=ids["cell"]
        )
        schema_id = ids["schema"]
        schema_row = (
            schema_id,
            len(transformed.nodes),
            len(transformed.cells),
            0,
            transformed.entry_node_id,
            is_cube,
        )
        node_rows = ((r.node_id, r.is_root, schema_id) for r in transformed.nodes)
        cell_rows = (
            (r.cell_id, r.key_text, r.measure, r.is_leaf, schema_id, r.dimension_table)
            for r in transformed.cells
        )
        # Every node -> contained-cell relationship is one row.
        node_child_rows = (
            (node.node_id, cell_id)
            for node in transformed.nodes
            for cell_id in node.children_cell_ids
        )
        # Every cell -> pointed-node relationship is one row.
        cell_child_rows = (
            (r.cell_id, r.pointer_node_id)
            for r in transformed.cells
            if r.pointer_node_id is not None
        )
        dimension_rows = (
            (
                row["id"], row["schema_id"], row["position"], row["name"],
                row["dimension_table"], row["schema_name"], row["measure"],
                row["aggregator"],
            )
            for row in schema_to_rows(cube.schema, schema_id)
        )
        if compiled:
            self._compiled["schema"].execute(schema_row)
            self._compiled["node"].execute_batch(node_rows)
            self._compiled["cell"].execute_batch(cell_rows)
            self._compiled["node_child"].execute_batch(node_child_rows)
            self._compiled["cell_child"].execute_batch(cell_child_rows)
            self._compiled["dimension"].execute_batch(dimension_rows)
        else:
            self.session.execute_prepared(self._prepared["schema"], schema_row)
            self.session.execute_many(self._prepared["node"], node_rows)
            self.session.execute_many(self._prepared["cell"], cell_rows)
            self.session.execute_many(self._prepared["node_child"], node_child_rows)
            self.session.execute_many(self._prepared["cell_child"], cell_child_rows)
            self.session.execute_many(self._prepared["dimension"], dimension_rows)
        if probe_size:
            self.probe_size(schema_id)
        return schema_id

    def probe_size(self, schema_id: int) -> int:
        size_bytes = self.size_bytes()
        size_mb = self._size_as_mb(size_bytes)
        self.session.execute(
            "UPDATE DWARF_SCHEMA SET size_as_mb = ?, size_as_bytes = ? WHERE id = ?",
            (size_mb, size_bytes, schema_id),
        )
        return size_mb

    # ------------------------------------------------------------------
    def info(self, schema_id: int) -> StoredSchemaInfo:
        row = self.session.execute(
            "SELECT * FROM DWARF_SCHEMA WHERE id = ?", (schema_id,)
        ).one()
        if row is None:
            raise MappingError(f"no stored schema with id {schema_id}")
        return StoredSchemaInfo(
            schema_id=row["id"],
            node_count=row["node_count"],
            cell_count=row["cell_count"],
            size_as_mb=row["size_as_mb"],
            entry_node_id=row["entry_node_id"],
            is_cube=row["is_cube"],
            size_as_bytes=row["size_as_bytes"],
        )

    def load(self, schema_id: int, schema: Optional[CubeSchema] = None) -> DwarfCube:
        info = self.info(schema_id)
        if schema is None:
            dimension_rows = list(
                self.session.execute(
                    "SELECT * FROM DWARF_DIMENSION WHERE schema_id = ?", (schema_id,)
                )
            )
            schema = schema_from_rows(dimension_rows)

        node_rows = list(
            self.session.execute("SELECT * FROM NODE WHERE schema_id = ?", (schema_id,))
        )
        node_ids: Set[int] = {row["id"] for row in node_rows}
        cell_rows = list(
            self.session.execute("SELECT * FROM CELL WHERE schema_id = ?", (schema_id,))
        )

        # Join the link tables back onto the entities (paper §3's join on
        # unique ids) through the SQL layer.
        containment = [
            (row["node_id"], row["cell_id"])
            for row in self.session.execute("SELECT * FROM NODE_CHILDREN")
            if row["node_id"] in node_ids
        ]
        pointers = {
            row["cell_id"]: row["node_id"]
            for row in self.session.execute("SELECT * FROM CELL_CHILDREN")
            if row["node_id"] in node_ids
        }

        parent_of: Dict[int, int] = {cell_id: node_id for node_id, cell_id in containment}
        cells = [
            CellRecord(
                cell_id=row["id"],
                key_text=row["cell_key"],
                measure=row["measure"],
                parent_node_id=parent_of[row["id"]],
                pointer_node_id=pointers.get(row["id"]),
                is_leaf=row["leaf"],
                is_root_cell=False,
                dimension_table=row["dimension_table_name"],
                level=0,
            )
            for row in cell_rows
        ]
        levels = derive_levels(cells, info.entry_node_id)

        children_by_node: Dict[int, List[int]] = {}
        for node_id, cell_id in containment:
            children_by_node.setdefault(node_id, []).append(cell_id)
        parents_by_node: Dict[int, List[int]] = {}
        for cell_id, node_id in pointers.items():
            parents_by_node.setdefault(node_id, []).append(cell_id)

        nodes = [
            NodeRecord(
                node_id=row["id"],
                level=levels.get(row["id"], 0),
                is_root=row["root"],
                children_cell_ids=tuple(children_by_node.get(row["id"], ())),
                parent_cell_ids=tuple(parents_by_node.get(row["id"], ())),
            )
            for row in node_rows
        ]
        return rebuild_cube(schema, nodes, cells, info.entry_node_id)

    # ------------------------------------------------------------------
    def delete_cube_rows(self, schema_id: int) -> int:
        """Remove one stored cube's entity/link/dimension rows (compaction).

        The ``DWARF_SCHEMA`` registry row is kept as an allocation
        watermark so ``_next_ids`` never reissues the reclaimed range.
        """
        node_ids = [
            row["id"]
            for row in self.session.execute(
                "SELECT id FROM NODE WHERE schema_id = ?", (schema_id,)
            )
        ]
        cell_ids = [
            row["id"]
            for row in self.session.execute(
                "SELECT id FROM CELL WHERE schema_id = ?", (schema_id,)
            )
        ]
        reclaimed = 0
        node_child = cached_statement(
            self, "DELETE FROM NODE_CHILDREN WHERE node_id = ?"
        )
        for node_id in node_ids:
            reclaimed += self.session.execute_prepared(node_child, (node_id,)).rowcount
        cell_child = cached_statement(
            self, "DELETE FROM CELL_CHILDREN WHERE cell_id = ?"
        )
        for cell_id in cell_ids:
            reclaimed += self.session.execute_prepared(cell_child, (cell_id,)).rowcount
        for table in ("NODE", "CELL", "DWARF_DIMENSION"):
            reclaimed += self.session.execute(
                f"DELETE FROM {table} WHERE schema_id = ?", (schema_id,)
            ).rowcount
        return reclaimed

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        return self.engine.database(self.database_name).size_bytes

    def reset(self) -> None:
        database = self.engine.database(self.database_name)
        for table in (
            "DWARF_SCHEMA", "NODE", "CELL", "NODE_CHILDREN", "CELL_CHILDREN",
            "DWARF_DIMENSION", "DWARF_EPOCH",
        ):
            if database.has_table(table):
                self.session.execute(f"TRUNCATE {self.database_name}.{table}")
        database.checkpoint()
