"""SQL sessions: the client surface of the relational engine.

Mirrors a DB-API-ish driver: ``execute`` for one-off statements and
``prepare`` + ``execute_many`` for bulk loads ("the DWARF cubes were
inserted in bulk", paper §5).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.sqldb.sql import ast
from repro.sqldb.sql.executor import SQLResult, execute, make_insert_plan
from repro.sqldb.sql.parser import parse


class SQLPreparedStatement:
    """A parsed statement with ``?`` bind markers, reusable across executions."""

    __slots__ = ("statement", "text", "_plan_key", "_plan")

    def __init__(self, text: str, statement: ast.Statement) -> None:
        self.text = text
        self.statement = statement
        self._plan_key = None
        self._plan = None

    def __repr__(self) -> str:
        return f"SQLPreparedStatement({self.text!r})"


class SQLSession:
    """A connection to the engine with an optional current database."""

    def __init__(self, engine, database: Optional[str] = None) -> None:
        self.engine = engine
        self.database = database

    def execute(self, sql: str, params: Sequence = ()) -> SQLResult:
        statement = parse(sql)
        result, new_database = execute(self.engine, statement, params, self.database)
        if new_database is not None:
            self.database = new_database
        return result

    def prepare(self, sql: str) -> SQLPreparedStatement:
        return SQLPreparedStatement(sql, parse(sql))

    def execute_prepared(
        self, prepared: SQLPreparedStatement, params: Sequence = ()
    ) -> SQLResult:
        result, new_database = execute(
            self.engine, prepared.statement, params, self.database
        )
        if new_database is not None:
            self.database = new_database
        return result

    def execute_many(
        self, prepared: SQLPreparedStatement, rows: Iterable[Sequence]
    ) -> int:
        """Run one prepared DML statement per parameter row; returns the count."""
        key = (id(self.engine), self.database)
        if prepared._plan_key != key:
            prepared._plan_key = key
            prepared._plan = make_insert_plan(self.engine, prepared.statement, self.database)
        plan = prepared._plan
        count = 0
        if plan is not None:
            for params in rows:
                plan(params)
                count += 1
            return count
        for params in rows:
            execute(self.engine, prepared.statement, params, self.database)
            count += 1
        return count

    def __repr__(self) -> str:
        return f"SQLSession(database={self.database!r})"
