"""SQL sessions: the client surface of the relational engine.

Mirrors a DB-API-ish driver: ``execute`` for one-off statements and
``prepare`` + ``execute_many`` for bulk loads ("the DWARF cubes were
inserted in bulk", paper §5).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.analysis.flags import checks_enabled
from repro.query import (
    UNPLANNABLE,
    AnalyzedStatement,
    Plan,
    PlanCache,
    analyze_plan,
    counter_totals,
    record_query,
)
from repro.sqldb.errors import ProgrammingError
from repro.sqldb.sql import ast
from repro.sqldb.sql.executor import (
    SQLResult,
    build_select_plan,
    execute,
    make_insert_plan,
    make_select_many_plan,
    plan_insert_template,
)
from repro.sqldb.sql.parser import parse
from repro.telemetry import get_query_log, wall_clock

_QUERY_LOG = get_query_log()


class SQLCompiledInsert:
    """A fully-planned INSERT bound to one table.

    The zero-parse bulk-store fast path: the statement is parsed and
    planned exactly once at :meth:`SQLSession.compile_insert` time; after
    that, :meth:`execute_batch` binds parameter rows against the resolved
    column template and streams them through the table's bulk write loop
    — no lexer, no parser, no executor dispatch, no per-row plan lookup.
    The stored pages, redo log and binlog are identical to what per-row
    prepared execution produces.
    """

    __slots__ = ("text", "table", "_template")

    def __init__(self, text: str, table, template) -> None:
        self.text = text
        self.table = table
        self._template = template

    def execute(self, params: Sequence = ()) -> None:
        """Insert one parameter row."""
        self.execute_batch((params,))

    def execute_batch(self, rows: Iterable[Sequence]) -> int:
        """Insert many parameter rows; returns the count written."""
        template = self._template

        def dict_rows():
            for params in rows:
                row = {}
                for column, is_bind, value in template:
                    resolved = params[value] if is_bind else value
                    if resolved is not None:
                        row[column] = resolved
                yield row

        count = self.table.insert_rows(dict_rows())
        if checks_enabled():
            # REPRO_CHECK=1 sanitizer mode: after a bulk write the heap
            # (clustered tree, row codec, secondary indexes) must be sound.
            from repro.analysis.runner import runtime_check

            runtime_check(self.table, label=f"execute_batch[{self.table.name}]")
        return count

    def __repr__(self) -> str:
        return f"SQLCompiledInsert({self.text!r})"


class SQLPreparedStatement:
    """A parsed statement with ``?`` bind markers, reusable across executions."""

    __slots__ = ("statement", "text", "_plan_key", "_plan")

    def __init__(self, text: str, statement: ast.Statement) -> None:
        self.text = text
        self.statement = statement
        self._plan_key = None
        self._plan = None

    def __repr__(self) -> str:
        return f"SQLPreparedStatement({self.text!r})"


class SQLSession:
    """A connection to the engine with an optional current database.

    SELECTs are compiled into :mod:`repro.query` plans and memoised in
    the session's :class:`~repro.query.PlanCache`, keyed on
    ``(current database, statement text)`` — a warm statement skips the
    parser and the planner entirely and goes straight to the compiled
    operator tree.  Cached plans carry guards that revalidate the
    resolved tables (identity + index signature) on every hit, so DDL
    invalidates them instead of silently replaying stale access paths.
    """

    def __init__(self, engine, database: Optional[str] = None) -> None:
        self.engine = engine
        self.database = database
        self.plan_cache = PlanCache()

    def execute(self, sql: str, params: Sequence = ()) -> SQLResult:
        if _QUERY_LOG.enabled:
            return self._execute_logged(sql, params)
        key = (self.database, sql)
        plan = self.plan_cache.get(key)
        if isinstance(plan, Plan):
            return SQLResult(plan.run(params))
        if isinstance(plan, AnalyzedStatement):
            return self._run_analyzed(plan, params)
        return self._dispatch(parse(sql), sql, params)

    def _execute_logged(self, sql: str, params: Sequence) -> SQLResult:
        """The :meth:`execute` body with query-history recording.

        A separate method so the REPRO_QUERY_LOG=0 hot path above pays
        exactly one attribute check and allocates nothing extra."""
        t0 = wall_clock()
        key = (self.database, sql)
        plan = self.plan_cache.get(key)
        if isinstance(plan, Plan):
            before = counter_totals(plan)
            result = SQLResult(plan.run(params))
            record_query(_QUERY_LOG, sql, "sql", wall_clock() - t0,
                         len(result), plan=plan, before=before)
            return result
        if isinstance(plan, AnalyzedStatement):
            result = self._run_analyzed(plan, params)
            record_query(_QUERY_LOG, sql, "sql", wall_clock() - t0,
                         len(result), analyzed=result.analyzed)
            return result
        result = self._dispatch(parse(sql), sql, params)
        # A cold SELECT (or EXPLAIN ANALYZE) was just compiled and cached;
        # its fresh counters are exactly this execution's actuals.  peek()
        # keeps the read out of the plan-cache hit/miss metrics.
        record_query(_QUERY_LOG, sql, "sql", wall_clock() - t0, len(result),
                     plan=self.plan_cache.peek(key),
                     analyzed=getattr(result, "analyzed", None))
        return result

    def _run_analyzed(self, entry: AnalyzedStatement, params: Sequence) -> SQLResult:
        analyzed = analyze_plan(entry.plan, params)
        result = SQLResult(analyzed.report)
        result.analyzed = analyzed
        return result

    def prepare(self, sql: str) -> SQLPreparedStatement:
        return SQLPreparedStatement(sql, parse(sql))

    def _dispatch(self, statement: ast.Statement, text: str, params: Sequence) -> SQLResult:
        """Plan-and-cache SELECTs (and analyzed EXPLAINs); everything
        else runs the generic executor."""
        if type(statement) is ast.Select:
            plan = build_select_plan(self.engine, statement, self.database)
            self.plan_cache.put((self.database, text), plan)
            return SQLResult(plan.run(params))
        if type(statement) is ast.Explain and statement.analyze:
            plan = build_select_plan(self.engine, statement.select, self.database)
            entry = AnalyzedStatement(plan)
            self.plan_cache.put((self.database, text), entry)
            return self._run_analyzed(entry, params)
        result, new_database = execute(self.engine, statement, params, self.database)
        if new_database is not None:
            self.database = new_database
        return result

    def compile_insert(self, sql: str) -> SQLCompiledInsert:
        """Plan a single-row INSERT once, for zero-parse bulk execution.

        Raises :class:`~repro.sqldb.errors.ProgrammingError` for anything
        but a one-row INSERT with a resolvable database: those shapes
        need the generic executor.
        """
        statement = parse(sql)
        planned = plan_insert_template(self.engine, statement, self.database)
        if planned is None:
            raise ProgrammingError(
                f"only single-row INSERT statements can be compiled: {sql!r}"
            )
        table, template = planned
        return SQLCompiledInsert(sql, table, template)

    def execute_prepared(
        self, prepared: SQLPreparedStatement, params: Sequence = ()
    ) -> SQLResult:
        if _QUERY_LOG.enabled:
            return self._execute_logged(prepared.text, params)
        key = (self.database, prepared.text)
        plan = self.plan_cache.get(key)
        if isinstance(plan, Plan):
            return SQLResult(plan.run(params))
        if isinstance(plan, AnalyzedStatement):
            return self._run_analyzed(plan, params)
        return self._dispatch(prepared.statement, prepared.text, params)

    def execute_many(
        self, prepared: SQLPreparedStatement, rows: Iterable[Sequence]
    ) -> int:
        """Run one prepared DML statement per parameter row; returns the count."""
        t0 = wall_clock() if _QUERY_LOG.enabled else 0.0
        key = (id(self.engine), self.database)
        if prepared._plan_key != key:
            prepared._plan_key = key
            prepared._plan = make_insert_plan(self.engine, prepared.statement, self.database)
        plan = prepared._plan
        count = 0
        if plan is not None:
            for params in rows:
                plan(params)
                count += 1
        else:
            for params in rows:
                execute(self.engine, prepared.statement, params, self.database)
                count += 1
        self._maybe_check(prepared)
        if _QUERY_LOG.enabled:
            # One record per batch: rows = parameter rows executed.
            record_query(_QUERY_LOG, prepared.text, "sql",
                         wall_clock() - t0, count)
        return count

    def select_many(
        self, statement, param_rows: Iterable[Sequence]
    ) -> List[SQLResult]:
        """Run one SELECT shape over many parameter rows at once.

        ``statement`` is an :class:`SQLPreparedStatement` or a SQL string
        (parsed once).  The point-select shape
        ``SELECT ... WHERE <pk> = ?`` binds all keys up front and
        resolves them with one :meth:`~repro.sqldb.table.Table.get_many`
        call; every other shape falls back to per-row execution.
        """
        if isinstance(statement, str):
            statement = self.prepare(statement)
        rows_list = list(param_rows)
        fused = self._fused_plan_for(statement)
        if fused is UNPLANNABLE:
            # Per-row fallback logs per statement through execute_prepared.
            return [self.execute_prepared(statement, params) for params in rows_list]
        t0 = wall_clock() if _QUERY_LOG.enabled else 0.0
        is_bind, value = fused.key_slot
        columns, limit = fused.columns, fused.limit
        keys = [params[value] if is_bind else value for params in rows_list]
        results: List[SQLResult] = []
        for row in fused.fetch(keys):
            rows = [row] if row is not None else []
            if limit is not None:
                rows = rows[:limit]
            if columns:
                rows = [{name: r[name] for name in columns} for r in rows]
            results.append(SQLResult(rows))
        if _QUERY_LOG.enabled:
            # One record for the fused multi-get batch.
            record_query(_QUERY_LOG, statement.text, "sql", wall_clock() - t0,
                         sum(len(r) for r in results))
        return results

    def _fused_plan_for(self, prepared: SQLPreparedStatement):
        """Cached fused multi-get plan (UNPLANNABLE = not a point select)."""
        key = (self.database, "select_many", prepared.text)
        fused = self.plan_cache.get(key)
        if fused is None:
            fused = make_select_many_plan(self.engine, prepared.statement, self.database)
            if fused is None:
                fused = UNPLANNABLE
            self.plan_cache.put(key, fused)
        return fused

    def _maybe_check(self, prepared: SQLPreparedStatement) -> None:
        """REPRO_CHECK=1 hook: verify the current database after a bulk load."""
        if not checks_enabled() or self.database is None:
            return
        from repro.analysis.runner import runtime_check

        if not self.engine.has_database(self.database):
            return
        for table in self.engine.database(self.database).tables:
            runtime_check(table, label=f"execute_many[{prepared.text}]")

    def __repr__(self) -> str:
        return f"SQLSession(database={self.database!r})"
