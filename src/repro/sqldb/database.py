"""Databases (schemas) of the relational engine."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.sqldb.errors import ProgrammingError
from repro.sqldb.table import SQLColumn, Table


class Database:
    """A named collection of tables."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}
        # Shared redo log: every table mutation appends here first.
        self._redo_log = bytearray()
        # Row-based binary log (replication), also per mutation.
        self._binlog = bytearray()

    def create_table(
        self,
        name: str,
        columns: Sequence[SQLColumn],
        primary_key: Sequence[str],
        if_not_exists: bool = False,
    ) -> Table:
        """Create a table.

        Raises ProgrammingError for duplicate names unless ``if_not_exists``.
        """
        lowered = name.lower()
        if lowered in self._tables:
            if if_not_exists:
                return self._tables[lowered]
            raise ProgrammingError(f"table {name!r} already exists in {self.name!r}")
        table = Table(
            name, columns, primary_key, redo_log=self._redo_log, binlog=self._binlog
        )
        self._tables[lowered] = table
        return table

    def drop_table(self, name: str) -> None:
        """Raises ProgrammingError when no such table exists."""
        if name.lower() not in self._tables:
            raise ProgrammingError(f"no table {name!r} in database {self.name!r}")
        del self._tables[name.lower()]

    def table(self, name: str) -> Table:
        """Raises ProgrammingError when no such table exists."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise ProgrammingError(f"no table {name!r} in database {self.name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    @property
    def tables(self) -> Tuple[Table, ...]:
        return tuple(self._tables.values())

    @property
    def size_bytes(self) -> int:
        return sum(table.size_bytes for table in self._tables.values())

    @property
    def redo_log_bytes(self) -> int:
        return len(self._redo_log)

    def checkpoint(self) -> None:
        """Truncate the redo and binary logs (all pages flushed)."""
        del self._redo_log[:]
        del self._binlog[:]

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={sorted(self._tables)})"
