"""Relational tables: clustered B-tree storage with InnoDB-style costs.

A table is a clustered index: rows live in the leaves of a B-tree keyed
by the (possibly composite) primary key, exactly as InnoDB stores them.
Each stored row is charged :data:`ROW_HEADER_BYTES` of header (record
header, transaction id, roll pointer) and pages are assumed
:data:`FILL_FACTOR` full — the per-row overhead that makes the
relationship tables of the MySQL-DWARF schema expensive (paper §5.1).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.workers import map_tasks
from repro.sqldb.errors import IntegrityError, ProgrammingError
from repro.sqldb.types import SQLType
from repro.storage.btree import BTree

#: InnoDB record overhead: 5 B record header + 6 B DB_TRX_ID + 7 B DB_ROLL_PTR.
ROW_HEADER_BYTES = 18

#: Typical page fill after sequential bulk load (InnoDB leaves 1/16 free).
FILL_FACTOR = 15 / 16

#: Per-mutation redo log record header (LSN, type, table id, lengths).
REDO_HEADER_BYTES = 24
_REDO_HEADER = b"\x00" * REDO_HEADER_BYTES

#: Insert undo record: type + table id + primary key reference.
_UNDO_RECORD = b"\x00" * 20

#: Row-based binary log event header (timestamp, server id, event size, ...).
_BINLOG_HEADER = b"\x00" * 19

#: Dirty-page volume that triggers a buffer-pool flush during bulk loads.
DIRTY_FLUSH_BYTES = 2 * 1024 * 1024


class SQLColumn:
    __slots__ = ("name", "sql_type", "not_null")

    def __init__(self, name: str, sql_type: SQLType, not_null: bool = False) -> None:
        self.name = name
        self.sql_type = sql_type
        self.not_null = not_null

    def __repr__(self) -> str:
        suffix = " NOT NULL" if self.not_null else ""
        return f"SQLColumn({self.name} {self.sql_type.name}{suffix})"


class Table:
    """One relational table with a clustered primary key."""

    def __init__(
        self,
        name: str,
        columns: Sequence[SQLColumn],
        primary_key: Sequence[str],
        redo_log: Optional[bytearray] = None,
        binlog: Optional[bytearray] = None,
    ) -> None:
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ProgrammingError(f"duplicate column in table {name!r}")
        if not primary_key:
            raise ProgrammingError(f"table {name!r} needs a primary key")
        for part in primary_key:
            if part not in names:
                raise ProgrammingError(f"primary key column {part!r} not in table {name!r}")
        self.name = name
        self.columns: Tuple[SQLColumn, ...] = tuple(columns)
        self.primary_key: Tuple[str, ...] = tuple(primary_key)
        self._by_name = {c.name: c for c in self.columns}
        self._pk_positions = [names.index(part) for part in self.primary_key]
        self._clustered = BTree()
        self._secondary: Dict[str, BTree] = {}
        self._index_names: Dict[str, str] = {}
        self._redo_log = redo_log
        self._binlog = binlog
        self._n_rows = 0
        self._dirty_bytes = 0
        # Virtual shards: the clustered B-tree stays one physical tree
        # (InnoDB has no per-shard files), but the table partitions its
        # key space with the same consistent-hash ring the NoSQL engine
        # uses, so the shared kernel can scatter FullScan/Aggregate/
        # HashJoin-build work across both engines identically.  The
        # sibling-engine ring is a runtime-only dependency, hence the
        # function-level import (layering: sqldb and nosqldb are peers).
        from repro.nosqldb.sharding import HashRing, resolve_shards

        self.shard_count = resolve_shards()
        self._ring = HashRing(self.shard_count)
        # Monotonic mutation counter; readers snapshot it to build
        # version-guarded caches (e.g. the MySQL-Min reconstruction
        # cache in repro.mapping.stored_query).
        self._version = 0

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------
    def column(self, name: str) -> SQLColumn:
        """Raises ProgrammingError when the table has no such column."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ProgrammingError(f"table {self.name!r} has no column {name!r}") from None

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def create_index(self, index_name: str, column: str) -> None:
        """Raises ProgrammingError for unknown columns or duplicate indexes."""
        self.column(column)
        if column in self._secondary:
            raise ProgrammingError(f"index on {self.name}.{column} already exists")
        tree = BTree()
        for pk, encoded in self._clustered.items():
            row = self.decode_row(encoded)
            if row.get(column) is not None:
                tree.insert((row[column], pk))
        self._secondary[column] = tree
        self._index_names[column] = index_name

    def has_index(self, column: str) -> bool:
        return column in self._secondary

    @property
    def indexed_columns(self) -> Tuple[str, ...]:
        """Names of the columns carrying a secondary index.

        The query planner snapshots this as part of a cached plan's
        validity signature: a CREATE INDEX changes it and invalidates
        plans compiled before the index existed.
        """
        return tuple(self._secondary)

    # ------------------------------------------------------------------
    # row codec
    # ------------------------------------------------------------------
    def encode_row(self, row: Dict[str, object]) -> bytes:
        n_cols = len(self.columns)
        bitmap = bytearray((n_cols + 7) // 8)
        parts: List[bytes] = []
        for index, column in enumerate(self.columns):
            value = row.get(column.name)
            if value is None:
                continue
            bitmap[index >> 3] |= 1 << (index & 7)
            parts.append(column.sql_type.encode(value))
        return bytes(bitmap) + b"".join(parts)

    def decode_row(self, encoded: bytes) -> Dict[str, object]:
        n_cols = len(self.columns)
        bitmap_len = (n_cols + 7) // 8
        offset = bitmap_len
        row: Dict[str, object] = {}
        for index, column in enumerate(self.columns):
            if encoded[index >> 3] & (1 << (index & 7)):
                value, offset = column.sql_type.decode(encoded, offset)
                row[column.name] = value
            else:
                row[column.name] = None
        return row

    def _pk_of(self, row: Dict[str, object]):
        parts = []
        for name in self.primary_key:
            value = row.get(name)
            if value is None:
                raise IntegrityError(f"primary key column {name!r} cannot be NULL")
            parts.append(value)
        return parts[0] if len(parts) == 1 else tuple(parts)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, row: Dict[str, object]) -> None:
        """Insert one row.

        Raises ProgrammingError for unknown columns and IntegrityError for
        NOT NULL or duplicate-primary-key violations.
        """
        for name in row:
            if name not in self._by_name:
                raise ProgrammingError(f"table {self.name!r} has no column {name!r}")
        for column in self.columns:
            value = row.get(column.name)
            if value is None:
                if column.not_null and column.name not in self.primary_key:
                    raise IntegrityError(f"column {column.name!r} is NOT NULL")
                continue
            column.sql_type.validate(value)
        key = self._pk_of(row)
        if key in self._clustered:
            raise IntegrityError(f"duplicate primary key {key!r} in table {self.name!r}")
        encoded = self.encode_row(row)
        if self._redo_log is not None:
            # InnoDB writes each mutation to the redo log before touching
            # the page, and builds an undo record for transaction rollback.
            self._redo_log += _REDO_HEADER
            self._redo_log += encoded
            self._redo_log += _UNDO_RECORD
        if self._binlog is not None:
            # Row-based replication log (on by default in production MySQL).
            self._binlog += _BINLOG_HEADER
            self._binlog += encoded
        self._clustered.insert(key, encoded)
        for column_name, tree in self._secondary.items():
            value = row.get(column_name)
            if value is not None:
                tree.insert((value, key))
        self._n_rows += 1
        self._version += 1
        # InnoDB flushes dirty buffer-pool pages continuously under bulk
        # load; clients share that I/O cost.
        self._dirty_bytes += len(encoded) + ROW_HEADER_BYTES
        if self._dirty_bytes >= DIRTY_FLUSH_BYTES:
            self._clustered.flush()
            for tree in self._secondary.values():
                tree.flush()
            self._dirty_bytes = 0

    def insert_rows(self, rows) -> int:
        """Bulk write path: many row dicts in one tight loop.

        Byte-identical to calling :meth:`insert` per row — same
        validation, encoding, redo/undo and binlog records, index
        maintenance and dirty-page flush points — with the per-row
        interpreter overhead (attribute walks, closure dispatch) hoisted
        out of the loop.  This is what a compiled statement's
        ``execute_batch`` feeds.

        Raises ProgrammingError for unknown columns and IntegrityError for
        NOT NULL or duplicate-primary-key violations.
        """
        by_name = self._by_name
        columns = self.columns
        primary_key = self.primary_key
        clustered = self._clustered
        secondary = self._secondary
        redo_log = self._redo_log
        binlog = self._binlog
        encode_row = self.encode_row
        pk_of = self._pk_of
        count = 0
        for row in rows:
            for name in row:
                if name not in by_name:
                    raise ProgrammingError(f"table {self.name!r} has no column {name!r}")
            for column in columns:
                value = row.get(column.name)
                if value is None:
                    if column.not_null and column.name not in primary_key:
                        raise IntegrityError(f"column {column.name!r} is NOT NULL")
                    continue
                column.sql_type.validate(value)
            key = pk_of(row)
            if key in clustered:
                raise IntegrityError(
                    f"duplicate primary key {key!r} in table {self.name!r}"
                )
            encoded = encode_row(row)
            if redo_log is not None:
                redo_log += _REDO_HEADER
                redo_log += encoded
                redo_log += _UNDO_RECORD
            if binlog is not None:
                binlog += _BINLOG_HEADER
                binlog += encoded
            clustered.insert(key, encoded)
            for column_name, tree in secondary.items():
                value = row.get(column_name)
                if value is not None:
                    tree.insert((value, key))
            self._n_rows += 1
            self._version += 1
            self._dirty_bytes += len(encoded) + ROW_HEADER_BYTES
            if self._dirty_bytes >= DIRTY_FLUSH_BYTES:
                clustered.flush()
                for tree in secondary.values():
                    tree.flush()
                self._dirty_bytes = 0
            count += 1
        return count

    def update_where(self, predicate, assignments: Dict[str, object]) -> int:
        """Update all rows matching ``predicate(row)``; returns the count.

        Raises ProgrammingError for unknown or primary-key assignments.
        """
        for name in assignments:
            if name in self.primary_key:
                raise ProgrammingError("updating primary key columns is not supported")
            self.column(name)
        touched = 0
        updates: List[Tuple[object, Dict[str, object]]] = []
        for pk, encoded in self._clustered.items():
            row = self.decode_row(encoded)
            if predicate(row):
                updates.append((pk, row))
        for pk, row in updates:
            for column_name, tree in self._secondary.items():
                old = row.get(column_name)
                if old is not None:
                    tree.delete((old, pk))
            row.update(assignments)
            self._clustered.insert(pk, self.encode_row(row))
            for column_name, tree in self._secondary.items():
                new = row.get(column_name)
                if new is not None:
                    tree.insert((new, pk))
            touched += 1
            self._version += 1
        return touched

    def delete_where(self, predicate) -> int:
        victims: List[Tuple[object, Dict[str, object]]] = []
        for pk, encoded in self._clustered.items():
            row = self.decode_row(encoded)
            if predicate(row):
                victims.append((pk, row))
        for pk, row in victims:
            self._clustered.delete(pk)
            for column_name, tree in self._secondary.items():
                value = row.get(column_name)
                if value is not None:
                    tree.delete((value, pk))
        self._n_rows -= len(victims)
        self._version += len(victims)
        return len(victims)

    def truncate(self) -> None:
        self._clustered = BTree()
        for column_name in list(self._secondary):
            self._secondary[column_name] = BTree()
        self._n_rows = 0
        self._version += 1

    @property
    def version(self) -> int:
        """Mutation counter: unchanged ⇒ every read result is still valid."""
        return self._version

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, key) -> Optional[Dict[str, object]]:
        encoded = self._clustered.get(key)
        return self.decode_row(encoded) if encoded is not None else None

    def get_many(self, keys: Sequence) -> List[Optional[Dict[str, object]]]:
        """Point-read many primary keys in one call, order-preserving.

        The relational analogue of the NoSQL engine's batched multi-get:
        one B-tree probe per key without per-statement executor overhead;
        ``get_many(ks) == [get(k) for k in ks]``.
        """
        clustered_get = self._clustered.get
        decode = self.decode_row
        results: List[Optional[Dict[str, object]]] = []
        for key in keys:
            encoded = clustered_get(key)
            results.append(decode(encoded) if encoded is not None else None)
        return results

    def scan(self, pushed=None) -> Iterator[Dict[str, object]]:
        """Every row in key order; with ``pushed`` (a bound predicate
        from :mod:`repro.query.pushdown`) only the rows satisfying it.
        The clustered B-tree has no zone maps, so pushdown here is
        row-wise pruning before rows reach the kernel."""
        for _, encoded in self._clustered.items():
            row = self.decode_row(encoded)
            if pushed is not None and not pushed.matches(row):
                pushed.note_pruned(1)
                continue
            yield row

    def scan_shard(self, shard_id: int, pushed=None) -> Iterator[Dict[str, object]]:
        """The virtual shard's slice of :meth:`scan`.

        Each shard walks the shared clustered tree but decodes only the
        primary keys its ring slice owns, so N scatter tasks together
        decode every row exactly once (key iteration is repeated per
        shard, decode — the dominant cost — is not).  Shard slices are
        disjoint and exhaustive: chaining ``scan_shard(0..N-1)`` yields
        the same multiset of rows as :meth:`scan`.
        """
        if self.shard_count == 1:
            yield from self.scan(pushed)
            return
        shard_for = self._ring.shard_for
        decode = self.decode_row
        for pk, encoded in self._clustered.items():
            if shard_for(pk) != shard_id:
                continue
            row = decode(encoded)
            if pushed is not None and not pushed.matches(row):
                pushed.note_pruned(1)
                continue
            yield row

    def run_sharded(self, tasks):
        """Scatter hook the kernel duck-types: run per-shard tasks on the
        ``REPRO_WORKERS`` pool, results in task (= shard) order."""
        return map_tasks(tasks)

    def lookup_pk_prefix(self, value, pushed=None) -> List[Dict[str, object]]:
        """Rows whose *first* primary-key component equals ``value``.

        The clustered-index prefix scan InnoDB uses for composite keys
        (e.g. ``NODE_CHILDREN(node_id, cell_id)`` probed by ``node_id``).
        """
        if len(self.primary_key) < 2:
            row = self.get(value)
            rows = [row] if row is not None else []
        else:
            rows = []
            for key, encoded in self._clustered.items(lo=(value,)):
                if key[0] != value:
                    break
                rows.append(self.decode_row(encoded))
        if pushed is None:
            return rows
        kept = []
        for row in rows:
            if pushed.matches(row):
                kept.append(row)
            else:
                pushed.note_pruned(1)
        return kept

    def lookup_indexed(self, column: str, value, pushed=None) -> List[Dict[str, object]]:
        """Raises ProgrammingError when ``column`` has no secondary index."""
        tree = self._secondary.get(column)
        if tree is None:
            raise ProgrammingError(f"no index on {self.name}.{column}")
        rows = []
        for composite, _ in tree.items(lo=(value,)):
            if composite[0] != value:
                break
            row = self.get(composite[1])
            if row is None:
                continue
            if pushed is not None and not pushed.matches(row):
                pushed.note_pruned(1)
                continue
            rows.append(row)
        return rows

    def __len__(self) -> int:
        return self._n_rows

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """On-disk size: clustered pages + row headers + secondary indexes."""
        data = self._clustered.size_bytes + ROW_HEADER_BYTES * self._n_rows
        data = int(data / FILL_FACTOR)
        for tree in self._secondary.values():
            entries = len(tree)
            data += int((tree.size_bytes + ROW_HEADER_BYTES // 2 * entries) / FILL_FACTOR)
        return data

    def __repr__(self) -> str:
        return f"Table({self.name!r}, pk={list(self.primary_key)}, rows={self._n_rows})"
