"""Errors raised by the relational engine."""

from __future__ import annotations

from repro.core.errors import ReproError


class SQLError(ReproError):
    """Base class for relational engine errors."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenised or parsed."""


class IntegrityError(SQLError):
    """A constraint was violated (duplicate primary key, NOT NULL, ...)."""


class ProgrammingError(SQLError):
    """A valid statement is invalid against the current schema."""
