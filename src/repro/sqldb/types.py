"""SQL column types with MySQL-style fixed-width storage.

Unlike the NoSQL engine's varint-packed cells, the relational engine
stores numbers at their declared width (``INT`` = 4 bytes, ``BIGINT`` =
8) and strings with a length prefix — matching how InnoDB row formats
behave and driving the size gap the paper reports between the MySQL and
Cassandra schemas (Table 4).
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.sqldb.errors import ProgrammingError
from repro.storage.encoding import decode_text, encode_text

_INT4 = struct.Struct("<i")
_INT8 = struct.Struct("<q")
_FLOAT8 = struct.Struct("<d")


class SQLType:
    name = "?"

    def validate(self, value) -> None:
        raise NotImplementedError

    def encode(self, value) -> bytes:
        raise NotImplementedError

    def decode(self, buffer, offset: int) -> Tuple[object, int]:
        raise NotImplementedError

    def __eq__(self, other) -> bool:
        return isinstance(other, SQLType) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        return f"<sql {self.name}>"


class IntType(SQLType):
    name = "int"
    _range = (-(2 ** 31), 2 ** 31 - 1)

    def validate(self, value) -> None:
        """Raises ProgrammingError for non-integers or out-of-range values."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise ProgrammingError(f"expected {self.name.upper()}, got {value!r}")
        lo, hi = self._range
        if not lo <= value <= hi:
            raise ProgrammingError(f"{value} out of range for {self.name.upper()}")

    def encode(self, value) -> bytes:
        return _INT4.pack(value)

    def decode(self, buffer, offset: int):
        return _INT4.unpack_from(buffer, offset)[0], offset + 4


class BigIntType(IntType):
    name = "bigint"
    _range = (-(2 ** 63), 2 ** 63 - 1)

    def encode(self, value) -> bytes:
        return _INT8.pack(value)

    def decode(self, buffer, offset: int):
        return _INT8.unpack_from(buffer, offset)[0], offset + 8


class BooleanType(SQLType):
    """MySQL's BOOL/TINYINT(1)."""

    name = "boolean"

    def validate(self, value) -> None:
        """Raises ProgrammingError for values that are not bool/int."""
        if not isinstance(value, (bool, int)):
            raise ProgrammingError(f"expected BOOLEAN, got {value!r}")

    def encode(self, value) -> bytes:
        return b"\x01" if value else b"\x00"

    def decode(self, buffer, offset: int):
        return buffer[offset] != 0, offset + 1


class VarCharType(SQLType):
    def __init__(self, max_length: int = 255) -> None:
        self.max_length = max_length
        self.name = f"varchar({max_length})"

    def validate(self, value) -> None:
        """Raises ProgrammingError for non-strings or over-length values."""
        if not isinstance(value, str):
            raise ProgrammingError(f"expected VARCHAR, got {value!r}")
        if len(value) > self.max_length:
            raise ProgrammingError(
                f"value of length {len(value)} exceeds VARCHAR({self.max_length})"
            )

    def encode(self, value) -> bytes:
        return encode_text(value)

    def decode(self, buffer, offset: int):
        return decode_text(buffer, offset)


class TextType(VarCharType):
    def __init__(self) -> None:
        super().__init__(max_length=65535)
        self.name = "text"


class DoubleType(SQLType):
    name = "double"

    def validate(self, value) -> None:
        """Raises ProgrammingError for values that are not int/float."""
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ProgrammingError(f"expected DOUBLE, got {value!r}")

    def encode(self, value) -> bytes:
        return _FLOAT8.pack(float(value))

    def decode(self, buffer, offset: int):
        return _FLOAT8.unpack_from(buffer, offset)[0], offset + 8


def parse_type(spec: str) -> SQLType:
    """Resolve a type expression like ``INT`` or ``VARCHAR(64)``.

    Raises ProgrammingError for unknown type names or bad VARCHAR widths.
    """
    text = spec.strip().lower()
    if text in ("int", "integer"):
        return IntType()
    if text == "bigint":
        return BigIntType()
    if text in ("boolean", "bool", "tinyint(1)", "tinyint"):
        return BooleanType()
    if text == "text":
        return TextType()
    if text in ("double", "float", "real"):
        return DoubleType()
    if text.startswith("varchar(") and text.endswith(")"):
        try:
            width = int(text[8:-1])
        except ValueError:
            raise ProgrammingError(f"bad VARCHAR width in {spec!r}") from None
        return VarCharType(width)
    if text == "varchar":
        return VarCharType()
    raise ProgrammingError(f"unknown SQL type {spec!r}")
