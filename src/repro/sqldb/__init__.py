"""A relational storage engine (MySQL/InnoDB substitute).

Tables are clustered B-trees with per-row header overhead and page fill
factors; the engine speaks an SQL subset through
:class:`SQLSession`, exactly how the paper's system drives MySQL for the
MySQL-DWARF and MySQL-Min comparison schemas.
"""

from repro.sqldb.database import Database
from repro.sqldb.engine import SQLEngine
from repro.sqldb.errors import IntegrityError, ProgrammingError, SQLError, SQLSyntaxError
from repro.sqldb.session import SQLPreparedStatement, SQLSession
from repro.sqldb.table import SQLColumn, Table
from repro.sqldb.types import (
    BigIntType,
    BooleanType,
    DoubleType,
    IntType,
    SQLType,
    TextType,
    VarCharType,
    parse_type,
)

__all__ = [
    "BigIntType",
    "BooleanType",
    "Database",
    "DoubleType",
    "IntegrityError",
    "IntType",
    "ProgrammingError",
    "SQLColumn",
    "SQLEngine",
    "SQLError",
    "SQLPreparedStatement",
    "SQLSession",
    "SQLSyntaxError",
    "SQLType",
    "Table",
    "TextType",
    "VarCharType",
    "parse_type",
]
