"""The relational engine entry point (a single-node MySQL stand-in)."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.sqldb.database import Database
from repro.sqldb.errors import ProgrammingError


class SQLEngine:
    """Holds databases and hands out SQL sessions."""

    def __init__(self) -> None:
        self._databases: Dict[str, Database] = {}

    def create_database(self, name: str, if_not_exists: bool = False) -> Database:
        """Create a database.

        Raises ProgrammingError for duplicate names unless ``if_not_exists``.
        """
        lowered = name.lower()
        if lowered in self._databases:
            if if_not_exists:
                return self._databases[lowered]
            raise ProgrammingError(f"database {name!r} already exists")
        database = Database(name)
        self._databases[lowered] = database
        return database

    def drop_database(self, name: str) -> None:
        """Raises ProgrammingError when no such database exists."""
        if name.lower() not in self._databases:
            raise ProgrammingError(f"no database {name!r}")
        del self._databases[name.lower()]

    def database(self, name: str) -> Database:
        """Raises ProgrammingError when no such database exists."""
        try:
            return self._databases[name.lower()]
        except KeyError:
            raise ProgrammingError(f"no database {name!r}") from None

    def has_database(self, name: str) -> bool:
        return name.lower() in self._databases

    @property
    def databases(self) -> Tuple[Database, ...]:
        return tuple(self._databases.values())

    def connect(self, database: str = ""):
        """Open a SQL session, optionally bound to a database."""
        from repro.sqldb.session import SQLSession

        return SQLSession(self, database or None)

    def __repr__(self) -> str:
        return f"SQLEngine(databases={sorted(self._databases)})"
