"""SQL execution against a :class:`~repro.sqldb.engine.SQLEngine`.

SELECTs are compiled into :mod:`repro.query` plans: a storage-bound
access leaf (point read when the WHERE clause pins the primary key or an
indexed column, otherwise a scan), hash equi-joins in FROM order,
residual filters, then sort/limit/projection or aggregation.  This
module is the SQL *binding* of the shared kernel — it turns the dialect
AST into the callables the plan nodes carry, and keeps all
engine-specific error behaviour (:class:`ProgrammingError`) on this
side of the boundary.  ``EXPLAIN SELECT`` renders the same plan tree
without executing it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.query import (
    ACCESS_INDEX,
    ACCESS_MULTIGET,
    ACCESS_PK_PREFIX,
    ACCESS_POINT,
    Aggregate,
    Filter,
    FullScan,
    HashJoin,
    IndexScan,
    Limit,
    MultiGet,
    PUSHABLE_OPS,
    PartialAggregate,
    Plan,
    PointLookup,
    Project,
    PushedCondition,
    PushedPredicate,
    ResultSet,
    Sort,
    TableMeta,
    analyze_plan,
    choose_access,
    choose_join_access,
    compare,
    count_partial,
    evaluate_aggregate,
    null_safe_key,
)
from repro.sqldb.errors import ProgrammingError
from repro.sqldb.sql import ast
from repro.sqldb.table import SQLColumn, Table
from repro.sqldb.types import parse_type


class SQLResult(ResultSet):
    """Rows returned by a SELECT, plus the affected-row count for DML."""

    __slots__ = ()

    def __repr__(self) -> str:
        return f"SQLResult({len(self.rows)} rows, rowcount={self.rowcount})"


def execute(
    engine,
    statement: ast.Statement,
    params: Sequence = (),
    current_database: Optional[str] = None,
) -> Tuple[SQLResult, Optional[str]]:
    return _Executor(engine, params, current_database).run(statement)


def plan_insert_template(
    engine, statement: ast.Statement, current_database: Optional[str]
):
    """Resolve a single-row INSERT to ``(table, template)``.

    ``template`` is a list of ``(column_name, is_bind, index_or_constant)``
    slots.  Returns ``None`` for anything but a one-row INSERT with a
    resolvable database.
    """
    if not isinstance(statement, ast.Insert) or len(statement.rows) != 1:
        return None
    template = []
    for column, value in zip(statement.columns, statement.rows[0]):
        if isinstance(value, ast.Placeholder):
            template.append((column, True, value.index))
        else:
            template.append((column, False, value))
    database_name = statement.source.database or current_database
    if database_name is None:
        return None
    table = engine.database(database_name).table(statement.source.table)
    return table, template


def plan_point_select(
    engine, statement: ast.Statement, current_database: Optional[str]
):
    """Resolve ``SELECT ... FROM t WHERE <pk> = ?`` to a batched-fetch shape.

    Returns ``(table, key_slot, columns, limit)`` where ``key_slot`` is
    ``(is_bind, index_or_constant)`` and ``columns`` the projected names
    (empty = ``*``).  This is the shape
    :meth:`~repro.sqldb.session.SQLSession.select_many` fuses into one
    :class:`repro.query.MultiGet` execution.  Returns ``None`` for any
    other shape (joins, aggregates, composite keys, ...) — those fall
    back to per-row execution through the generic executor.
    """
    if not isinstance(statement, ast.Select) or statement.count:
        return None
    if statement.joins or statement.aggregates or statement.order_by is not None:
        return None
    database_name = statement.source.database or current_database
    if database_name is None:
        return None
    table = engine.database(database_name).table(statement.source.table)
    if len(table.primary_key) != 1 or len(statement.where) != 1:
        return None
    condition = statement.where[0]
    if condition.op != "=" or condition.column.name != table.primary_key[0]:
        return None
    if condition.column.qualifier not in (None, statement.source.alias):
        return None
    columns = []
    for ref in statement.columns:
        if ref.qualifier not in (None, statement.source.alias):
            return None
        table.column(ref.name)  # validate once, not per row
        columns.append(ref.name)
    value = condition.value
    is_bind = isinstance(value, ast.Placeholder)
    key_slot = (is_bind, value.index if is_bind else value)
    return table, key_slot, tuple(columns), statement.limit


class FusedPointSelect:
    """select_many's server-side shape: one :class:`MultiGet` resolves
    every bound key, key-aligned so each parameter row maps to its own
    result.  Cached in the session plan cache under the statement text;
    ``guards`` revalidate the resolved table on every hit."""

    __slots__ = ("node", "key_slot", "columns", "limit", "guards")

    def __init__(self, node, key_slot, columns, limit, guards) -> None:
        self.node = node
        self.key_slot = key_slot
        self.columns = columns
        self.limit = limit
        self.guards = guards

    def fetch(self, keys: Sequence) -> List[Optional[Dict[str, object]]]:
        """Key-aligned rows (None per missing key) for ``keys``."""
        return self.node.run(keys)


def make_select_many_plan(
    engine, statement: ast.Statement, current_database: Optional[str]
) -> Optional[FusedPointSelect]:
    """Compile the fused multi-get plan behind ``select_many``.

    Returns ``None`` when the statement is not the point-select shape.
    """
    planned = plan_point_select(engine, statement, current_database)
    if planned is None:
        return None
    table, key_slot, columns, limit = planned
    node = MultiGet(
        table,
        keys=lambda keys: keys,
        table_name=statement.source.table,
        key_desc=table.primary_key[0],
        keep_missing=True,
    )
    database_name = statement.source.database or current_database
    guard = _table_guard(engine, database_name, statement.source.table, table)
    return FusedPointSelect(node, key_slot, columns, limit, (guard,))


def make_insert_plan(engine, statement: ast.Statement, current_database: Optional[str]):
    """Compile a prepared single-row INSERT into a per-row callable.

    The server-side plan for ``executemany``: table and column template
    resolved once, per row only parameter binding and the storage call.
    Returns ``None`` for anything but a one-row INSERT.
    """
    planned = plan_insert_template(engine, statement, current_database)
    if planned is None:
        return None
    table, template = planned
    table_insert = table.insert

    def run(params: Sequence) -> None:
        row = {}
        for column, is_bind, value in template:
            resolved = params[value] if is_bind else value
            if resolved is not None:
                row[column] = resolved
        table_insert(row)

    return run


# ----------------------------------------------------------------------
# AST -> kernel-callable compilation helpers
# ----------------------------------------------------------------------
def _compile_value(value) -> Callable[[Sequence], object]:
    """A ``resolve(params)`` callable for one literal-or-placeholder."""
    if isinstance(value, ast.Placeholder):
        index = value.index

        def resolve(params: Sequence):
            if index >= len(params):
                raise ProgrammingError(
                    f"statement has bind marker ?{index} but only "
                    f"{len(params)} parameters were supplied"
                )
            return params[index]

        return resolve
    return lambda params: value


def _compile_value_list(values) -> Callable[[Sequence], List[object]]:
    resolvers = [_compile_value(v) for v in values]
    return lambda params: [resolve(params) for resolve in resolvers]


def _value_desc(value) -> str:
    if isinstance(value, ast.Placeholder):
        return repr(value)
    return repr(value)


def _condition_desc(condition) -> str:
    column, op, value = condition.column, condition.op, condition.value
    if op == "ISNULL":
        return f"{column} IS NULL"
    if op == "NOTNULL":
        return f"{column} IS NOT NULL"
    if op == "IN":
        return f"{column} IN ({', '.join(_value_desc(v) for v in value)})"
    return f"{column} {op} {_value_desc(value)}"


def _table_guard(engine, database_name: str, table_name: str, table: Table):
    """A plan-cache guard: same table object, same index signature.

    DROP/recreate swaps the object; CREATE INDEX changes the signature —
    either way the cached plan is stale and must be rebuilt.
    """
    indexed = frozenset(table.indexed_columns)

    def check() -> bool:
        return (
            engine.database(database_name).table(table_name) is table
            and frozenset(table.indexed_columns) == indexed
        )

    return check


def _table_meta(table: Table, alias: str) -> TableMeta:
    return TableMeta(
        name=alias,
        primary_key=tuple(table.primary_key),
        indexed=frozenset(table.indexed_columns),
        supports_pk_prefix=len(table.primary_key) > 1,
    )


def build_select_plan(
    engine, stmt: ast.Select, current_database: Optional[str]
) -> Plan:
    """Compile a SELECT statement into an executable kernel plan.

    All statement-shape validation (unknown tables/columns, ambiguous
    references, GROUP BY rules) happens here, at plan-build time; the
    returned plan only binds parameters and runs.  Raises
    :class:`ProgrammingError` exactly where per-execution interpretation
    used to.
    """
    return _SelectPlanBuilder(engine, stmt, current_database).build()


class _SelectPlanBuilder:
    def __init__(self, engine, stmt: ast.Select, current_database: Optional[str]) -> None:
        self.engine = engine
        self.stmt = stmt
        self.current_database = current_database
        self.tables: Dict[str, Table] = {}
        self.guards: List[Callable[[], bool]] = []

    def build(self) -> Plan:
        stmt = self.stmt
        sources = [stmt.source] + [join.source for join in stmt.joins]
        aliases = [source.alias for source in sources]
        if len(set(aliases)) != len(aliases):
            raise ProgrammingError(f"duplicate table alias in {aliases}")
        for source in sources:
            self.tables[source.alias] = self._resolve_table(source)

        base_alias = stmt.source.alias
        node, residual = self._base_access(base_alias, list(stmt.where))
        for join in stmt.joins:
            node = self._join(node, join)
        for condition in residual:
            node = Filter(
                node, self._env_predicate(condition), _condition_desc(condition)
            )

        if stmt.count:
            # SELECT COUNT(*) counts the filtered set; ORDER BY/LIMIT are
            # ignored, as they always were on this fast path.  The count
            # partial lets a sharded FullScan child answer from per-shard
            # counts without materializing rows.
            return self._finish(
                Aggregate(
                    node,
                    lambda rows, params: [{"count": len(rows)}],
                    "count(*)",
                    partial=count_partial(),
                )
            )
        if stmt.aggregates:
            return self._finish(self._aggregate_tail(node))

        for ref in stmt.columns:  # validate even when no rows will match
            self._locate(ref)
        if stmt.order_by is not None:
            alias, name = self._locate(stmt.order_by)
            node = Sort(
                node,
                key=lambda env: null_safe_key(env[alias][name]),
                descending=stmt.descending,
                detail=str(stmt.order_by),
            )
        if stmt.limit is not None:
            node = Limit(node, stmt.limit)
        node = Project(node, self._projector(), self._projection_desc())
        return self._finish(node)

    def _finish(self, node) -> Plan:
        return Plan(node, guards=tuple(self.guards))

    # -- source resolution --------------------------------------------------
    def _resolve_table(self, source: ast.TableSource) -> Table:
        database_name = source.database or self.current_database
        if database_name is None:
            raise ProgrammingError(f"no database selected for table {source.table!r}")
        table = self.engine.database(database_name).table(source.table)
        self.guards.append(_table_guard(self.engine, database_name, source.table, table))
        return table

    # -- access-path selection ----------------------------------------------
    def _base_access(self, alias: str, conditions: List[ast.Condition]):
        """The cheapest access path the WHERE clause allows, plus the
        residual conditions the chosen path does not consume."""
        table = self.tables[alias]
        eligible = [
            c for c in conditions if c.column.qualifier in (None, alias)
        ]
        access, index = choose_access(
            _table_meta(table, alias),
            [(c.column.name, c.op) for c in eligible],
        )
        condition = eligible[index] if index is not None else None
        residual = [c for c in conditions if c is not condition]

        def wrap(row, _alias=alias):
            return {_alias: row}

        if access == ACCESS_POINT:
            node = PointLookup(
                table,
                key=_compile_value(condition.value),
                table_name=alias,
                key_desc=str(condition.column),
                wrap=wrap,
            )
        elif access == ACCESS_MULTIGET:
            node = MultiGet(
                table,
                keys=_compile_value_list(condition.value),
                table_name=alias,
                key_desc=str(condition.column),
                wrap=wrap,
            )
        elif access == ACCESS_PK_PREFIX:
            pushed, residual = self._split_pushdown(alias, residual)
            node = IndexScan(
                table,
                column=condition.column.name,
                value=_compile_value(condition.value),
                table_name=alias,
                access=IndexScan.PK_PREFIX,
                wrap=wrap,
                pushed=pushed,
            )
        elif access == ACCESS_INDEX:
            pushed, residual = self._split_pushdown(alias, residual)
            node = IndexScan(
                table,
                column=condition.column.name,
                value=_compile_value(condition.value),
                table_name=alias,
                access=IndexScan.SECONDARY,
                wrap=wrap,
                pushed=pushed,
            )
        else:
            pushed, residual = self._split_pushdown(alias, residual)
            node = FullScan(table, alias, wrap=wrap, pushed=pushed)
        return node, residual

    def _split_pushdown(self, alias: str, residual: List[ast.Condition]):
        """Partition residual conditions into ``(PushedPredicate, leftover)``.

        A condition moves into the storage layer only when its operator
        is pushable (:data:`repro.query.PUSHABLE_OPS` — IS NULL and
        IS NOT NULL stay in Filter nodes) *and* it resolves unambiguously
        to a column of the base table ``alias``.  Conditions on joined
        tables, ambiguous references, or unknown columns stay residual,
        so their errors surface exactly where Filter construction always
        raised them.  Pushing base-table conditions below the join stack
        is sound because every join here is an inner equi-join: dropping
        a base row early can only remove output rows the Filter would
        have removed later.
        """
        pushable = []
        leftover = []
        for cond in residual:
            if cond.op not in PUSHABLE_OPS:
                leftover.append(cond)
                continue
            try:
                located_alias, name = self._locate(cond.column)
            except ProgrammingError:
                leftover.append(cond)
                continue
            if located_alias != alias:
                leftover.append(cond)
                continue
            if cond.op == "IN":
                resolve = _compile_value_list(cond.value)
            else:
                resolve = _compile_value(cond.value)
            pushable.append(
                PushedCondition(name, cond.op, resolve, _condition_desc(cond))
            )
        pushed = PushedPredicate(pushable) if pushable else None
        return pushed, leftover

    # -- joins ---------------------------------------------------------------
    def _join(self, node, join: ast.Join):
        right_alias = join.source.alias
        right_table = self.tables[right_alias]

        left_ref, right_ref = join.left, join.right
        # Normalise so right_ref refers to the newly joined table.
        if left_ref.qualifier == right_alias:
            left_ref, right_ref = right_ref, left_ref
        if right_ref.qualifier != right_alias:
            raise ProgrammingError(
                f"JOIN ON must reference {right_alias!r} on one side"
            )
        right_table.column(right_ref.name)
        left_alias, left_name = self._locate_in_env(left_ref, exclude=right_alias)

        # Index nested-loop when the join column is the right table's
        # primary key or an indexed column (MySQL's ref/eq_ref access);
        # otherwise build a hash table over the right side per execution.
        access = choose_join_access(
            _table_meta(right_table, right_alias), right_ref.name
        )
        right_name = right_ref.name
        build_table = None
        if access == ACCESS_POINT:
            detail = "eq_ref"

            def probe_factory():
                def probe(key):
                    row = right_table.get(key)
                    return (row,) if row is not None else ()

                return probe

        elif access == ACCESS_INDEX:
            detail = "secondary-index"

            def probe_factory():
                def probe(key):
                    return right_table.lookup_indexed(right_name, key)

                return probe

        else:
            detail = "hash build"
            # Declaring the build side lets the kernel scatter the hash
            # build across the right table's shards instead of calling
            # the serial factory.
            build_table = right_table

            def probe_factory():
                build: Dict[object, List[Dict[str, object]]] = {}
                for row in right_table.scan():
                    key = row.get(right_name)
                    if key is not None:
                        build.setdefault(key, []).append(row)
                return lambda key: build.get(key, ())

        def key_of(env, _a=left_alias, _n=left_name):
            return env[_a][_n]

        def merge(env, right_row, _alias=right_alias):
            merged = dict(env)
            merged[_alias] = right_row
            return merged

        return HashJoin(
            node,
            probe_factory,
            key_of,
            merge,
            table_name=right_alias,
            detail=detail,
            key_desc=str(right_ref),
            build_table=build_table,
            build_key=right_name if build_table is not None else None,
        )

    # -- filters --------------------------------------------------------------
    def _env_predicate(self, condition: ast.Condition):
        alias, name = self._locate(condition.column)
        op = condition.op
        if op == "IN":
            expected = _compile_value_list(condition.value)
        elif op in ("ISNULL", "NOTNULL"):
            expected = lambda params: None
        else:
            expected = _compile_value(condition.value)

        def predicate(env, params):
            return compare(op, env[alias][name], expected(params))

        return predicate

    # -- aggregation -----------------------------------------------------------
    def _aggregate_tail(self, node):
        """GROUP BY / aggregate evaluation over the filtered row set."""
        stmt = self.stmt
        group_refs = list(stmt.group_by)
        group_slots = [self._locate(ref) for ref in group_refs]
        # Plain select items must be grouping columns (standard SQL rule).
        group_names = {(ref.qualifier, ref.name) for ref in group_refs} | {
            (None, ref.name) for ref in group_refs
        }
        for ref in stmt.columns:
            if (ref.qualifier, ref.name) not in group_names:
                raise ProgrammingError(
                    f"column {ref!r} must appear in the GROUP BY clause"
                )
        group_labels = [
            ref.name if ref.qualifier is None else f"{ref.qualifier}.{ref.name}"
            for ref in group_refs
        ]
        aggregate_slots = [
            (agg, self._locate(agg.column) if agg.column is not None else None)
            for agg in stmt.aggregates
        ]

        def fold(env_rows, params):
            groups: Dict[tuple, List[Dict[str, Dict[str, object]]]] = {}
            for env in env_rows:
                key = tuple(env[alias][name] for alias, name in group_slots)
                groups.setdefault(key, []).append(env)
            if not group_refs and not groups:
                groups[()] = []  # global aggregates over zero rows still report

            out_rows: List[Dict[str, object]] = []
            for key, members in groups.items():
                row: Dict[str, object] = {}
                for label, value in zip(group_labels, key):
                    row[label] = value
                for agg, slot in aggregate_slots:
                    row[agg.label] = _run_aggregate(agg, slot, members)
                out_rows.append(row)
            return out_rows

        detail = ", ".join(agg.label for agg in stmt.aggregates)
        if group_labels:
            detail += f" group by {', '.join(group_labels)}"
        node = Aggregate(
            node,
            fold,
            detail,
            partial=_aggregate_partial(group_refs, group_slots, group_labels,
                                       aggregate_slots),
        )

        if stmt.order_by is not None:
            label = (
                stmt.order_by.name
                if stmt.order_by.qualifier is None
                else f"{stmt.order_by.qualifier}.{stmt.order_by.name}"
            )

            def sort_key(row):
                # Validated lazily so an empty group set never raises,
                # matching the historical first-row membership check.
                if label not in row:
                    raise ProgrammingError(
                        f"ORDER BY {label!r} must be a grouping column or aggregate label"
                    )
                return null_safe_key(row[label])

            node = Sort(node, sort_key, stmt.descending, label)
        if stmt.limit is not None:
            node = Limit(node, stmt.limit)
        return node

    # -- projection --------------------------------------------------------------
    def _projector(self):
        columns = self.stmt.columns
        if not columns:  # SELECT *

            def project_star(env):
                merged: Dict[str, object] = {}
                for alias, row in env.items():
                    for name, value in row.items():
                        key = name if name not in merged else f"{alias}.{name}"
                        merged[key] = value
                return merged

            return project_star
        slots = []
        for ref in columns:
            alias, name = self._locate(ref)
            label = name if ref.qualifier is None else f"{alias}.{name}"
            slots.append((alias, name, label))

        def project(env):
            return {label: env[alias][name] for alias, name, label in slots}

        return project

    def _projection_desc(self) -> str:
        if not self.stmt.columns:
            return "*"
        return ", ".join(str(ref) for ref in self.stmt.columns)

    # -- column resolution ---------------------------------------------------------
    def _locate(self, ref: ast.ColumnRef) -> Tuple[str, str]:
        """Resolve a column reference to ``(alias, column_name)``."""
        return self._locate_in_env(ref, exclude=None)

    def _locate_in_env(
        self, ref: ast.ColumnRef, exclude: Optional[str]
    ) -> Tuple[str, str]:
        if ref.qualifier is not None:
            if ref.qualifier not in self.tables:
                raise ProgrammingError(f"unknown table alias {ref.qualifier!r}")
            self.tables[ref.qualifier].column(ref.name)
            return ref.qualifier, ref.name
        owners = [
            alias
            for alias, table in self.tables.items()
            if alias != exclude and ref.name in table.column_names
        ]
        if not owners:
            raise ProgrammingError(f"unknown column {ref.name!r}")
        if len(owners) > 1:
            raise ProgrammingError(f"ambiguous column {ref.name!r} (in {owners})")
        return owners[0], ref.name


class _Executor:
    def __init__(self, engine, params: Sequence, current_database: Optional[str]) -> None:
        self.engine = engine
        self.params = tuple(params)
        self.current_database = current_database

    # -- helpers ------------------------------------------------------------
    def _resolve(self, value):
        return _compile_value(value)(self.params)

    def _table(self, source: ast.TableSource) -> Table:
        database_name = source.database or self.current_database
        if database_name is None:
            raise ProgrammingError(f"no database selected for table {source.table!r}")
        return self.engine.database(database_name).table(source.table)

    # -- dispatch ---------------------------------------------------------------
    def run(self, statement: ast.Statement):
        handler = {
            ast.CreateDatabase: self._create_database,
            ast.CreateTable: self._create_table,
            ast.CreateIndex: self._create_index,
            ast.DropTable: self._drop_table,
            ast.DropDatabase: self._drop_database,
            ast.Use: self._use,
            ast.Insert: self._insert,
            ast.Select: self._select,
            ast.Update: self._update,
            ast.Delete: self._delete,
            ast.Truncate: self._truncate,
            ast.Explain: self._explain,
        }.get(type(statement))
        if handler is None:
            raise ProgrammingError(f"unsupported statement {type(statement).__name__}")
        return handler(statement)

    # -- DDL ---------------------------------------------------------------------
    def _create_database(self, stmt: ast.CreateDatabase):
        self.engine.create_database(stmt.name, if_not_exists=stmt.if_not_exists)
        return SQLResult(), None

    def _create_table(self, stmt: ast.CreateTable):
        database_name = stmt.source.database or self.current_database
        if database_name is None:
            raise ProgrammingError("CREATE TABLE without a database")
        columns = [
            SQLColumn(name, parse_type(type_text), not_null)
            for name, type_text, not_null in stmt.columns
        ]
        self.engine.database(database_name).create_table(
            stmt.source.table, columns, stmt.primary_key, if_not_exists=stmt.if_not_exists
        )
        return SQLResult(), None

    def _create_index(self, stmt: ast.CreateIndex):
        self._table(stmt.source).create_index(stmt.name, stmt.column)
        return SQLResult(), None

    def _drop_table(self, stmt: ast.DropTable):
        database_name = stmt.source.database or self.current_database
        if database_name is None:
            raise ProgrammingError("DROP TABLE without a database")
        self.engine.database(database_name).drop_table(stmt.source.table)
        return SQLResult(), None

    def _drop_database(self, stmt: ast.DropDatabase):
        self.engine.drop_database(stmt.name)
        return SQLResult(), None

    def _use(self, stmt: ast.Use):
        self.engine.database(stmt.name)  # validates existence
        return SQLResult(), stmt.name

    # -- DML ----------------------------------------------------------------------
    def _insert(self, stmt: ast.Insert):
        table = self._table(stmt.source)
        count = 0
        for values in stmt.rows:
            row = {}
            for column, value in zip(stmt.columns, values):
                resolved = self._resolve(value)
                if resolved is not None:
                    row[column] = resolved
            table.insert(row)
            count += 1
        return SQLResult(rowcount=count), None

    # -- SELECT -----------------------------------------------------------------
    def _select(self, stmt: ast.Select):
        plan = build_select_plan(self.engine, stmt, self.current_database)
        return SQLResult(plan.run(self.params)), None

    # -- UPDATE/DELETE ------------------------------------------------------------
    def _predicate(self, table: Table, alias: str, where: List[ast.Condition]):
        builder = _SelectPlanBuilder.__new__(_SelectPlanBuilder)
        builder.engine = self.engine
        builder.stmt = None
        builder.current_database = self.current_database
        builder.tables = {alias: table}
        builder.guards = []
        compiled = [builder._env_predicate(condition) for condition in where]
        params = self.params

        def predicate(row: Dict[str, object]) -> bool:
            env = {alias: row}
            return all(check(env, params) for check in compiled)

        return predicate

    def _update(self, stmt: ast.Update):
        table = self._table(stmt.source)
        assignments = {name: self._resolve(value) for name, value in stmt.assignments}
        count = table.update_where(
            self._predicate(table, stmt.source.alias, stmt.where), assignments
        )
        return SQLResult(rowcount=count), None

    def _delete(self, stmt: ast.Delete):
        table = self._table(stmt.source)
        count = table.delete_where(self._predicate(table, stmt.source.alias, stmt.where))
        return SQLResult(rowcount=count), None

    def _truncate(self, stmt: ast.Truncate):
        self._table(stmt.source).truncate()
        return SQLResult(), None

    # -- EXPLAIN ------------------------------------------------------------------
    def _explain(self, stmt: ast.Explain):
        """Build the plan; one row per operator.  With ANALYZE the plan
        is also executed and every row carries actual counters."""
        plan = build_select_plan(self.engine, stmt.select, self.current_database)
        if not stmt.analyze:
            return SQLResult(plan.explain()), None
        analyzed = analyze_plan(plan, self.params)
        result = SQLResult(analyzed.report)
        result.analyzed = analyzed
        return result, None


def _run_aggregate(agg: ast.Aggregate, slot, members) -> object:
    """One aggregate over one group's rows (NULLs ignored, as in SQL)."""
    if agg.column is None:  # COUNT(*)
        return len(members)
    alias, name = slot
    values = [env[alias][name] for env in members if env[alias][name] is not None]
    try:
        return evaluate_aggregate(agg.func, values)
    except ValueError:  # pragma: no cover - parsers only emit known funcs
        raise ProgrammingError(f"unknown aggregate {agg.func!r}") from None


# ----------------------------------------------------------------------
# partial (two-phase) aggregation
# ----------------------------------------------------------------------
#: Aggregates with a distributive/algebraic decomposition: per-shard
#: partial states merge into the exact serial answer.  AVG is algebraic
#: — its state is a (sum, count) pair.
_DECOMPOSABLE = frozenset({"count", "sum", "min", "max", "avg"})


def _partial_state(agg: ast.Aggregate, slot, members) -> object:
    """One shard's partial state for one aggregate over one group."""
    if agg.column is None:  # COUNT(*)
        return len(members)
    alias, name = slot
    values = [env[alias][name] for env in members if env[alias][name] is not None]
    if agg.func == "count":
        return len(values)
    if agg.func == "avg":
        return (sum(values), len(values)) if values else (None, 0)
    # sum/min/max: None marks an all-NULL (or empty) shard slice
    return evaluate_aggregate(agg.func, values) if values else None


def _merge_partial(agg: ast.Aggregate, states: List[object]) -> object:
    """Combine one aggregate's per-shard states into its final value,
    matching :func:`_run_aggregate` over the union of the shards' rows."""
    if agg.column is None or agg.func == "count":
        return sum(states)
    if agg.func == "avg":
        count = sum(n for _, n in states)
        if count == 0:
            return None
        return sum(total for total, n in states if n) / count
    present = [state for state in states if state is not None]
    if not present:
        return None
    if agg.func == "sum":
        return sum(present)
    return min(present) if agg.func == "min" else max(present)


def _aggregate_partial(
    group_refs, group_slots, group_labels, aggregate_slots
) -> Optional[PartialAggregate]:
    """The two-phase decomposition of a GROUP BY / aggregate tail.

    Returns ``None`` when any aggregate lacks a decomposition, pinning
    the serial fold.  Group output order under scatter follows
    first-appearance in shard-gather order rather than row-stream order
    — SQL guarantees no order without ORDER BY, and the Sort node (when
    present) sits above the Aggregate either way.
    """
    for agg, _ in aggregate_slots:
        if agg.column is not None and agg.func not in _DECOMPOSABLE:
            return None

    def fold_shard(env_rows, params):
        groups: Dict[tuple, List[Dict[str, Dict[str, object]]]] = {}
        for env in env_rows:
            key = tuple(env[alias][name] for alias, name in group_slots)
            groups.setdefault(key, []).append(env)
        return {
            key: [_partial_state(agg, slot, members) for agg, slot in aggregate_slots]
            for key, members in groups.items()
        }

    def merge(shard_states, params):
        merged: Dict[tuple, List[List[object]]] = {}
        for shard_groups in shard_states:
            for key, agg_states in shard_groups.items():
                slots = merged.setdefault(key, [[] for _ in aggregate_slots])
                for index, state in enumerate(agg_states):
                    slots[index].append(state)
        if not group_refs and not merged:
            merged[()] = [[] for _ in aggregate_slots]  # zero rows still report
        out_rows: List[Dict[str, object]] = []
        for key, slots in merged.items():
            row: Dict[str, object] = {}
            for label, value in zip(group_labels, key):
                row[label] = value
            for (agg, _), states in zip(aggregate_slots, slots):
                row[agg.label] = _merge_partial(agg, states)
            out_rows.append(row)
        return out_rows

    return PartialAggregate(fold_shard=fold_shard, merge=merge)
