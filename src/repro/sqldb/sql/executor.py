"""SQL execution against a :class:`~repro.sqldb.engine.SQLEngine`.

SELECTs run through a small pipeline: base-table access (point read when
the WHERE clause pins the primary key or an indexed column, otherwise a
scan), hash equi-joins in FROM order, residual filters, projection,
ORDER BY and LIMIT.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sqldb.errors import ProgrammingError
from repro.sqldb.sql import ast
from repro.sqldb.sql.parser import parse
from repro.sqldb.table import Table
from repro.sqldb.types import parse_type
from repro.sqldb.table import SQLColumn


class SQLResult:
    """Rows returned by a SELECT, plus the affected-row count for DML."""

    __slots__ = ("rows", "rowcount")

    def __init__(self, rows: Optional[List[Dict[str, object]]] = None, rowcount: int = 0) -> None:
        self.rows = rows if rows is not None else []
        self.rowcount = rowcount

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def one(self) -> Optional[Dict[str, object]]:
        return self.rows[0] if self.rows else None

    def __repr__(self) -> str:
        return f"SQLResult({len(self.rows)} rows, rowcount={self.rowcount})"


def execute(
    engine,
    statement: ast.Statement,
    params: Sequence = (),
    current_database: Optional[str] = None,
) -> Tuple[SQLResult, Optional[str]]:
    return _Executor(engine, params, current_database).run(statement)


def plan_insert_template(
    engine, statement: ast.Statement, current_database: Optional[str]
):
    """Resolve a single-row INSERT to ``(table, template)``.

    ``template`` is a list of ``(column_name, is_bind, index_or_constant)``
    slots.  Returns ``None`` for anything but a one-row INSERT with a
    resolvable database.
    """
    if not isinstance(statement, ast.Insert) or len(statement.rows) != 1:
        return None
    template = []
    for column, value in zip(statement.columns, statement.rows[0]):
        if isinstance(value, ast.Placeholder):
            template.append((column, True, value.index))
        else:
            template.append((column, False, value))
    database_name = statement.source.database or current_database
    if database_name is None:
        return None
    table = engine.database(database_name).table(statement.source.table)
    return table, template


def plan_point_select(
    engine, statement: ast.Statement, current_database: Optional[str]
):
    """Resolve ``SELECT ... FROM t WHERE <pk> = ?`` to a batched-fetch plan.

    Returns ``(table, key_slot, columns, limit)`` where ``key_slot`` is
    ``(is_bind, index_or_constant)`` and ``columns`` the projected names
    (empty = ``*``).  This is the shape
    :meth:`~repro.sqldb.session.SQLSession.select_many` turns into one
    :meth:`~repro.sqldb.table.Table.get_many` call.  Returns ``None``
    for any other shape (joins, aggregates, composite keys, ...) — those
    fall back to per-row execution through the generic executor.
    """
    if not isinstance(statement, ast.Select) or statement.count:
        return None
    if statement.joins or statement.aggregates or statement.order_by is not None:
        return None
    database_name = statement.source.database or current_database
    if database_name is None:
        return None
    table = engine.database(database_name).table(statement.source.table)
    if len(table.primary_key) != 1 or len(statement.where) != 1:
        return None
    condition = statement.where[0]
    if condition.op != "=" or condition.column.name != table.primary_key[0]:
        return None
    if condition.column.qualifier not in (None, statement.source.alias):
        return None
    columns = []
    for ref in statement.columns:
        if ref.qualifier not in (None, statement.source.alias):
            return None
        table.column(ref.name)  # validate once, not per row
        columns.append(ref.name)
    value = condition.value
    is_bind = isinstance(value, ast.Placeholder)
    key_slot = (is_bind, value.index if is_bind else value)
    return table, key_slot, tuple(columns), statement.limit


def make_insert_plan(engine, statement: ast.Statement, current_database: Optional[str]):
    """Compile a prepared single-row INSERT into a per-row callable.

    The server-side plan for ``executemany``: table and column template
    resolved once, per row only parameter binding and the storage call.
    Returns ``None`` for anything but a one-row INSERT.
    """
    planned = plan_insert_template(engine, statement, current_database)
    if planned is None:
        return None
    table, template = planned
    table_insert = table.insert

    def run(params: Sequence) -> None:
        row = {}
        for column, is_bind, value in template:
            resolved = params[value] if is_bind else value
            if resolved is not None:
                row[column] = resolved
        table_insert(row)

    return run


class _Executor:
    def __init__(self, engine, params: Sequence, current_database: Optional[str]) -> None:
        self.engine = engine
        self.params = tuple(params)
        self.current_database = current_database

    # -- helpers ------------------------------------------------------------
    def _resolve(self, value):
        if isinstance(value, ast.Placeholder):
            if value.index >= len(self.params):
                raise ProgrammingError(
                    f"statement has bind marker ?{value.index} but only "
                    f"{len(self.params)} parameters were supplied"
                )
            return self.params[value.index]
        return value

    def _table(self, source: ast.TableSource) -> Table:
        database_name = source.database or self.current_database
        if database_name is None:
            raise ProgrammingError(f"no database selected for table {source.table!r}")
        return self.engine.database(database_name).table(source.table)

    # -- dispatch ---------------------------------------------------------------
    def run(self, statement: ast.Statement):
        handler = {
            ast.CreateDatabase: self._create_database,
            ast.CreateTable: self._create_table,
            ast.CreateIndex: self._create_index,
            ast.DropTable: self._drop_table,
            ast.DropDatabase: self._drop_database,
            ast.Use: self._use,
            ast.Insert: self._insert,
            ast.Select: self._select,
            ast.Update: self._update,
            ast.Delete: self._delete,
            ast.Truncate: self._truncate,
            ast.Explain: self._explain,
        }.get(type(statement))
        if handler is None:
            raise ProgrammingError(f"unsupported statement {type(statement).__name__}")
        return handler(statement)

    # -- DDL ---------------------------------------------------------------------
    def _create_database(self, stmt: ast.CreateDatabase):
        self.engine.create_database(stmt.name, if_not_exists=stmt.if_not_exists)
        return SQLResult(), None

    def _create_table(self, stmt: ast.CreateTable):
        database_name = stmt.source.database or self.current_database
        if database_name is None:
            raise ProgrammingError("CREATE TABLE without a database")
        columns = [
            SQLColumn(name, parse_type(type_text), not_null)
            for name, type_text, not_null in stmt.columns
        ]
        self.engine.database(database_name).create_table(
            stmt.source.table, columns, stmt.primary_key, if_not_exists=stmt.if_not_exists
        )
        return SQLResult(), None

    def _create_index(self, stmt: ast.CreateIndex):
        self._table(stmt.source).create_index(stmt.name, stmt.column)
        return SQLResult(), None

    def _drop_table(self, stmt: ast.DropTable):
        database_name = stmt.source.database or self.current_database
        if database_name is None:
            raise ProgrammingError("DROP TABLE without a database")
        self.engine.database(database_name).drop_table(stmt.source.table)
        return SQLResult(), None

    def _drop_database(self, stmt: ast.DropDatabase):
        self.engine.drop_database(stmt.name)
        return SQLResult(), None

    def _use(self, stmt: ast.Use):
        self.engine.database(stmt.name)  # validates existence
        return SQLResult(), stmt.name

    # -- DML ----------------------------------------------------------------------
    def _insert(self, stmt: ast.Insert):
        table = self._table(stmt.source)
        count = 0
        for values in stmt.rows:
            row = {}
            for column, value in zip(stmt.columns, values):
                resolved = self._resolve(value)
                if resolved is not None:
                    row[column] = resolved
            table.insert(row)
            count += 1
        return SQLResult(rowcount=count), None

    # -- SELECT pipeline --------------------------------------------------------------
    def _select(self, stmt: ast.Select):
        sources = [stmt.source] + [join.source for join in stmt.joins]
        aliases = [source.alias for source in sources]
        if len(set(aliases)) != len(aliases):
            raise ProgrammingError(f"duplicate table alias in {aliases}")
        tables = {source.alias: self._table(source) for source in sources}

        # Split WHERE into conjuncts usable for base access vs residual.
        base_alias = stmt.source.alias
        base_table = tables[base_alias]
        residual = list(stmt.where)
        rows = self._base_rows(base_table, base_alias, residual)

        # namespace rows as {alias: row}
        env_rows: List[Dict[str, Dict[str, object]]] = [{base_alias: row} for row in rows]
        for join in stmt.joins:
            env_rows = self._hash_join(env_rows, join, tables)

        for condition in residual:
            env_rows = [
                env for env in env_rows if self._matches(env, condition, tables)
            ]

        if stmt.count:
            return SQLResult([{"count": len(env_rows)}]), None
        if stmt.aggregates:
            return self._aggregate_select(stmt, env_rows, tables), None

        for ref in stmt.columns:  # validate even when no rows matched
            self._locate(ref, tables)
        projected = [self._project(env, stmt.columns, tables) for env in env_rows]

        if stmt.order_by is not None:
            alias, name = self._locate(stmt.order_by, tables)
            projected_pairs = sorted(
                zip(env_rows, projected),
                key=lambda pair: _null_safe_key(pair[0][alias][name]),
                reverse=stmt.descending,
            )
            projected = [row for _, row in projected_pairs]
        if stmt.limit is not None:
            projected = projected[: stmt.limit]
        return SQLResult(projected), None

    @staticmethod
    def _choose_base_access(
        table: Table, alias: str, conditions: List[ast.Condition]
    ) -> Tuple[str, Optional[ast.Condition]]:
        """The access path the WHERE clause allows: ``(kind, condition)``.

        Kinds mirror MySQL's EXPLAIN vocabulary: ``const`` (pk point),
        ``range`` (pk IN), ``ref`` (pk prefix or secondary index), ``ALL``
        (full scan).
        """
        single_pk = table.primary_key[0] if len(table.primary_key) == 1 else None
        for condition in conditions:
            if condition.column.qualifier not in (None, alias):
                continue
            name = condition.column.name
            if condition.op == "=" and name == single_pk:
                return "const", condition
            if condition.op == "IN" and name == single_pk:
                return "range", condition
            if condition.op == "=" and name == table.primary_key[0]:
                return "ref:pk-prefix", condition
        for condition in conditions:
            if condition.column.qualifier not in (None, alias):
                continue
            if condition.op == "=" and table.has_index(condition.column.name):
                return "ref:index", condition
        return "ALL", None

    def _base_rows(
        self,
        table: Table,
        alias: str,
        residual: List[ast.Condition],
    ) -> List[Dict[str, object]]:
        """Pick the cheapest access path the WHERE clause allows."""
        access, condition = self._choose_base_access(table, alias, residual)
        if condition is not None:
            residual.remove(condition)
        if access == "const":
            row = table.get(self._resolve(condition.value))
            return [row] if row is not None else []
        if access == "range":
            keys = [self._resolve(v) for v in condition.value]
            return [row for row in table.get_many(keys) if row is not None]
        if access == "ref:pk-prefix":
            return table.lookup_pk_prefix(self._resolve(condition.value))
        if access == "ref:index":
            return table.lookup_indexed(
                condition.column.name, self._resolve(condition.value)
            )
        return list(table.scan())

    def _aggregate_select(
        self,
        stmt: ast.Select,
        env_rows: List[Dict[str, Dict[str, object]]],
        tables: Dict[str, Table],
    ) -> SQLResult:
        """GROUP BY / aggregate evaluation over the filtered row set."""
        group_refs = list(stmt.group_by)
        group_slots = [self._locate(ref, tables) for ref in group_refs]
        # Plain select items must be grouping columns (standard SQL rule).
        group_names = {(ref.qualifier, ref.name) for ref in group_refs} | {
            (None, ref.name) for ref in group_refs
        }
        for ref in stmt.columns:
            if (ref.qualifier, ref.name) not in group_names:
                raise ProgrammingError(
                    f"column {ref!r} must appear in the GROUP BY clause"
                )
        aggregate_slots = [
            (agg, self._locate(agg.column, tables) if agg.column is not None else None)
            for agg in stmt.aggregates
        ]

        groups: Dict[tuple, List[Dict[str, Dict[str, object]]]] = {}
        for env in env_rows:
            key = tuple(env[alias][name] for alias, name in group_slots)
            groups.setdefault(key, []).append(env)
        if not group_refs and not groups:
            groups[()] = []  # global aggregates over zero rows still report

        out_rows: List[Dict[str, object]] = []
        for key, members in groups.items():
            row: Dict[str, object] = {}
            for ref, value in zip(group_refs, key):
                label = ref.name if ref.qualifier is None else f"{ref.qualifier}.{ref.name}"
                row[label] = value
            for agg, slot in aggregate_slots:
                row[agg.label] = _evaluate_aggregate(agg, slot, members)
            out_rows.append(row)

        if stmt.order_by is not None:
            label = (
                stmt.order_by.name
                if stmt.order_by.qualifier is None
                else f"{stmt.order_by.qualifier}.{stmt.order_by.name}"
            )
            if out_rows and label not in out_rows[0]:
                raise ProgrammingError(
                    f"ORDER BY {label!r} must be a grouping column or aggregate label"
                )
            out_rows.sort(key=lambda r: _null_safe_key(r[label]), reverse=stmt.descending)
        if stmt.limit is not None:
            out_rows = out_rows[: stmt.limit]
        return SQLResult(out_rows)

    def _hash_join(
        self,
        env_rows: List[Dict[str, Dict[str, object]]],
        join: ast.Join,
        tables: Dict[str, Table],
    ) -> List[Dict[str, Dict[str, object]]]:
        right_alias = join.source.alias
        right_table = tables[right_alias]

        left_ref, right_ref = join.left, join.right
        # Normalise so right_ref refers to the newly joined table.
        if left_ref.qualifier == right_alias:
            left_ref, right_ref = right_ref, left_ref
        if right_ref.qualifier != right_alias:
            raise ProgrammingError(
                f"JOIN ON must reference {right_alias!r} on one side"
            )
        right_table.column(right_ref.name)
        left_alias, left_name = self._locate_in_env(left_ref, tables, exclude=right_alias)

        # Index nested-loop when the join column is the right table's
        # primary key or an indexed column (MySQL's ref/eq_ref access);
        # otherwise build a hash table over the right side.
        probe = None
        if (
            len(right_table.primary_key) == 1
            and right_ref.name == right_table.primary_key[0]
        ):
            def probe(key):
                row = right_table.get(key)
                return (row,) if row is not None else ()
        elif right_table.has_index(right_ref.name):
            def probe(key):
                return right_table.lookup_indexed(right_ref.name, key)
        else:
            build: Dict[object, List[Dict[str, object]]] = {}
            for row in right_table.scan():
                key = row.get(right_ref.name)
                if key is not None:
                    build.setdefault(key, []).append(row)

            def probe(key):
                return build.get(key, ())

        joined: List[Dict[str, Dict[str, object]]] = []
        for env in env_rows:
            key = env[left_alias][left_name]
            if key is None:
                continue
            for right_row in probe(key):
                merged = dict(env)
                merged[right_alias] = right_row
                joined.append(merged)
        return joined

    def _locate(self, ref: ast.ColumnRef, tables: Dict[str, Table]) -> Tuple[str, str]:
        """Resolve a column reference to ``(alias, column_name)``."""
        return self._locate_in_env(ref, tables, exclude=None)

    def _locate_in_env(
        self,
        ref: ast.ColumnRef,
        tables: Dict[str, Table],
        exclude: Optional[str],
    ) -> Tuple[str, str]:
        if ref.qualifier is not None:
            if ref.qualifier not in tables:
                raise ProgrammingError(f"unknown table alias {ref.qualifier!r}")
            tables[ref.qualifier].column(ref.name)
            return ref.qualifier, ref.name
        owners = [
            alias
            for alias, table in tables.items()
            if alias != exclude and ref.name in table.column_names
        ]
        if not owners:
            raise ProgrammingError(f"unknown column {ref.name!r}")
        if len(owners) > 1:
            raise ProgrammingError(f"ambiguous column {ref.name!r} (in {owners})")
        return owners[0], ref.name

    def _matches(
        self,
        env: Dict[str, Dict[str, object]],
        condition: ast.Condition,
        tables: Dict[str, Table],
    ) -> bool:
        alias, name = self._locate(condition.column, tables)
        actual = env[alias][name]
        op = condition.op
        if op == "ISNULL":
            return actual is None
        if op == "NOTNULL":
            return actual is not None
        if op == "IN":
            return actual in [self._resolve(v) for v in condition.value]
        expected = self._resolve(condition.value)
        if actual is None:
            return False
        if op == "=":
            return actual == expected
        if op == "!=":
            return actual != expected
        if op == "<":
            return actual < expected
        if op == ">":
            return actual > expected
        if op == "<=":
            return actual <= expected
        if op == ">=":
            return actual >= expected
        raise ProgrammingError(f"unsupported operator {op!r}")

    def _project(
        self,
        env: Dict[str, Dict[str, object]],
        columns: List[ast.ColumnRef],
        tables: Dict[str, Table],
    ) -> Dict[str, object]:
        if not columns:  # SELECT *
            merged: Dict[str, object] = {}
            for alias, row in env.items():
                for name, value in row.items():
                    key = name if name not in merged else f"{alias}.{name}"
                    merged[key] = value
            return merged
        out: Dict[str, object] = {}
        for ref in columns:
            alias, name = self._locate(ref, tables)
            key = name if ref.qualifier is None else f"{alias}.{name}"
            out[key] = env[alias][name]
        return out

    # -- UPDATE/DELETE ------------------------------------------------------------------
    def _predicate(self, table: Table, alias: str, where: List[ast.Condition]):
        tables = {alias: table}

        def predicate(row: Dict[str, object]) -> bool:
            env = {alias: row}
            return all(self._matches(env, condition, tables) for condition in where)

        return predicate

    def _update(self, stmt: ast.Update):
        table = self._table(stmt.source)
        assignments = {name: self._resolve(value) for name, value in stmt.assignments}
        count = table.update_where(
            self._predicate(table, stmt.source.alias, stmt.where), assignments
        )
        return SQLResult(rowcount=count), None

    def _delete(self, stmt: ast.Delete):
        table = self._table(stmt.source)
        count = table.delete_where(self._predicate(table, stmt.source.alias, stmt.where))
        return SQLResult(rowcount=count), None

    def _truncate(self, stmt: ast.Truncate):
        self._table(stmt.source).truncate()
        return SQLResult(), None

    # -- EXPLAIN ------------------------------------------------------------------
    def _explain(self, stmt: ast.Explain):
        """Report the access path per table without executing the query."""
        select = stmt.select
        sources = [select.source] + [join.source for join in select.joins]
        tables = {source.alias: self._table(source) for source in sources}

        plan: List[Dict[str, object]] = []
        base_alias = select.source.alias
        access, condition = self._choose_base_access(
            tables[base_alias], base_alias, list(select.where)
        )
        plan.append(
            {
                "step": 1,
                "table": base_alias,
                "access": access,
                "key": str(condition.column) if condition is not None else None,
            }
        )
        for step, join in enumerate(select.joins, start=2):
            right_alias = join.source.alias
            right_table = tables[right_alias]
            left_ref, right_ref = join.left, join.right
            if left_ref.qualifier == right_alias:
                left_ref, right_ref = right_ref, left_ref
            if (
                len(right_table.primary_key) == 1
                and right_ref.name == right_table.primary_key[0]
            ):
                access = "eq_ref"
            elif right_table.has_index(right_ref.name):
                access = "ref:index"
            else:
                access = "hash-join"
            plan.append(
                {"step": step, "table": right_alias, "access": access,
                 "key": str(right_ref)}
            )
        return SQLResult(plan), None


def _null_safe_key(value):
    return (value is None, value)


def _evaluate_aggregate(agg: ast.Aggregate, slot, members) -> object:
    """One aggregate over one group's rows (NULLs ignored, as in SQL)."""
    if agg.column is None:  # COUNT(*)
        return len(members)
    alias, name = slot
    values = [env[alias][name] for env in members if env[alias][name] is not None]
    if agg.func == "count":
        return len(values)
    if not values:
        return None
    if agg.func == "sum":
        return sum(values)
    if agg.func == "min":
        return min(values)
    if agg.func == "max":
        return max(values)
    if agg.func == "avg":
        return sum(values) / len(values)
    raise ProgrammingError(f"unknown aggregate {agg.func!r}")  # pragma: no cover
