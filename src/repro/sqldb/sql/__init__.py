"""A SQL subset: the slice of MySQL the paper's comparison schemas need.

CREATE DATABASE / TABLE / INDEX, USE, DROP, TRUNCATE, multi-row INSERT,
SELECT with inner equi-joins / WHERE / ORDER BY / LIMIT / COUNT(*),
UPDATE and DELETE — with positional ``?`` bind markers.
"""

from repro.sqldb.sql.parser import parse
from repro.sqldb.sql.executor import execute

__all__ = ["parse", "execute"]
