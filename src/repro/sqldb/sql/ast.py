"""SQL abstract syntax tree (relational engine)."""

from __future__ import annotations

from typing import List, Optional, Tuple


class Placeholder:
    """A positional ``?`` bind marker (0-based)."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __repr__(self) -> str:
        return f"?{self.index}"


class ColumnRef:
    """A possibly-qualified column reference ``[table_or_alias.]name``."""

    __slots__ = ("qualifier", "name")

    def __init__(self, qualifier: Optional[str], name: str) -> None:
        self.qualifier = qualifier
        self.name = name

    def __repr__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


class Condition:
    """``column OP value`` or ``column IS [NOT] NULL`` or ``column IN (...)``."""

    __slots__ = ("column", "op", "value")

    def __init__(self, column: ColumnRef, op: str, value) -> None:
        self.column = column
        self.op = op   # = != < > <= >= IN ISNULL NOTNULL
        self.value = value

    def __repr__(self) -> str:
        return f"{self.column!r} {self.op} {self.value!r}"


class TableSource:
    """``[db.]table [AS alias]`` in a FROM/JOIN clause."""

    __slots__ = ("database", "table", "alias")

    def __init__(self, database: Optional[str], table: str, alias: Optional[str]) -> None:
        self.database = database
        self.table = table
        self.alias = alias or table

    def __repr__(self) -> str:
        base = f"{self.database}.{self.table}" if self.database else self.table
        return f"{base} AS {self.alias}" if self.alias != self.table else base


class Join:
    """``JOIN source ON left = right`` (inner equi-join)."""

    __slots__ = ("source", "left", "right")

    def __init__(self, source: TableSource, left: ColumnRef, right: ColumnRef) -> None:
        self.source = source
        self.left = left
        self.right = right


class Aggregate:
    """An aggregate select item: ``FUNC(column)`` or ``COUNT(*)``."""

    __slots__ = ("func", "column", "label")

    def __init__(self, func: str, column: Optional[ColumnRef]) -> None:
        self.func = func                    # count | sum | min | max | avg
        self.column = column                # None only for COUNT(*)
        self.label = "count" if column is None else f"{func}({column})"

    def __repr__(self) -> str:
        return self.label


class Statement:
    __slots__ = ()


class CreateDatabase(Statement):
    __slots__ = ("name", "if_not_exists")

    def __init__(self, name: str, if_not_exists: bool) -> None:
        self.name = name
        self.if_not_exists = if_not_exists


class CreateTable(Statement):
    __slots__ = ("source", "columns", "primary_key", "if_not_exists")

    def __init__(
        self,
        source: TableSource,
        columns: List[Tuple[str, str, bool]],   # (name, type_text, not_null)
        primary_key: List[str],
        if_not_exists: bool,
    ) -> None:
        self.source = source
        self.columns = columns
        self.primary_key = primary_key
        self.if_not_exists = if_not_exists


class CreateIndex(Statement):
    __slots__ = ("name", "source", "column")

    def __init__(self, name: str, source: TableSource, column: str) -> None:
        self.name = name
        self.source = source
        self.column = column


class DropTable(Statement):
    __slots__ = ("source",)

    def __init__(self, source: TableSource) -> None:
        self.source = source


class DropDatabase(Statement):
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


class Use(Statement):
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


class Insert(Statement):
    __slots__ = ("source", "columns", "rows")

    def __init__(self, source: TableSource, columns: List[str], rows: List[List]) -> None:
        self.source = source
        self.columns = columns
        self.rows = rows      # multi-row VALUES


class Select(Statement):
    __slots__ = (
        "source", "joins", "columns", "aggregates", "group_by", "where",
        "order_by", "descending", "limit", "count",
    )

    def __init__(
        self,
        source: TableSource,
        joins: List[Join],
        columns: List[ColumnRef],        # empty means * (when no aggregates)
        where: List[Condition],
        order_by: Optional[ColumnRef],
        descending: bool,
        limit: Optional[int],
        count: bool,
        aggregates: Optional[List[Aggregate]] = None,
        group_by: Optional[List[ColumnRef]] = None,
    ) -> None:
        self.source = source
        self.joins = joins
        self.columns = columns
        self.aggregates = aggregates or []
        self.group_by = group_by or []
        self.where = where
        self.order_by = order_by
        self.descending = descending
        self.limit = limit
        self.count = count


class Update(Statement):
    __slots__ = ("source", "assignments", "where")

    def __init__(
        self,
        source: TableSource,
        assignments: List[Tuple[str, object]],
        where: List[Condition],
    ) -> None:
        self.source = source
        self.assignments = assignments
        self.where = where


class Delete(Statement):
    __slots__ = ("source", "where")

    def __init__(self, source: TableSource, where: List[Condition]) -> None:
        self.source = source
        self.where = where


class Truncate(Statement):
    __slots__ = ("source",)

    def __init__(self, source: TableSource) -> None:
        self.source = source


class Explain(Statement):
    """``EXPLAIN [ANALYZE] SELECT ...``: report the chosen access paths.

    With ``analyze`` set the statement is also *executed* and every
    operator row carries actual counters (see
    :mod:`repro.query.analyze`)."""

    __slots__ = ("select", "analyze")

    def __init__(self, select: "Select", analyze: bool = False) -> None:
        self.select = select
        self.analyze = analyze
