"""SQL tokeniser (MySQL-flavoured: backtick identifiers, # comments)."""

from __future__ import annotations

import re
from typing import List, NamedTuple

from repro.query import syntax_error_message
from repro.sqldb.errors import SQLSyntaxError


class Token(NamedTuple):
    kind: str      # IDENT | NUMBER | STRING | OP | END
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>--[^\n]*|\#[^\n]*|/\*.*?\*/)
  | (?P<STRING>'(?:[^'\\]|\\.|'')*'|"(?:[^"\\]|\\.)*")
  | (?P<NUMBER>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<BACKTICK>`[^`]+`)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<OP><=|>=|<>|!=|[(),.=<>*?;])
    """,
    re.VERBOSE | re.DOTALL,
)


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    position = 0
    length = len(text)
    while position < length:
        match = _TOKEN_RE.match(text, position)
        if match is None:
            snippet = text[position:position + 20]
            raise SQLSyntaxError(
                syntax_error_message("cannot tokenise SQL", text, position, snippet)
            )
        kind = match.lastgroup
        value = match.group()
        position = match.end()
        if kind in ("WS", "COMMENT"):
            continue
        if kind == "BACKTICK":
            tokens.append(Token("IDENT", value[1:-1], match.start()))
        else:
            tokens.append(Token(kind, value, match.start()))
    tokens.append(Token("END", "", length))
    return tokens


def unquote_string(text: str) -> str:
    quote = text[0]
    body = text[1:-1]
    if quote == "'":
        body = body.replace("''", "'")
    return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")
