"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.query import syntax_error_message
from repro.sqldb.errors import SQLSyntaxError
from repro.sqldb.sql import ast
from repro.sqldb.sql.lexer import Token, tokenize, unquote_string

_RESERVED = {
    "SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
    "DELETE", "CREATE", "DROP", "TABLE", "DATABASE", "INDEX", "PRIMARY",
    "KEY", "NOT", "NULL", "AND", "JOIN", "INNER", "ON", "AS", "ORDER",
    "BY", "LIMIT", "USE", "TRUNCATE", "IN", "IS", "COUNT", "ASC", "DESC",
    "GROUP", "SUM", "MIN", "MAX", "AVG",
}


def parse(text: str) -> ast.Statement:
    """Parse one SQL statement (a trailing ``;`` is allowed)."""
    return _Parser(text).parse_statement()


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.position = 0
        self._n_placeholders = 0

    # -- token plumbing ------------------------------------------------------
    def _peek(self) -> Token:
        return self.tokens[self.position]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "END":
            self.position += 1
        return token

    def _error(self, message: str) -> SQLSyntaxError:
        token = self._peek()
        return SQLSyntaxError(
            syntax_error_message(message, self.text, token.position, token.text)
        )

    def _accept_keyword(self, word: str) -> bool:
        token = self._peek()
        if token.kind == "IDENT" and token.text.upper() == word:
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise self._error(f"expected {word}")

    def _accept_op(self, op: str) -> bool:
        token = self._peek()
        if token.kind == "OP" and token.text == op:
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            raise self._error(f"expected {op!r}")

    def _identifier(self) -> str:
        token = self._peek()
        if token.kind != "IDENT":
            raise self._error("expected an identifier")
        self._advance()
        return token.text

    # -- entry ------------------------------------------------------------------
    def parse_statement(self) -> ast.Statement:
        statement = self._statement()
        self._accept_op(";")
        if self._peek().kind != "END":
            raise self._error("trailing input after statement")
        return statement

    def _statement(self) -> ast.Statement:
        if self._accept_keyword("EXPLAIN"):
            analyze = self._accept_keyword("ANALYZE")
            self._expect_keyword("SELECT")
            return ast.Explain(self._select(), analyze=analyze)
        if self._accept_keyword("CREATE"):
            return self._create()
        if self._accept_keyword("INSERT"):
            return self._insert()
        if self._accept_keyword("SELECT"):
            return self._select()
        if self._accept_keyword("UPDATE"):
            return self._update()
        if self._accept_keyword("DELETE"):
            return self._delete()
        if self._accept_keyword("TRUNCATE"):
            self._accept_keyword("TABLE")
            return ast.Truncate(self._table_source())
        if self._accept_keyword("DROP"):
            return self._drop()
        if self._accept_keyword("USE"):
            return ast.Use(self._identifier())
        raise self._error("unknown statement")

    # -- DDL ----------------------------------------------------------------------
    def _if_not_exists(self) -> bool:
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            return True
        return False

    def _create(self) -> ast.Statement:
        if self._accept_keyword("DATABASE") or self._accept_keyword("SCHEMA"):
            if_not_exists = self._if_not_exists()
            return ast.CreateDatabase(self._identifier(), if_not_exists)
        if self._accept_keyword("TABLE"):
            return self._create_table()
        if self._accept_keyword("INDEX"):
            name = self._identifier()
            self._expect_keyword("ON")
            source = self._table_source(allow_alias=False)
            self._expect_op("(")
            column = self._identifier()
            self._expect_op(")")
            return ast.CreateIndex(name, source, column)
        raise self._error("expected DATABASE, TABLE or INDEX")

    def _create_table(self) -> ast.CreateTable:
        if_not_exists = self._if_not_exists()
        source = self._table_source(allow_alias=False)
        self._expect_op("(")
        columns: List[Tuple[str, str, bool]] = []
        primary_key: List[str] = []
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                self._expect_op("(")
                primary_key.append(self._identifier())
                while self._accept_op(","):
                    primary_key.append(self._identifier())
                self._expect_op(")")
            else:
                name = self._identifier()
                type_text = self._type_text()
                not_null = False
                while True:
                    if self._accept_keyword("NOT"):
                        self._expect_keyword("NULL")
                        not_null = True
                        continue
                    if self._accept_keyword("PRIMARY"):
                        self._expect_keyword("KEY")
                        primary_key.append(name)
                        continue
                    break
                columns.append((name, type_text, not_null))
            if self._accept_op(","):
                continue
            break
        self._expect_op(")")
        # tolerate MySQL table options: ENGINE=INNODB etc.
        while self._peek().kind == "IDENT":
            self._identifier()
            if self._accept_op("="):
                self._advance()
        if not primary_key:
            raise self._error("CREATE TABLE needs a PRIMARY KEY")
        return ast.CreateTable(source, columns, primary_key, if_not_exists)

    def _type_text(self) -> str:
        base = self._identifier()
        if self._accept_op("("):
            token = self._peek()
            if token.kind != "NUMBER":
                raise self._error("expected a type width")
            self._advance()
            self._expect_op(")")
            return f"{base}({token.text})"
        return base

    def _drop(self) -> ast.Statement:
        if self._accept_keyword("TABLE"):
            return ast.DropTable(self._table_source(allow_alias=False))
        if self._accept_keyword("DATABASE"):
            return ast.DropDatabase(self._identifier())
        raise self._error("expected TABLE or DATABASE")

    # -- sources ---------------------------------------------------------------------
    def _table_source(self, allow_alias: bool = True) -> ast.TableSource:
        first = self._identifier()
        database: Optional[str] = None
        table = first
        if self._accept_op("."):
            database = first
            table = self._identifier()
        alias: Optional[str] = None
        if allow_alias:
            if self._accept_keyword("AS"):
                alias = self._identifier()
            else:
                token = self._peek()
                if token.kind == "IDENT" and token.text.upper() not in _RESERVED:
                    alias = self._identifier()
        return ast.TableSource(database, table, alias)

    def _column_ref(self) -> ast.ColumnRef:
        first = self._identifier()
        if self._accept_op("."):
            return ast.ColumnRef(first, self._identifier())
        return ast.ColumnRef(None, first)

    # -- DML --------------------------------------------------------------------------
    def _insert(self) -> ast.Insert:
        self._expect_keyword("INTO")
        source = self._table_source(allow_alias=False)
        self._expect_op("(")
        columns = [self._identifier()]
        while self._accept_op(","):
            columns.append(self._identifier())
        self._expect_op(")")
        self._expect_keyword("VALUES")
        rows: List[List] = [self._value_tuple(len(columns))]
        while self._accept_op(","):
            rows.append(self._value_tuple(len(columns)))
        return ast.Insert(source, columns, rows)

    def _value_tuple(self, expected: int) -> List:
        self._expect_op("(")
        values = [self._value()]
        while self._accept_op(","):
            values.append(self._value())
        self._expect_op(")")
        if len(values) != expected:
            raise self._error(f"expected {expected} values, got {len(values)}")
        return values

    def _select(self) -> ast.Select:
        count = False
        columns: List[ast.ColumnRef] = []
        aggregates: List[ast.Aggregate] = []
        if self._accept_op("*"):
            pass
        else:
            self._select_item(columns, aggregates)
            while self._accept_op(","):
                self._select_item(columns, aggregates)
            if (
                len(aggregates) == 1
                and not columns
                and aggregates[0].func == "count"
                and aggregates[0].column is None
            ):
                # plain SELECT COUNT(*) keeps its dedicated fast path
                count = True
                aggregates = []
        self._expect_keyword("FROM")
        source = self._table_source()
        joins: List[ast.Join] = []
        while True:
            if self._accept_keyword("INNER"):
                self._expect_keyword("JOIN")
            elif not self._accept_keyword("JOIN"):
                break
            join_source = self._table_source()
            self._expect_keyword("ON")
            left = self._column_ref()
            self._expect_op("=")
            right = self._column_ref()
            joins.append(ast.Join(join_source, left, right))
        where = self._where_clause()
        group_by: List[ast.ColumnRef] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._column_ref())
            while self._accept_op(","):
                group_by.append(self._column_ref())
        order_by: Optional[ast.ColumnRef] = None
        descending = False
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._column_ref()
            if self._accept_keyword("DESC"):
                descending = True
            else:
                self._accept_keyword("ASC")
        limit: Optional[int] = None
        if self._accept_keyword("LIMIT"):
            token = self._peek()
            if token.kind != "NUMBER":
                raise self._error("expected a LIMIT count")
            self._advance()
            limit = int(token.text)
        if group_by and not aggregates:
            raise self._error("GROUP BY requires at least one aggregate select item")
        return ast.Select(
            source, joins, columns, where, order_by, descending, limit, count,
            aggregates=aggregates, group_by=group_by,
        )

    _AGGREGATE_FUNCS = ("COUNT", "SUM", "MIN", "MAX", "AVG")

    def _select_item(self, columns: List[ast.ColumnRef], aggregates: List["ast.Aggregate"]) -> None:
        token = self._peek()
        if token.kind == "IDENT" and token.text.upper() in self._AGGREGATE_FUNCS:
            after = self.tokens[self.position + 1]
            if after.kind == "OP" and after.text == "(":
                func = token.text.lower()
                self._advance()
                self._expect_op("(")
                if self._accept_op("*"):
                    if func != "count":
                        raise self._error(f"{func.upper()}(*) is not valid")
                    column = None
                else:
                    column = self._column_ref()
                self._expect_op(")")
                aggregates.append(ast.Aggregate(func, column))
                return
        columns.append(self._column_ref())

    def _update(self) -> ast.Update:
        source = self._table_source(allow_alias=False)
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._accept_op(","):
            assignments.append(self._assignment())
        where = self._where_clause()
        return ast.Update(source, assignments, where)

    def _assignment(self) -> Tuple[str, object]:
        column = self._identifier()
        self._expect_op("=")
        return column, self._value()

    def _delete(self) -> ast.Delete:
        self._expect_keyword("FROM")
        source = self._table_source(allow_alias=False)
        return ast.Delete(source, self._where_clause())

    def _where_clause(self) -> List[ast.Condition]:
        conditions: List[ast.Condition] = []
        if not self._accept_keyword("WHERE"):
            return conditions
        conditions.append(self._condition())
        while self._accept_keyword("AND"):
            conditions.append(self._condition())
        return conditions

    def _condition(self) -> ast.Condition:
        column = self._column_ref()
        if self._accept_keyword("IS"):
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                return ast.Condition(column, "NOTNULL", None)
            self._expect_keyword("NULL")
            return ast.Condition(column, "ISNULL", None)
        if self._accept_keyword("IN"):
            self._expect_op("(")
            items = [self._value()]
            while self._accept_op(","):
                items.append(self._value())
            self._expect_op(")")
            return ast.Condition(column, "IN", items)
        for op in ("<=", ">=", "<>", "!=", "=", "<", ">"):
            if self._accept_op(op):
                normalised = "!=" if op == "<>" else op
                return ast.Condition(column, normalised, self._value())
        raise self._error("expected a comparison operator")

    # -- literals -----------------------------------------------------------------------
    def _value(self):
        token = self._peek()
        if token.kind == "OP" and token.text == "?":
            self._advance()
            placeholder = ast.Placeholder(self._n_placeholders)
            self._n_placeholders += 1
            return placeholder
        if token.kind == "NUMBER":
            self._advance()
            if "." in token.text or "e" in token.text or "E" in token.text:
                return float(token.text)
            return int(token.text)
        if token.kind == "STRING":
            self._advance()
            return unquote_string(token.text)
        if token.kind == "IDENT":
            upper = token.text.upper()
            if upper == "TRUE":
                self._advance()
                return True
            if upper == "FALSE":
                self._advance()
                return False
            if upper == "NULL":
                self._advance()
                return None
        raise self._error("expected a literal value")
