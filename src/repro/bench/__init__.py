"""Benchmark harness: the paper's datasets, runner and reporting."""

from repro.bench.datasets import (
    DATASETS,
    DATASETS_BY_NAME,
    DatasetBundle,
    DatasetSpec,
    clear_cache,
    current_scale,
    load_dataset,
    scaled_tuples,
)
from repro.bench.reporting import format_table, paper_vs_measured, shape_check
from repro.bench.runner import (
    DATASET_ORDER,
    PAPER_TABLE4_MB,
    PAPER_TABLE5_MS,
    CellResult,
    run_cell,
    run_matrix,
)

__all__ = [
    "CellResult",
    "DATASETS",
    "DATASETS_BY_NAME",
    "DATASET_ORDER",
    "DatasetBundle",
    "DatasetSpec",
    "PAPER_TABLE4_MB",
    "PAPER_TABLE5_MS",
    "clear_cache",
    "current_scale",
    "format_table",
    "load_dataset",
    "paper_vs_measured",
    "run_cell",
    "run_matrix",
    "scaled_tuples",
    "shape_check",
]
