"""The paper's evaluation datasets (Table 2) and scaling support.

Five periods of the bike feed: Day, Week, Month, TMonth (two months) and
SMonth (six months), with the paper's exact tuple counts.  Because the
full SMonth run (1.18 M tuples) takes minutes per schema in pure Python,
the harness scales tuple counts by ``REPRO_SCALE`` (default 1/16); set
``REPRO_SCALE=1.0`` to reproduce the full sizes.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, NamedTuple, Optional

from repro.dwarf.builder import DwarfBuilder
from repro.dwarf.cube import DwarfCube
from repro.etl.documents import DocumentBatch
from repro.smartcity.bikes import BikeFeedGenerator, bikes_pipeline

#: Scale applied to the paper's tuple counts (env ``REPRO_SCALE``).
DEFAULT_SCALE = 1.0 / 16.0


class DatasetSpec(NamedTuple):
    """One row of the paper's Table 2."""

    name: str
    days: int
    paper_tuples: int
    paper_size_mb: float


#: The paper's five datasets (Table 2).
DATASETS: List[DatasetSpec] = [
    DatasetSpec("Day", 1, 7_358, 2.1),
    DatasetSpec("Week", 7, 60_102, 17.1),
    DatasetSpec("Month", 30, 118_934, 54.1),
    DatasetSpec("TMonth", 61, 396_756, 113.0),
    DatasetSpec("SMonth", 183, 1_181_344, 338.0),
]

DATASETS_BY_NAME: Dict[str, DatasetSpec] = {spec.name: spec for spec in DATASETS}


def current_scale() -> float:
    """The active tuple-count scale from ``REPRO_SCALE``."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return DEFAULT_SCALE
    scale = float(raw)
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"REPRO_SCALE must be in (0, 1], got {scale}")
    return scale


def scaled_tuples(spec: DatasetSpec, scale: Optional[float] = None) -> int:
    scale = current_scale() if scale is None else scale
    return max(1, round(spec.paper_tuples * scale))


def scaled_days(spec: DatasetSpec, scale: Optional[float] = None) -> int:
    """Days covered by the scaled dataset.

    The period shrinks with the tuple count so the *density* (readings
    per day) — which controls how much prefix sharing the DWARF gets —
    stays close to the paper's; scaling tuples alone would produce a
    sparse feed whose cube is several times larger per tuple.
    """
    scale = current_scale() if scale is None else scale
    return max(1, math.ceil(spec.days * scale))


class DatasetBundle(NamedTuple):
    """Everything a benchmark needs for one dataset."""

    spec: DatasetSpec
    n_tuples: int
    documents: DocumentBatch
    cube: DwarfCube


_CACHE: Dict[tuple, DatasetBundle] = {}


def load_dataset(
    name: str,
    scale: Optional[float] = None,
    generator: Optional[BikeFeedGenerator] = None,
) -> DatasetBundle:
    """Generate documents, extract facts and build the cube for one period.

    Results are cached per (name, scale) so the Table 4 and Table 5
    benches reuse the same cubes.
    """
    spec = DATASETS_BY_NAME[name]
    scale = current_scale() if scale is None else scale
    cache_key = (name, round(scale, 9))
    cached = _CACHE.get(cache_key)
    if cached is not None:
        return cached

    n_tuples = scaled_tuples(spec, scale)
    feed = generator or BikeFeedGenerator()
    documents = feed.generate_documents(
        days=scaled_days(spec, scale), total_records=n_tuples
    ).batch()
    pipeline = bikes_pipeline()
    facts = pipeline.extract(documents)
    cube = DwarfBuilder(facts.schema).build(facts)
    bundle = DatasetBundle(spec=spec, n_tuples=len(facts), documents=documents, cube=cube)
    _CACHE[cache_key] = bundle
    return bundle


def clear_cache() -> None:
    _CACHE.clear()
