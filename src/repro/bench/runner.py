"""Experiment runner: measures one (dataset, schema) cell of Tables 4/5."""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence

from repro.bench.datasets import DatasetBundle, load_dataset
from repro.mapping.registry import MAPPER_FACTORIES, make_mapper
from repro.telemetry import get_tracer, wall_clock

#: Paper values for Table 4 (MB used to store a DWARF cube).
PAPER_TABLE4_MB: Dict[str, Sequence[float]] = {
    "MySQL-DWARF": (2, 20, 80, 169, 424),
    "MySQL-Min": (0.9, 8, 33, 70, 178),
    "NoSQL-DWARF": (0.9, 9, 35, 73, 182),
    "NoSQL-Min": (0.9, 11, 45, 96, 243),
}

#: Paper values for Table 5 (milliseconds to insert a DWARF cube).
PAPER_TABLE5_MS: Dict[str, Sequence[int]] = {
    "MySQL-DWARF": (1768, 12501, 47247, 100466, 255098),
    "MySQL-Min": (1107, 5955, 22243, 47936, 121221),
    "NoSQL-DWARF": (927, 4368, 15955, 34203, 89257),
    "NoSQL-Min": (5699, 57153, 222044, 484498, 1219887),
}

#: Dataset column order shared by Tables 2, 4 and 5.
DATASET_ORDER = ("Day", "Week", "Month", "TMonth", "SMonth")


class CellResult(NamedTuple):
    """One measured (schema, dataset) cell."""

    schema: str
    dataset: str
    n_tuples: int
    insert_ms: float
    size_mb: float
    node_count: int
    cell_count: int
    size_bytes: int = 0


def run_cell(schema_name: str, dataset_name: str, mapper=None) -> CellResult:
    """Store one dataset's cube under one schema; measure time and size.

    The timed region covers the transformation traversal plus the bulk
    insert (the paper's "time taken to insert a DWARF cube"); the size
    probe runs after the clock stops, like the paper's separate
    ``size_as_mb`` update.
    """
    bundle: DatasetBundle = load_dataset(dataset_name)
    owns_mapper = mapper is None
    if owns_mapper:
        mapper = make_mapper(schema_name)
    mapper.reset()

    with get_tracer().span("bench.cell", schema=schema_name, dataset=dataset_name):
        started = wall_clock()
        schema_id = mapper.store(bundle.cube, probe_size=False)
        insert_ms = (wall_clock() - started) * 1000.0

    mapper.probe_size(schema_id)
    # Report from the stored registry row: the exact byte count avoids the
    # paper schema's integer-MB floor, which reads 0 for the small datasets.
    info = mapper.info(schema_id)
    size_bytes = info.size_as_bytes
    if size_bytes is None:
        size_bytes = mapper.size_bytes()
    size_mb = size_bytes / (1024.0 * 1024.0)
    stats = bundle.cube.stats
    return CellResult(
        schema=schema_name,
        dataset=dataset_name,
        n_tuples=bundle.n_tuples,
        insert_ms=insert_ms,
        size_mb=size_mb,
        node_count=stats.node_count,
        cell_count=stats.cell_count,
        size_bytes=size_bytes,
    )


def run_matrix(
    datasets: Optional[Sequence[str]] = None,
    schemas: Optional[Sequence[str]] = None,
) -> List[CellResult]:
    """Measure every (schema, dataset) pair, reusing one mapper per schema."""
    datasets = tuple(datasets or DATASET_ORDER)
    schemas = tuple(schemas or MAPPER_FACTORIES)
    results: List[CellResult] = []
    for schema_name in schemas:
        mapper = make_mapper(schema_name)
        for dataset_name in datasets:
            results.append(run_cell(schema_name, dataset_name, mapper=mapper))
    return results
