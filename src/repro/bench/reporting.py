"""Paper-versus-measured reporting for the benchmark harness.

Each bench regenerates one table of the paper and prints it in the
paper's layout (schemas as rows, datasets as columns) next to the
published values, so the shape comparison is immediate.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Dict[str, Sequence[object]],
    note: str = "",
) -> str:
    """Render one paper-style table: row labels x dataset columns."""
    label_width = max(len(label) for label in list(rows) + [title])
    col_width = max(8, max(len(c) for c in columns) + 1)
    lines = [title]
    header = " " * label_width + "".join(f"{c:>{col_width}}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for label, values in rows.items():
        cells = "".join(f"{_fmt(v):>{col_width}}" for v in values)
        lines.append(f"{label:<{label_width}}{cells}")
    if note:
        lines.append(note)
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}" if value < 100 else f"{value:.0f}"
    return str(value)


def paper_vs_measured(
    title: str,
    columns: Sequence[str],
    paper_rows: Dict[str, Sequence[object]],
    measured_rows: Dict[str, Sequence[object]],
    note: str = "",
) -> str:
    """Two stacked tables: the paper's numbers, then this run's."""
    parts = [
        format_table(f"{title} — paper", columns, paper_rows),
        "",
        format_table(f"{title} — measured (this run)", columns, measured_rows, note),
    ]
    return "\n".join(parts)


def shape_check(
    measured: Dict[str, float],
    expected_order: List[str],
    tolerance: float = 0.0,
) -> List[str]:
    """Verify an ordering like ``["NoSQL-DWARF", "MySQL-Min", ...]`` holds.

    Returns a list of violations (empty when the shape matches).
    ``tolerance`` allows a fractional slack before flagging an inversion.
    """
    violations = []
    for earlier, later in zip(expected_order, expected_order[1:]):
        lo, hi = measured[earlier], measured[later]
        if lo > hi * (1.0 + tolerance):
            violations.append(
                f"{earlier} ({lo:.1f}) should not exceed {later} ({hi:.1f})"
            )
    return violations
