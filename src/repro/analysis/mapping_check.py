"""Bi-directional mapping invariant checker.

Every storage schema in the paper's evaluation is *bi-directional*:
``store`` flattens the DWARF into rows, ``load`` joins them back into an
identical cube (paper §3–4).  "Identical" here is structural — same
topology, same sharing (the DAG), same member keys, same leaf measures —
which is exactly what :func:`~repro.analysis.dwarf_check
.structural_signature` captures.  The checker verifies the three layers
of that promise independently:

* **Member codec** — ``decode_member(encode_member(k)) == k`` with the
  exact type, for every member key the cube actually contains (the text
  column is the only place dimension values survive storage).
* **Flatten round-trip** — ``rebuild_cube(transform_cube(cube))`` is
  structurally identical to ``cube``, before any engine is involved.
* **Store round-trip** — ``mapper.load(mapper.store(cube))`` is
  structurally identical, through the real engine write/read paths.
* **Registry agreement** — the stored :class:`StoredSchemaInfo` row
  reports the same node/cell counts the transformation produced.
"""

from __future__ import annotations

from typing import List, Set

from repro.analysis.dwarf_check import structural_signature
from repro.analysis.violations import CheckReport
from repro.dwarf.cube import DwarfCube
from repro.dwarf.traversal import breadth_first
from repro.mapping.base import (
    CubeMapper,
    decode_member,
    encode_member,
    rebuild_cube,
    transform_cube,
)

_CHECKER = "mapping"


def _keys_equal(left, right) -> bool:
    """Exact-type, NaN-aware member equality (1 != 1.0 != True here)."""
    if type(left) is not type(right):
        return False
    if left != left and right != right:  # both NaN
        return True
    return left == right


def _member_keys(cube: DwarfCube) -> List[object]:
    keys: List[object] = []
    seen: Set = set()
    for visit in breadth_first(cube.root):
        cell = visit.cell
        if cell is None or cell.is_all:
            continue
        marker = (type(cell.key).__name__, repr(cell.key))
        if marker not in seen:
            seen.add(marker)
            keys.append(cell.key)
    return keys


def mapping_check(mapper: CubeMapper, cube: DwarfCube) -> CheckReport:
    """Round-trip ``cube`` through ``mapper`` and report any divergence.

    Mutating: the cube is genuinely stored into the mapper's engine (that
    is the point — the round trip must cross the real write/read paths).
    Run against a scratch mapper instance, not one holding benchmark data
    you still need.
    """
    report = CheckReport(f"mapping_check[{mapper.name}]")
    reference = structural_signature(cube)

    for key in _member_keys(cube):
        try:
            decoded = decode_member(encode_member(key))
        except Exception as exc:
            report.add(
                _CHECKER, "mapping.member-codec", f"{mapper.name}/key={key!r}",
                f"member codec raised {type(exc).__name__}: {exc}",
            )
            continue
        report.check(
            _keys_equal(decoded, key), _CHECKER, "mapping.member-codec",
            f"{mapper.name}/key={key!r}",
            f"member {key!r} round-trips to {decoded!r}",
        )

    try:
        flat = transform_cube(cube)
        rebuilt = rebuild_cube(
            cube.schema, flat.nodes, flat.cells, flat.entry_node_id,
            n_source_tuples=cube.n_source_tuples,
        )
    except Exception as exc:
        report.add(
            _CHECKER, "mapping.flatten-roundtrip", mapper.name,
            f"transform/rebuild raised {type(exc).__name__}: {exc}",
        )
        return report
    report.check(
        structural_signature(rebuilt) == reference, _CHECKER,
        "mapping.flatten-roundtrip", mapper.name,
        "rebuild_cube(transform_cube(cube)) is not structurally identical "
        "to the original (topology, sharing or values differ)",
    )

    try:
        schema_id = mapper.store(cube, is_cube=True)
        loaded = mapper.load(schema_id, cube.schema)
    except Exception as exc:
        report.add(
            _CHECKER, "mapping.store-roundtrip", mapper.name,
            f"store/load raised {type(exc).__name__}: {exc}",
        )
        return report
    report.check(
        structural_signature(loaded) == reference, _CHECKER,
        "mapping.store-roundtrip", mapper.name,
        f"cube loaded from schema_id={schema_id} is not structurally "
        "identical to the one stored",
    )

    try:
        info = mapper.info(schema_id)
    except Exception as exc:
        report.add(
            _CHECKER, "mapping.registry", mapper.name,
            f"info({schema_id}) raised {type(exc).__name__}: {exc}",
        )
        return report
    report.check(
        info.node_count == len(flat.nodes), _CHECKER, "mapping.registry",
        mapper.name,
        f"registry reports {info.node_count} nodes, transformation produced "
        f"{len(flat.nodes)}",
    )
    report.check(
        info.cell_count == len(flat.cells), _CHECKER, "mapping.registry",
        mapper.name,
        f"registry reports {info.cell_count} cells, transformation produced "
        f"{len(flat.cells)}",
    )
    if info.entry_node_id is not None:
        # Only the DWARF schemas persist the entry node and the is_cube
        # flag (paper Table 1-A); the Min registries model neither.
        report.check(
            bool(info.is_cube), _CHECKER, "mapping.registry", mapper.name,
            "cube stored with is_cube=True registered as a plain schema",
        )
    return report
