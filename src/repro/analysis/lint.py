"""A repo-specific AST lint pass (stdlib ``ast`` only, no flake8).

Seven rules, each guarding a failure mode this codebase has actually to
care about:

* **REPRO001 mutable-default** — a ``list``/``dict``/``set`` literal,
  comprehension or constructor call as a parameter default is shared
  across calls; engines and mappers are long-lived objects, so the
  aliasing bites late and far from the definition.
* **REPRO002 bare-except** — ``except:`` swallows ``KeyboardInterrupt``
  and ``SystemExit`` and hides checker/engine bugs; catch something.
* **REPRO003 dict-order-hash** — in cube-hashing code (``dwarf/``,
  ``mapping/``, ``analysis/``), feeding ``.keys()``/``.values()``/
  ``.items()`` into ``hash()`` or ``frozenset()`` without ``sorted()``
  makes signatures depend on dict insertion order — exactly the bug the
  serial↔parallel equivalence checks exist to rule out.
* **REPRO004 undocumented-raise** — public functions of the engine
  packages (``storage/``, ``sqldb/``, ``nosqldb/``, minus the query
  front-ends) must name every error type they directly raise in their
  docstring; callers program against those docstrings.
* **REPRO005 layering** — the query front-ends (``sqldb/sql/``,
  ``nosqldb/cql/``) must not import :mod:`repro.mapping` (parsers sit
  *below* mappers), and ``storage/`` must not import any higher layer
  (dwarf, sqldb, nosqldb, mapping, etl).
* **REPRO006 kernel-independence** — the shared query kernel
  (``repro/query/``) must not import any other ``repro`` subpackage:
  both engines compile their statements *onto* the kernel's operators,
  so an engine import from inside the kernel would make the dependency
  circular and the plan vocabulary engine-specific.  The sole exception
  is :mod:`repro.telemetry`, a stdlib-only leaf that every layer may
  use for metrics and spans.
* **REPRO007 raw-clock** — ``time.perf_counter`` may only be called
  inside ``repro/telemetry/`` and ``benchmarks/_timing.py``; everything
  else must time through telemetry spans or the shared benchmark
  helpers so measurements stay comparable and trace-aware.

Run via :func:`run_lint` or ``python -m repro check --lint``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.violations import CheckReport

_CHECKER = "lint"

#: Constructor names whose call as a default value is a shared mutable.
_MUTABLE_CALLS = ("list", "dict", "set", "defaultdict", "OrderedDict", "Counter")

#: AST nodes that literally build a fresh mutable per evaluation site.
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)

#: Suffixes of exception class names REPRO004 requires docstrings to name.
_ERROR_SUFFIXES = ("Error", "Exception", "Exists", "Request", "Warning")

#: Path fragments (posix) whose files REPRO003 applies to.
_ORDER_SENSITIVE_PARTS = ("/dwarf/", "/mapping/", "/analysis/")

#: Layering rules: (path fragment, forbidden import prefixes).
_LAYERING = (
    ("/sqldb/sql/", ("repro.mapping",)),
    ("/nosqldb/cql/", ("repro.mapping",)),
    (
        "/storage/",
        ("repro.dwarf", "repro.sqldb", "repro.nosqldb", "repro.mapping",
         "repro.etl"),
    ),
)


def package_root() -> Path:
    """The ``repro`` package directory this lint defends by default."""
    return Path(__file__).resolve().parents[1]


def default_roots() -> List[Path]:
    """Default lint roots: the package plus ``benchmarks/`` when present."""
    roots = [package_root()]
    benchmarks = package_root().parents[1] / "benchmarks"
    if benchmarks.is_dir():
        roots.append(benchmarks)
    return roots


def iter_source_files(paths: Optional[Sequence] = None) -> List[Path]:
    """Resolve ``paths`` (files or directories) to a sorted ``.py`` list."""
    roots = [Path(p) for p in paths] if paths else default_roots()
    files = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            files.append(root)
    return files


def run_lint(paths: Optional[Sequence] = None) -> CheckReport:
    """Lint every file under ``paths`` (default: the repro package)."""
    report = CheckReport("lint")
    for path in iter_source_files(paths):
        lint_file(path, report)
    return report


def lint_file(path: Path, report: CheckReport) -> None:
    """Run every rule over one file, appending findings to ``report``."""
    location = _display(path)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        report.add(_CHECKER, "REPRO000", location, f"unparseable: {exc}")
        return
    posix = path.resolve().as_posix()
    _check_mutable_defaults(tree, location, report)
    _check_bare_except(tree, location, report)
    if any(part in posix for part in _ORDER_SENSITIVE_PARTS):
        _check_dict_order_hash(tree, location, report)
    if _raise_docs_apply(posix):
        _check_undocumented_raises(tree, location, report)
    _check_layering(tree, posix, location, report)
    _check_kernel_independence(tree, posix, location, report)
    if not _raw_clock_allowed(posix):
        _check_raw_clock(tree, location, report)


def _display(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


# ----------------------------------------------------------------------
# REPRO001 — mutable default arguments
# ----------------------------------------------------------------------
def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CALLS
    return False


def _check_mutable_defaults(tree: ast.AST, location: str,
                            report: CheckReport) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            report.check(
                not _is_mutable_default(default), _CHECKER, "REPRO001",
                f"{location}:{default.lineno}",
                f"mutable default argument in {node.name}() is shared "
                "across calls; default to None and build inside",
            )


# ----------------------------------------------------------------------
# REPRO002 — bare except
# ----------------------------------------------------------------------
def _check_bare_except(tree: ast.AST, location: str,
                       report: CheckReport) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler):
            report.check(
                node.type is not None, _CHECKER, "REPRO002",
                f"{location}:{node.lineno}",
                "bare `except:` swallows KeyboardInterrupt/SystemExit; "
                "catch Exception or something narrower",
            )


# ----------------------------------------------------------------------
# REPRO003 — dict-iteration-order-dependent hashing in cube code
# ----------------------------------------------------------------------
def _view_calls(node: ast.AST) -> Iterable[ast.Call]:
    """``.keys()``/``.values()``/``.items()`` calls in ``node``'s subtree."""
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr in ("keys", "values", "items")
            and not child.args and not child.keywords
        ):
            yield child


def _check_dict_order_hash(tree: ast.AST, location: str,
                           report: CheckReport) -> None:
    sorted_views = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
        ):
            for view in _view_calls(node):
                sorted_views.add(id(view))
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("hash", "frozenset")
        ):
            continue
        report.record()
        for view in _view_calls(node):
            if id(view) not in sorted_views:
                report.add(
                    _CHECKER, "REPRO003", f"{location}:{node.lineno}",
                    f"{node.func.id}() over a dict .{view.func.attr}() view "
                    "depends on insertion order; wrap the view in sorted() "
                    "so cube signatures are canonical",
                )


# ----------------------------------------------------------------------
# REPRO004 — public engine APIs must document what they raise
# ----------------------------------------------------------------------
def _raise_docs_apply(posix: str) -> bool:
    if "/sql/" in posix or "/cql/" in posix:
        return False
    return any(
        part in posix for part in ("/storage/", "/sqldb/", "/nosqldb/")
    )


def _public_functions(tree: ast.Module):
    """Top-level public functions and public methods of top-level classes."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield node
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if not item.name.startswith("_"):
                        yield item


def _raised_error_names(func: ast.AST) -> Iterable[ast.Raise]:
    """Direct ``raise Name(...)``/``raise Name`` statements in ``func``.

    Nested defs are skipped — their raises are not part of the enclosing
    function's visible contract until the closure is called.
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                             ast.ClassDef)):
            continue
        if isinstance(node, ast.Raise):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _error_name(raise_node: ast.Raise) -> Optional[str]:
    exc = raise_node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    name = None
    if isinstance(exc, ast.Name):
        name = exc.id
    elif isinstance(exc, ast.Attribute):
        name = exc.attr
    if name == "NotImplementedError":
        # An abstract-method stub is a contract for implementers, not an
        # error callers of a concrete engine can observe.
        return None
    if name and name.endswith(_ERROR_SUFFIXES):
        return name
    return None


def _check_undocumented_raises(tree: ast.Module, location: str,
                               report: CheckReport) -> None:
    for func in _public_functions(tree):
        docstring = ast.get_docstring(func) or ""
        for raise_node in _raised_error_names(func):
            name = _error_name(raise_node)
            if name is None:
                continue
            report.check(
                name in docstring, _CHECKER, "REPRO004",
                f"{location}:{raise_node.lineno}",
                f"public {func.name}() raises {name} but its docstring "
                "does not mention it; callers program against docstrings",
            )


# ----------------------------------------------------------------------
# REPRO005 — layering
# ----------------------------------------------------------------------
def _imported_modules(tree: ast.AST) -> Iterable:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node.lineno
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module:
                yield node.module, node.lineno


def _check_layering(tree: ast.AST, posix: str, location: str,
                    report: CheckReport) -> None:
    for fragment, forbidden in _LAYERING:
        if fragment not in posix:
            continue
        for module, lineno in _imported_modules(tree):
            for prefix in forbidden:
                report.check(
                    not (module == prefix or module.startswith(prefix + ".")),
                    _CHECKER, "REPRO005", f"{location}:{lineno}",
                    f"layer violation: {fragment.strip('/')} code imports "
                    f"{module} (must stay below {prefix})",
                )


# ----------------------------------------------------------------------
# REPRO006 — the query kernel imports no other repro subpackage
# ----------------------------------------------------------------------
_KERNEL_FRAGMENT = "/repro/query/"


def _check_kernel_independence(tree: ast.AST, posix: str, location: str,
                               report: CheckReport) -> None:
    if _KERNEL_FRAGMENT not in posix:
        return
    for module, lineno in _imported_modules(tree):
        allowed = (
            module == "repro.query" or module.startswith("repro.query.")
            # telemetry is a stdlib-only leaf, importable from any layer
            # without making the kernel engine-specific.
            or module == "repro.telemetry"
            or module.startswith("repro.telemetry.")
        )
        report.check(
            allowed or not (module == "repro" or module.startswith("repro.")),
            _CHECKER, "REPRO006", f"{location}:{lineno}",
            f"kernel violation: repro.query imports {module}; the query "
            "kernel must stay engine-agnostic (engines import it, never "
            "the reverse)",
        )


# ----------------------------------------------------------------------
# REPRO007 — time.perf_counter only inside telemetry / benchmark helpers
# ----------------------------------------------------------------------
#: Path fragments where calling ``time.perf_counter`` directly is fine.
_RAW_CLOCK_ALLOWED_PARTS = ("/repro/telemetry/", "/benchmarks/_timing.py")


def _raw_clock_allowed(posix: str) -> bool:
    return any(part in posix for part in _RAW_CLOCK_ALLOWED_PARTS)


def _check_raw_clock(tree: ast.AST, location: str,
                     report: CheckReport) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        direct = (
            isinstance(func, ast.Attribute)
            and func.attr == "perf_counter"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        )
        bare = isinstance(func, ast.Name) and func.id == "perf_counter"
        report.check(
            not (direct or bare), _CHECKER, "REPRO007",
            f"{location}:{node.lineno}",
            "raw time.perf_counter() call; time through repro.telemetry "
            "spans (or benchmarks/_timing.py helpers) so measurements "
            "stay comparable and trace-aware",
        )
