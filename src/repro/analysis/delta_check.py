"""Invariant checker for incremental (delta) cube maintenance.

The append path (:mod:`repro.dwarf.delta`, :mod:`repro.mapping.incremental`)
rests on one algebraic fact: folding delta cubes into a base with the
multi-way SuffixCoalesce merge is *equivalent to a cold rebuild* over the
union of every input's facts — in structure (signature-identical DAGs)
and in answers (every point query agrees).  The ``cube.delta-consistency``
rule checks that fact from three directions:

* **merge == rebuild** — ``merge(base, d1, …, dn)`` has the same
  :func:`~repro.analysis.dwarf_check.structural_signature` as one serial
  build over the concatenated facts;
* **order-insensitivity / associativity** — folding the deltas reversed,
  or one at a time (left fold), produces that same signature;
* **overlay == merged == rebuild** — for a probe set of point queries,
  the *overlay* answer (the aggregator's merge of each unmerged cube's
  answer — exactly what :func:`repro.mapping.stored_query.stored_point_query`
  computes pre-merge) equals the merged cube's answer equals the
  rebuild's answer, so a reader sees the same numbers on either side of
  an epoch flip.

Surfaced through ``repro check --invariants`` and importable for tests.
"""

from __future__ import annotations

from functools import reduce
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.dwarf_check import _states_equal, structural_signature
from repro.analysis.violations import CheckReport
from repro.core.schema import CubeSchema
from repro.core.tuples import FactTuple
from repro.dwarf.builder import DwarfBuilder
from repro.dwarf.cell import ALL
from repro.dwarf.delta import DeltaDwarfBuilder

_CHECKER = "dwarf"
_RULE = "cube.delta-consistency"

#: Probe-set ceiling: enough coordinates to cover every fact row of a
#: `repro check` dataset plus its ALL-marginals without making the rule
#: quadratic on large inputs.
_MAX_PROBES = 256


def _default_probes(rows: Sequence[Sequence], n_dims: int) -> List[Tuple]:
    """Point probes drawn from the facts themselves.

    The grand total, every distinct full coordinate vector, and each
    vector's single-dimension ALL marginals — the mix of exact hits and
    aggregate walks the stored-query strategies serve.
    """
    probes: List[Tuple] = [tuple([ALL] * n_dims)]
    seen = set(probes)
    for row in rows:
        coords = tuple(row.keys) if isinstance(row, FactTuple) else tuple(row[:-1])
        candidates = [coords]
        for position in range(n_dims):
            marginal = coords[:position] + (ALL,) + coords[position + 1 :]
            candidates.append(marginal)
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                probes.append(candidate)
            if len(probes) >= _MAX_PROBES:
                return probes
    return probes


def delta_check(
    schema: CubeSchema,
    partitions: Sequence[Iterable[Sequence]],
    probes: Optional[Sequence[Tuple]] = None,
) -> CheckReport:
    """Check ``cube.delta-consistency`` over ``partitions``; never raises.

    ``partitions`` is the micro-batch decomposition of one fact stream:
    the first entry seeds the base cube, the rest become delta cubes.
    ``probes`` overrides the generated point-query probe set.
    """
    report = CheckReport("delta_check")
    batches = [list(batch) for batch in partitions]
    if not batches:
        report.check(
            False, _CHECKER, _RULE, "partitions",
            "delta_check needs at least one fact partition",
        )
        return report

    builder = DeltaDwarfBuilder(schema)
    cubes = [builder.build_delta(batch) for batch in batches]
    base, deltas = cubes[0], cubes[1:]
    merged = builder.merge(base, *deltas)
    union = [row for batch in batches for row in batch]
    rebuild = DwarfBuilder(schema).build(union)
    expected_signature = structural_signature(rebuild)

    report.check(
        structural_signature(merged) == expected_signature,
        _CHECKER, _RULE, "merge",
        f"merge of base + {len(deltas)} deltas is not signature-identical "
        f"to a cold rebuild over the union ({len(union)} facts)",
    )
    report.check(
        merged.n_source_tuples == rebuild.n_source_tuples,
        _CHECKER, _RULE, "merge",
        f"merged cube counts {merged.n_source_tuples} source tuples, "
        f"rebuild counts {rebuild.n_source_tuples}",
    )

    if deltas:
        reversed_merge = DeltaDwarfBuilder(schema).merge(base, *reversed(deltas))
        report.check(
            structural_signature(reversed_merge) == expected_signature,
            _CHECKER, _RULE, "order",
            "folding the deltas in reverse order changed the structural "
            "signature (multi-way merge must be order-insensitive)",
        )
        folded = base
        left_fold = DeltaDwarfBuilder(schema)
        for delta in deltas:
            folded = left_fold.merge(folded, delta)
        report.check(
            structural_signature(folded) == expected_signature,
            _CHECKER, _RULE, "associativity",
            "folding the deltas one at a time changed the structural "
            "signature (merge must be associative)",
        )

    aggregator = schema.aggregator
    for probe in probes if probes is not None else _default_probes(union, schema.n_dimensions):
        expected = rebuild.value(probe)
        answers = [value for value in (cube.value(probe) for cube in cubes) if value is not None]
        overlay = reduce(aggregator.merge, answers) if answers else None
        report.check(
            _states_equal(merged.value(probe), expected),
            _CHECKER, _RULE, f"merged{probe!r}",
            f"merged cube answers {merged.value(probe)!r}, rebuild answers "
            f"{expected!r}",
        )
        report.check(
            _states_equal(overlay, expected),
            _CHECKER, _RULE, f"overlay{probe!r}",
            f"base+delta overlay answers {overlay!r}, rebuild answers "
            f"{expected!r} (a pre-merge reader would see different numbers)",
        )
    return report
