"""Runtime invariant checkers for SSTables and column families.

SSTable invariants (DESIGN.md "NoSQL engine", paper §5 storage model):

* **Sorted blocks** — block first-keys ascend strictly; entries inside a
  block ascend strictly and start at the indexed first key; blocks do
  not overlap (the binary-searched point read depends on all three).
* **Bloom no-false-negative** — every stored key answers
  ``might_contain() == True``; a false negative silently loses rows.
* **Codec/compression round-trip** — each row-major block decompresses,
  decodes entry-by-entry, and re-encodes to the exact stored bytes.
* **Columnar round-trip** — each columnar block decodes into column
  vectors, rematerializes every row byte-identically, re-encodes to the
  exact stored payload, and its in-memory zone maps match a fresh
  recomputation from the stored values (rule
  ``sstable.columnar-roundtrip``; see docs/columnar_blocks.md).
* **Row accounting** — entry count matches ``len(table)``; tombstoned
  keys never coexist with a live row in the same table.

Column-family invariants add the cross-structure checks:

* **Memtable ↔ commit-log agreement** — in a durable keyspace, the
  newest logged mutation for every unflushed key equals the memtable's
  live row (or an empty payload for a tombstone); this is what makes
  crash replay byte-faithful.
* **Secondary-index ↔ data agreement** — index entries and live rows
  describe each other exactly, in both directions.
* **Row-cache agreement** — every cached row (or cached negative read)
  matches what an uncached storage walk returns for that key; a stale
  entry means a mutation skipped its strict invalidation
  (docs/read_path.md).
* **Live-count agreement** — the write-path-maintained row counter
  equals the deduplicated live-row count across memtables and SSTables.
* **Shard routing** (rule ``keyspace.shard-routing``) — every live row
  lives on exactly the shard the consistent-hash ring assigns its key,
  no key appears on two shards, and the per-shard live-row counters sum
  to ``len(family)``.  A routing bug would make point reads miss rows
  that scans still see (docs/parallel_query.md).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.btree_check import btree_check
from repro.analysis.violations import CheckReport
from repro.nosqldb.cache import NEGATIVE
from repro.nosqldb.columnar import TAG_COLUMNAR, TAG_ROW
from repro.nosqldb.columnfamily import ColumnFamily
from repro.nosqldb.sstable import SSTable, _decode_key
from repro.storage.btree import encode_key
from repro.storage.encoding import decode_bytes, encode_bytes
from repro.storage.varint import decode_varint, encode_varint

_CHECKER = "sstable"


def sstable_check(table: SSTable, name: str = "sstable") -> CheckReport:
    """Check every structural invariant of one SSTable; never raises.

    Corruption that breaks decompression or decoding is reported as an
    ``sstable.corrupt-block`` violation instead of propagating.
    """
    report = CheckReport(f"sstable_check[{name}]")
    block_keys = table._block_keys

    previous_block_key = None
    for index, block_key in enumerate(block_keys):
        if previous_block_key is not None:
            try:
                report.check(
                    previous_block_key < block_key, _CHECKER,
                    "sstable.block-order", f"{name}/block[{index}]",
                    f"block first-keys out of order: {previous_block_key!r} "
                    f"!< {block_key!r}",
                )
            except TypeError:
                report.add(
                    _CHECKER, "sstable.block-order", f"{name}/block[{index}]",
                    f"uncomparable block first-key {block_key!r}",
                )
        previous_block_key = block_key

    n_rows = 0
    previous_key = None
    for index in range(len(block_keys)):
        location = f"{name}/block[{index}]"
        try:
            tag, payload = table._block_payload(index)
            if tag == TAG_COLUMNAR:
                entries = _check_columnar_block(report, table, payload, index, location)
            elif tag == TAG_ROW:
                entries = list(_row_block_entries(payload))
            else:
                raise ValueError(f"unknown block format tag 0x{tag:02x}")
        except Exception as exc:  # corrupt bytes surface as a violation
            report.add(
                _CHECKER, "sstable.corrupt-block", location,
                f"block failed to decompress/decode: {type(exc).__name__}: {exc}",
            )
            continue
        report.check(
            bool(entries), _CHECKER, "sstable.empty-block", location,
            "sealed block holds no entries",
        )
        for position, (key, row, raw_entry) in enumerate(entries):
            n_rows += 1
            if position == 0:
                report.check(
                    key == block_keys[index], _CHECKER, "sstable.block-index",
                    location,
                    f"sparse index says first key {block_keys[index]!r}, block "
                    f"starts at {key!r}",
                )
            if previous_key is not None:
                try:
                    report.check(
                        previous_key < key, _CHECKER, "sstable.key-order",
                        location,
                        f"row keys out of order: {previous_key!r} !< {key!r}",
                    )
                except TypeError:
                    report.add(
                        _CHECKER, "sstable.key-order", location,
                        f"uncomparable row key {key!r}",
                    )
            previous_key = key
            if raw_entry is not None:  # row-major entries carry stored bytes
                expected = encode_key(key) + encode_bytes(row)
                report.check(
                    raw_entry == encode_varint(len(expected)) + expected,
                    _CHECKER, "sstable.codec-roundtrip", location,
                    f"entry for key {key!r} does not re-encode to its stored bytes",
                )
            report.check(
                table._bloom.might_contain(key), _CHECKER,
                "sstable.bloom-false-negative", location,
                f"bloom filter misses stored key {key!r} (reads would skip "
                "this table)",
            )
            report.check(
                key not in table._tombstones, _CHECKER,
                "sstable.tombstone-overlap", location,
                f"key {key!r} is both live and tombstoned in one table",
            )

    report.check(
        n_rows == len(table), _CHECKER, "sstable.row-count", name,
        f"table reports {len(table)} rows, blocks hold {n_rows}",
    )
    return report


def _row_block_entries(raw: bytes) -> Iterator[Tuple[object, bytes, bytes]]:
    """Decode a row-major block payload, yielding ``(key, row, raw_entry)``."""
    offset = 0
    end = len(raw)
    while offset < end:
        start = offset
        entry_len, offset = decode_varint(raw, offset)
        entry_end = offset + entry_len
        if entry_end > end:
            raise ValueError(
                f"entry length {entry_len} overruns the block at offset {start}"
            )
        key, key_end = _decode_key(raw, offset)
        row, row_end = decode_bytes(raw, key_end)
        if row_end != entry_end:
            raise ValueError(
                f"entry for key {key!r} decodes {row_end - offset} bytes, "
                f"header promised {entry_len}"
            )
        yield key, row, bytes(raw[start:entry_end])
        offset = entry_end


def _check_columnar_block(
    report: CheckReport, table: SSTable, payload: bytes, index: int, location: str
) -> List[Tuple[object, bytes, None]]:
    """Verify one columnar block and return its ``(key, row, None)`` entries.

    The round-trip is exact both ways: decode -> rematerialize rows ->
    re-encode must reproduce the stored payload byte-for-byte (the
    encoder is deterministic), and the table's in-memory zone maps must
    equal a fresh recomputation from the stored values.  Raises when the
    payload cannot be decoded at all (reported as a corrupt block by the
    caller).
    """
    codec = table._codec
    if codec is None:
        report.add(
            _CHECKER, "sstable.columnar-roundtrip", location,
            "columnar block in a table with no codec (unreadable by scans)",
        )
        return []
    vectors = codec.decode_block(payload)
    keys, rows = vectors.all_rows()
    reencoded, zones, _, _ = codec.encode_block(list(zip(keys, rows)))
    report.check(
        reencoded == payload, _CHECKER, "sstable.columnar-roundtrip", location,
        "columnar block does not re-encode to its stored payload",
    )
    stored_zones = table._zone_maps[index]
    report.check(
        stored_zones == zones, _CHECKER, "sstable.columnar-roundtrip", location,
        "in-memory zone maps differ from a recomputation over the stored "
        "values (block skipping could drop or retain the wrong blocks)",
    )
    return [(key, row, None) for key, row in zip(keys, rows)]


# ----------------------------------------------------------------------
# column-family level
# ----------------------------------------------------------------------
def columnfamily_check(family: ColumnFamily) -> CheckReport:
    """Check one column family: its SSTables plus cross-structure rules.

    Deliberately avoids forcing flush/materialisation: only already-built
    SSTables are checked, so running the checker never changes what a
    subsequent read or benchmark observes.
    """
    report = CheckReport(f"columnfamily_check[{family.name}]")
    for shard in family.shards:
        for index, sstable in enumerate(shard.sstables):
            label = (
                f"{family.name}/sstable[{index}]"
                if family.shard_count == 1
                else f"{family.name}/s{shard.shard_id}/sstable[{index}]"
            )
            report.merge(sstable_check(sstable, name=label))
    _check_commitlog_agreement(report, family)
    _check_index_agreement(report, family)
    _check_row_cache_agreement(report, family)
    _check_live_count(report, family)
    _check_shard_routing(report, family)
    for column_name, secondary in family._indexes.items():
        report.merge(
            btree_check(secondary._tree, name=f"{family.name}/index[{column_name}]")
        )
    return report


def _unflushed_view(family: ColumnFamily) -> Dict[object, Optional[bytes]]:
    """Newest unflushed mutation per key: encoded row, or None = tombstone.

    Walked per shard — shard key spaces are disjoint, so the merged view
    is well-defined regardless of shard order.
    """
    view: Dict[object, Optional[bytes]] = {}
    for shard in family.shards:
        memtables = [shard.memtable] + list(reversed(shard.pending))
        for memtable in memtables:  # newest first; first hit wins
            for key, encoded in memtable:
                view.setdefault(key, encoded)
            for key in memtable.tombstones:
                view.setdefault(key, None)
    return view


def _check_commitlog_agreement(report: CheckReport, family: ColumnFamily) -> None:
    log = family._commit_log
    if log is None:
        return
    location = f"{family.name}/commitlog"
    try:
        latest: Dict[object, bytes] = {}
        for table_name, key, encoded_row in log.records():
            if table_name == family.name:
                latest[key] = encoded_row
    except Exception as exc:
        report.add(
            _CHECKER, "sstable.commitlog-corrupt", location,
            f"commit log failed to decode: {type(exc).__name__}: {exc}",
        )
        return
    for key, encoded in _unflushed_view(family).items():
        logged = latest.get(key)
        if encoded is None:  # tombstone: logged as an empty payload
            report.check(
                logged == b"", _CHECKER, "sstable.commitlog-agreement",
                location,
                f"memtable tombstone for key {key!r} is not the newest logged "
                "mutation",
            )
        else:
            report.check(
                logged == encoded, _CHECKER, "sstable.commitlog-agreement",
                location,
                f"memtable row for key {key!r} differs from the newest logged "
                "mutation (crash replay would diverge)",
            )


def _shard_live_rows(shard) -> Iterator[Tuple[object, bytes]]:
    """One shard's live ``(key, encoded_row)`` pairs, layered walk."""
    seen = set()
    deleted = set()
    memtables = [shard.memtable] + list(reversed(shard.pending))
    for memtable in memtables:
        for key, encoded in memtable:
            if key not in seen and key not in deleted:
                seen.add(key)
                yield key, encoded
        deleted |= set(memtable.tombstones)
    for sstable in reversed(shard.sstables):
        for key, encoded in sstable.items():
            if key not in seen and key not in deleted:
                seen.add(key)
                yield key, encoded
        deleted |= set(sstable.tombstones)


def _live_rows(family: ColumnFamily) -> Iterator[Tuple[object, bytes]]:
    """Every live ``(key, encoded_row)`` without forcing materialisation."""
    for shard in family.shards:
        yield from _shard_live_rows(shard)


def _check_index_agreement(report: CheckReport, family: ColumnFamily) -> None:
    if not family._indexes:
        return
    expected: Dict[str, set] = {column: set() for column in family._indexes}
    for key, encoded in _live_rows(family):
        try:
            row = family.decode_row(encoded)
        except Exception as exc:
            report.add(
                _CHECKER, "sstable.corrupt-row", f"{family.name}[{key!r}]",
                f"stored row failed to decode: {type(exc).__name__}: {exc}",
            )
            continue
        for column in expected:
            value = row.get(column)
            if value is not None:
                expected[column].add((value, key))
    for column, index in family._indexes.items():
        actual = set(index._tree.keys())
        location = f"{family.name}/index[{column}]"
        missing = expected[column] - actual
        extra = actual - expected[column]
        report.check(
            not missing, _CHECKER, "sstable.index-agreement", location,
            f"{len(missing)} live row(s) missing from the index, e.g. "
            f"{_example(missing)}",
        )
        report.check(
            not extra, _CHECKER, "sstable.index-agreement", location,
            f"{len(extra)} index entrie(s) with no matching live row, e.g. "
            f"{_example(extra)}",
        )


def _check_row_cache_agreement(report: CheckReport, family: ColumnFamily) -> None:
    """Every cached row must match an uncached storage walk for its key.

    This is the safety net behind the row cache's strict-invalidation
    rules: any mutation path that forgets ``invalidate``/``clear`` shows
    up here as a stale entry.
    """
    location = f"{family.name}/row-cache"
    for key, cached in family._row_cache.items():
        actual = family._read_encoded_uncached(key)
        if cached is NEGATIVE:
            report.check(
                actual is None, _CHECKER, "sstable.row-cache-stale", location,
                f"cache says key {key!r} is absent but storage holds a live row",
            )
        else:
            report.check(
                cached == actual, _CHECKER, "sstable.row-cache-stale", location,
                f"cached row for key {key!r} differs from the stored row "
                "(a mutation skipped invalidation)",
            )


def _check_live_count(report: CheckReport, family: ColumnFamily) -> None:
    if family._n_live is None:  # marked dirty (crash recovery); nothing to hold
        return
    actual = sum(1 for _ in _live_rows(family))
    report.check(
        family._n_live == actual, _CHECKER, "sstable.live-count",
        f"{family.name}/live-count",
        f"write path counted {family._n_live} live row(s), storage holds {actual}",
    )


def _check_shard_routing(report: CheckReport, family: ColumnFamily) -> None:
    """Rule ``keyspace.shard-routing``: the ring and storage agree.

    Every live row must be hosted by exactly the shard
    ``family.ring.shard_for(key)`` names (a misrouted row is invisible
    to point reads), no key may be live on two shards (scans would
    double-count it), and the per-shard live-row counters must sum to
    the family's total.
    """
    ring = family.ring
    location = f"{family.name}/shard-routing"
    owners: Dict[object, int] = {}
    for shard in family.shards:
        for key, _ in _shard_live_rows(shard):
            previous = owners.get(key)
            if previous is not None:
                report.add(
                    "keyspace", "keyspace.shard-routing", location,
                    f"key {key!r} is live on shard {previous} and shard "
                    f"{shard.shard_id} (scans would double-count it)",
                )
                continue
            owners[key] = shard.shard_id
            expected = ring.shard_for(key)
            report.check(
                expected == shard.shard_id, "keyspace",
                "keyspace.shard-routing", location,
                f"key {key!r} lives on shard {shard.shard_id} but the ring "
                f"routes it to shard {expected} (point reads would miss it)",
            )
    counters = [shard.n_live for shard in family.shards]
    if None not in counters:
        report.check(
            sum(counters) == len(family), "keyspace", "keyspace.shard-routing",
            location,
            f"per-shard live counters sum to {sum(counters)}, family holds "
            f"{len(family)} live row(s)",
        )


def _example(entries: set) -> str:
    return repr(next(iter(entries))) if entries else "-"
