"""Runtime invariant checker for :class:`repro.storage.btree.BTree`.

Covers the guarantees both engines lean on (DESIGN.md "storage layer"):

* **Key ordering** — strictly ascending keys inside every leaf and
  across the whole tree (clustered scans and range lookups iterate the
  leaf chain in order).
* **Separator correctness** — for an internal node, every key in
  ``children[i]`` is ``< keys[i]`` and every key in ``children[i+1]`` is
  ``>= keys[i]``; this is exactly what the ``bisect_right`` descent in
  ``_find_leaf`` assumes.
* **Leaf-chain integrity** — the ``next`` chain starting at the first
  leaf visits exactly the leaves reachable from the root, in tree order.
* **Page accounting** — entry/leaf/internal counters match the live
  structure, pages respect the split capacity, and clean (non-dirty)
  pages hold a byte-accurate encoded image.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.violations import CheckReport
from repro.storage.btree import BTree, _Internal, _Leaf, encode_key
from repro.storage.encoding import encode_bytes
from repro.storage.varint import encode_varint

_CHECKER = "btree"


def _expected_leaf_image(leaf: _Leaf) -> bytes:
    """Recompute a leaf's encoded page without mutating it."""
    parts = [encode_varint(len(leaf.keys))]
    for key, value in zip(leaf.keys, leaf.values):
        parts.append(encode_key(key))
        parts.append(encode_bytes(value) if value is not None else b"\x00")
    return b"".join(parts)


def btree_check(tree: BTree, name: str = "btree") -> CheckReport:
    """Check every structural invariant of ``tree``; never raises."""
    report = CheckReport(f"btree_check[{name}]")
    capacity = tree._capacity
    leaves: List[_Leaf] = []
    counts = {"entries": 0, "internal": 0}

    def walk(node, lo, hi, depth: int) -> None:
        location = f"{name}/page@depth{depth}"
        if isinstance(node, _Leaf):
            leaves.append(node)
            counts["entries"] += len(node.keys)
            report.check(
                len(node.keys) == len(node.values), _CHECKER, "btree.page-shape",
                location,
                f"leaf holds {len(node.keys)} keys but {len(node.values)} values",
            )
            report.check(
                len(node.keys) <= capacity, _CHECKER, "btree.page-capacity",
                location,
                f"leaf holds {len(node.keys)} entries, capacity is {capacity}",
            )
            previous = None
            for key in node.keys:
                try:
                    if previous is not None:
                        report.check(
                            previous < key, _CHECKER, "btree.key-order",
                            location,
                            f"keys out of order: {previous!r} !< {key!r}",
                        )
                    if lo is not None:
                        report.check(
                            key >= lo, _CHECKER, "btree.separator", location,
                            f"key {key!r} below its subtree's separator {lo!r}",
                        )
                    if hi is not None:
                        report.check(
                            key < hi, _CHECKER, "btree.separator", location,
                            f"key {key!r} at or above the next separator {hi!r}",
                        )
                except TypeError:
                    report.add(
                        _CHECKER, "btree.key-order", location,
                        f"uncomparable key {key!r} in an ordered page",
                    )
                previous = key
            if not node.dirty:
                report.check(
                    node.encoded == _expected_leaf_image(node),
                    _CHECKER, "btree.stale-page", location,
                    "clean leaf's encoded image does not match its entries",
                )
            return
        counts["internal"] += 1
        report.check(
            len(node.children) == len(node.keys) + 1, _CHECKER, "btree.fanout",
            location,
            f"internal page has {len(node.keys)} separators but "
            f"{len(node.children)} children",
        )
        report.check(
            len(node.children) <= capacity, _CHECKER, "btree.page-capacity",
            location,
            f"internal page has {len(node.children)} children, capacity is "
            f"{capacity}",
        )
        bounds = [lo] + list(node.keys) + [hi]
        for index, child in enumerate(node.children):
            walk(child, bounds[index], bounds[index + 1], depth + 1)

    walk(tree._root, None, None, 0)

    report.check(
        counts["entries"] == len(tree), _CHECKER, "btree.entry-count", name,
        f"counter says {len(tree)} entries, pages hold {counts['entries']}",
    )
    report.check(
        len(leaves) == tree._n_leaves, _CHECKER, "btree.page-count", name,
        f"counter says {tree._n_leaves} leaf pages, tree holds {len(leaves)}",
    )
    report.check(
        counts["internal"] == tree._n_internal, _CHECKER, "btree.page-count",
        name,
        f"counter says {tree._n_internal} internal pages, tree holds "
        f"{counts['internal']}",
    )

    # Leaf chain: starting at the first leaf, `next` pointers must visit
    # exactly the reachable leaves in tree order, then terminate.
    chain: List[_Leaf] = []
    leaf: Optional[_Leaf] = tree._first_leaf
    limit = len(leaves) + 1
    while leaf is not None and len(chain) <= limit:
        chain.append(leaf)
        leaf = leaf.next
    ok = len(chain) == len(leaves) and all(
        a is b for a, b in zip(chain, leaves)
    )
    report.check(
        ok, _CHECKER, "btree.leaf-chain", name,
        f"leaf chain visits {len(chain)} pages, tree order has {len(leaves)}"
        " (broken, reordered or cyclic next pointers)",
    )
    return report
