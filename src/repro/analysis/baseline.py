"""Finding baselines: adopt the checker on a codebase with known debt.

A baseline file records accepted findings so ``repro check`` can fail
only on *new* ones.  Matching deliberately ignores line numbers —
``(rule, path, message)`` identifies a finding across unrelated edits
that shift it up or down the file — and consumes baseline entries as a
multiset, so two identical findings need two baseline entries and
fixing one of them surfaces the other.

The repo ships an empty ``analysis-baseline.json``: the codebase lints
clean, and the file exists so CI's ``--baseline`` invocation has a
stable anchor (and so new debt has an explicit, reviewable place to be
parked if it ever must be).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, NamedTuple, Tuple

from repro.analysis.violations import CheckReport, Violation

#: Current baseline file schema version.
VERSION = 1


class BaselineError(ValueError):
    """The baseline file is malformed or has an unsupported version."""


def _location_path(location: str) -> str:
    """``path.py`` from ``path.py:42`` (lines do not identify findings)."""
    path, sep, line = location.rpartition(":")
    if sep and line.isdigit():
        return path
    return location


def _key(violation: Violation) -> Tuple[str, str, str]:
    return (violation.rule, _location_path(violation.location),
            violation.message)


class BaselineResult(NamedTuple):
    """Split of a report against a baseline."""

    new: List[Violation]        # not in the baseline: should fail the run
    known: List[Violation]      # matched a baseline entry
    stale: List[Dict[str, str]]  # baseline entries nothing matched


def load_baseline(path: Path) -> Counter:
    """Read a baseline file into a ``(rule, path, message) -> count``
    multiset.

    Raises BaselineError on malformed content — a truncated baseline
    must not silently approve everything.
    """
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != VERSION:
        raise BaselineError(
            f"baseline {path}: expected an object with version={VERSION}")
    findings = data.get("findings")
    if not isinstance(findings, list):
        raise BaselineError(f"baseline {path}: 'findings' must be a list")
    counts: Counter = Counter()
    for i, entry in enumerate(findings):
        if not isinstance(entry, dict) or not all(
                isinstance(entry.get(k), str)
                for k in ("rule", "path", "message")):
            raise BaselineError(
                f"baseline {path}: finding #{i} needs string "
                "rule/path/message fields")
        counts[(entry["rule"], entry["path"], entry["message"])] += 1
    return counts


def apply_baseline(report: CheckReport, baseline: Counter) -> BaselineResult:
    """Split ``report``'s violations into new vs baselined.

    Consumes ``baseline`` entries one finding per entry (multiset
    semantics); leftover entries come back as ``stale`` so the baseline
    file shrinks as debt is paid down.
    """
    remaining = Counter(baseline)
    new: List[Violation] = []
    known: List[Violation] = []
    for violation in report.violations:
        key = _key(violation)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            known.append(violation)
        else:
            new.append(violation)
    stale = [
        {"rule": rule, "path": path, "message": message}
        for (rule, path, message), count in sorted(remaining.items())
        for _ in range(count)
    ]
    return BaselineResult(new, known, stale)


def write_baseline(path: Path, report: CheckReport) -> None:
    """Serialise ``report``'s current findings as the new baseline."""
    findings = sorted(
        (
            {"rule": v.rule, "path": _location_path(v.location),
             "message": v.message}
            for v in report.violations
        ),
        key=lambda e: (e["rule"], e["path"], e["message"]),
    )
    payload = {"version": VERSION, "findings": findings}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")


__all__ = [
    "BaselineError",
    "BaselineResult",
    "VERSION",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]
