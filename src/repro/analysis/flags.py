"""The ``REPRO_CHECK`` runtime gate.

This module must stay dependency-free (stdlib ``os`` only): the hot-path
hooks in :mod:`repro.dwarf.builder` and both session modules import it at
module load, long before the checker modules — which import those same
engine modules — are safe to pull in.
"""

from __future__ import annotations

import os

#: Values of ``REPRO_CHECK`` that leave the checkers disabled.
_DISABLED = ("", "0", "false", "no", "off")


def checks_enabled() -> bool:
    """True when runtime invariant checking is switched on.

    Controlled by the ``REPRO_CHECK`` environment variable, mirroring how
    ``REPRO_SCALE`` and ``REPRO_WORKERS`` configure the harness: any value
    other than empty/``0``/``false``/``no``/``off`` enables the
    sanitizer-style hooks in the DWARF builders and both engine sessions.
    """
    return os.environ.get("REPRO_CHECK", "").strip().lower() not in _DISABLED
