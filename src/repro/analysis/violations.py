"""Structured violation reports shared by every checker.

A checker never raises on the structure it inspects — it returns a
:class:`CheckReport` full of :class:`Violation` records so that callers
(the ``repro check`` CLI, the ``REPRO_CHECK=1`` runtime hooks, tests)
decide whether to print, fail the build, or raise.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple

from repro.core.errors import ReproError


class InvariantViolationError(ReproError):
    """One or more structural invariants do not hold.

    Raised by :meth:`CheckReport.raise_if_violations` — and therefore by
    the ``REPRO_CHECK=1`` hooks — with the offending :class:`Violation`
    records attached as :attr:`violations`.
    """

    def __init__(self, violations: List["Violation"]) -> None:
        self.violations = list(violations)
        lines = [violation.format() for violation in self.violations[:10]]
        if len(self.violations) > 10:
            lines.append(f"... and {len(self.violations) - 10} more")
        count = len(self.violations)
        plural = "" if count == 1 else "s"
        super().__init__(
            f"{count} invariant violation{plural}:\n" + "\n".join(lines)
        )


class Violation(NamedTuple):
    """One broken invariant.

    Attributes
    ----------
    checker:
        The checker family that found it (``dwarf``, ``btree``,
        ``sstable``, ``heap``, ``mapping``, ``lint``).
    rule:
        Stable rule identifier, e.g. ``dwarf.all-aggregate`` or
        ``REPRO002``.
    location:
        Where: ``path.py:42`` for lint, a structural path such as
        ``node@L2[key='Dublin']`` for runtime checkers.
    message:
        Human-readable description of what is wrong.
    """

    checker: str
    rule: str
    location: str
    message: str

    def format(self) -> str:
        return f"[{self.rule}] {self.location}: {self.message}"


class CheckReport:
    """The outcome of running one (or several merged) checkers.

    ``n_checks`` counts individual invariant evaluations so that a clean
    report is distinguishable from a checker that never ran.
    """

    __slots__ = ("name", "violations", "n_checks")

    def __init__(self, name: str) -> None:
        self.name = name
        self.violations: List[Violation] = []
        self.n_checks = 0

    # ------------------------------------------------------------------
    def add(self, checker: str, rule: str, location: str, message: str) -> None:
        """Record one violation."""
        self.violations.append(Violation(checker, rule, location, message))

    def record(self, n: int = 1) -> None:
        """Count ``n`` invariant evaluations (violated or not)."""
        self.n_checks += n

    def check(self, condition: bool, checker: str, rule: str, location: str,
              message: str) -> bool:
        """Evaluate one invariant: count it, record a violation on failure."""
        self.n_checks += 1
        if not condition:
            self.add(checker, rule, location, message)
        return condition

    def merge(self, other: "CheckReport") -> "CheckReport":
        """Fold ``other``'s findings into this report."""
        self.violations.extend(other.violations)
        self.n_checks += other.n_checks
        return self

    def extend(self, violations: Iterable[Violation]) -> None:
        self.violations.extend(violations)

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_violations(self) -> None:
        """Raise :class:`InvariantViolationError` unless the report is clean."""
        if self.violations:
            raise InvariantViolationError(self.violations)

    def format_lines(self) -> List[str]:
        return [violation.format() for violation in self.violations]

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return f"{self.name}: {self.n_checks} checks, {status}"

    def __repr__(self) -> str:
        return f"CheckReport({self.summary()})"
