"""The repo-wide import graph and the declared layer order.

:func:`build_import_graph` parses every module under a package root and
records its ``repro.*`` import edges, keeping module-level ("top")
imports separate from function-level lazy ones.  On top of the graph,
:func:`layering_violations` enforces :data:`LAYERS` — the architecture
DAG of README/DESIGN — and :func:`import_cycles` finds module-level
strongly-connected components.  Both feed the REPRO012 lint rule.

The declared order (low to high; a module may import strictly lower
layers, plus its own package):

====  =======================================
rank  packages
====  =======================================
0     ``repro.core``, ``repro.telemetry``
1     ``repro.storage``
2     ``repro.query`` (the shared kernel)
3     ``repro.sqldb``, ``repro.nosqldb``
4     ``repro.dwarf``, ``repro.etl``
5     ``repro.mapping``, ``repro.smartcity``
6     ``repro.bench``, ``repro.analysis``
7     ``repro.cli``
8     ``repro.__main__``
====  =======================================

Two kinds of sanctioned exceptions:

* **Leaf modules** (:data:`LEAF_MODULES`) may be imported from any
  layer: ``repro.telemetry`` (stdlib-only metrics/tracing) and
  ``repro.analysis.flags`` (the dependency-free ``REPRO_CHECK`` gate the
  engine hot paths read).
* **Lazy imports** (inside a function body) are exempt from the rank
  check: they are the deliberate cycle-breaking mechanism — the checker
  facade imports the engines it inspects lazily, the CLI imports
  everything lazily.  Module-level cycles are still flagged.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple

#: Layer rank -> packages (module-name prefixes) at that rank.
LAYERS: Tuple[Tuple[str, ...], ...] = (
    ("repro.core", "repro.telemetry"),
    ("repro.storage",),
    ("repro.query",),
    ("repro.sqldb", "repro.nosqldb"),
    ("repro.dwarf", "repro.etl"),
    ("repro.mapping", "repro.smartcity"),
    ("repro.bench", "repro.analysis"),
    ("repro.cli",),
    ("repro.__main__",),
)

#: Modules importable from any layer (stdlib-only leaves).
LEAF_MODULES: Tuple[str, ...] = ("repro.telemetry", "repro.analysis.flags")

#: Importing modules the rank check skips: the package root re-exports
#: the public API and is not itself a layer.
EXEMPT_IMPORTERS: Tuple[str, ...] = ("repro",)


class ImportEdge(NamedTuple):
    """One ``importer -> imported`` edge."""

    importer: str
    imported: str
    lineno: int
    toplevel: bool


class ModuleInfo(NamedTuple):
    """One parsed module in the graph."""

    name: str
    path: Path
    edges: Tuple[ImportEdge, ...]


class ImportGraph(NamedTuple):
    """Every module plus its outgoing ``repro.*`` edges."""

    modules: Dict[str, ModuleInfo]

    def edges(self, toplevel_only: bool = False) -> List[ImportEdge]:
        out: List[ImportEdge] = []
        for info in self.modules.values():
            for edge in info.edges:
                if toplevel_only and not edge.toplevel:
                    continue
                out.append(edge)
        return out


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name of ``path``, anchored at its ``repro`` segment.

    Works for the installed tree (``src/repro/...``) and for synthetic
    test trees (``tmp/repro/...``); returns None for files outside a
    ``repro`` package directory (benchmarks, tests).
    """
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    anchor = len(parts) - 1 - parts[::-1].index("repro")
    dotted = list(parts[anchor:])
    dotted[-1] = Path(dotted[-1]).stem
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


class _RawImport(NamedTuple):
    """One import statement before submodule resolution."""

    module: str          # the dotted module named by the statement
    aliases: Tuple[str, ...]  # names bound by `from module import ...`
    lineno: int
    toplevel: bool


def _raw_imports_of(tree: ast.Module, module: str) -> List[_RawImport]:
    toplevel = {id(stmt) for stmt in tree.body}
    # Imports directly inside a top-level `if` (TYPE_CHECKING guards,
    # version gates) still bind at module import time.
    for stmt in tree.body:
        if isinstance(stmt, ast.If):
            for sub in ast.walk(stmt):
                toplevel.add(id(sub))
    raw: List[_RawImport] = []
    package = module.rsplit(".", 1)[0] if "." in module else module
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                raw.append(_RawImport(alias.name, (), node.lineno,
                                      id(node) in toplevel))
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                if not node.module:
                    continue
                base_name = node.module
            else:
                # Resolve a relative import against this module's package.
                parts = package.split(".")
                up = node.level - 1
                if up >= len(parts):
                    continue
                prefix = ".".join(parts[: len(parts) - up])
                base_name = (f"{prefix}.{node.module}"
                             if node.module else prefix)
            raw.append(_RawImport(
                base_name, tuple(alias.name for alias in node.names),
                node.lineno, id(node) in toplevel))
    return [r for r in raw
            if r.module == "repro" or r.module.startswith("repro.")]


def _resolve_edges(module: str, raw: List[_RawImport],
                   known: Set[str]) -> List[ImportEdge]:
    """Refine ``from pkg import name`` to ``pkg.name`` when that is a
    known module: submodule imports through a package ``__init__`` must
    not read as edges onto the package itself (they would make every
    package look like a cycle with its own members)."""
    edges: List[ImportEdge] = []
    for item in raw:
        targets: Set[str] = set()
        for alias in item.aliases:
            candidate = f"{item.module}.{alias}"
            if candidate in known:
                targets.add(candidate)
            else:
                # A plain attribute import depends on the module itself.
                targets.add(item.module)
        if not item.aliases:
            targets.add(item.module)
        for target in sorted(targets):
            edges.append(ImportEdge(module, target, item.lineno,
                                    item.toplevel))
    return edges


def build_import_graph(files: Iterable[Path]) -> ImportGraph:
    """Parse ``files`` into an :class:`ImportGraph` (non-repro files and
    unparseable files are skipped; the lint driver reports those
    separately as REPRO000)."""
    parsed: List[Tuple[Path, ast.Module]] = []
    for path in files:
        if module_name_for(path) is None:
            continue
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"),
                             filename=str(path))
        except (OSError, SyntaxError, ValueError):
            continue
        parsed.append((path, tree))
    return graph_from_trees(parsed)


def graph_from_trees(
    parsed: Sequence[Tuple[Path, ast.Module]]) -> ImportGraph:
    """Build the graph from already-parsed ``(path, tree)`` pairs."""
    raw: Dict[str, Tuple[Path, List[_RawImport]]] = {}
    for path, tree in parsed:
        name = module_name_for(path)
        if name is None:
            continue
        raw[name] = (path, _raw_imports_of(tree, name))
    known = set(raw)
    modules: Dict[str, ModuleInfo] = {}
    for name, (path, items) in raw.items():
        modules[name] = ModuleInfo(
            name, path, tuple(_resolve_edges(name, items, known)))
    return ImportGraph(modules)


def layer_of(module: str) -> Optional[int]:
    """The declared rank of ``module``'s package (None if undeclared)."""
    best: Optional[Tuple[int, int]] = None  # (prefix length, rank)
    for rank, packages in enumerate(LAYERS):
        for package in packages:
            if module == package or module.startswith(package + "."):
                if best is None or len(package) > best[0]:
                    best = (len(package), rank)
    return best[1] if best else None


def package_of(module: str) -> str:
    """The declared package prefix owning ``module`` (longest match)."""
    best = ""
    for packages in LAYERS:
        for package in packages:
            if module == package or module.startswith(package + "."):
                if len(package) > len(best):
                    best = package
    return best or module


def _is_leaf(module: str) -> bool:
    return any(module == leaf or module.startswith(leaf + ".")
               for leaf in LEAF_MODULES)


class LayerViolation(NamedTuple):
    """One import that breaks the declared DAG."""

    edge: ImportEdge
    message: str


def layering_violations(graph: ImportGraph) -> List[LayerViolation]:
    """Top-level imports that climb the layer order or cross a rank."""
    out: List[LayerViolation] = []
    for edge in graph.edges(toplevel_only=True):
        if edge.importer in EXEMPT_IMPORTERS or edge.imported == "repro":
            continue
        if _is_leaf(edge.imported):
            continue
        src_pkg, dst_pkg = package_of(edge.importer), package_of(edge.imported)
        if src_pkg == dst_pkg:
            continue
        src_rank, dst_rank = layer_of(edge.importer), layer_of(edge.imported)
        if src_rank is None:
            out.append(LayerViolation(
                edge,
                f"{edge.importer} belongs to no declared layer; add its "
                "package to repro.analysis.imports.LAYERS"))
            continue
        if dst_rank is None:
            out.append(LayerViolation(
                edge,
                f"{edge.importer} imports {edge.imported}, which belongs to "
                "no declared layer; add it to "
                "repro.analysis.imports.LAYERS"))
            continue
        if dst_rank > src_rank:
            out.append(LayerViolation(
                edge,
                f"{edge.importer} (layer {src_rank}, {src_pkg}) imports "
                f"{edge.imported} (layer {dst_rank}, {dst_pkg}): imports "
                "must point down the layer order; use a function-level "
                "lazy import if the dependency is genuinely runtime-only"))
        elif dst_rank == src_rank:
            out.append(LayerViolation(
                edge,
                f"{edge.importer} imports sibling package {dst_pkg}: "
                f"packages at layer {src_rank} are independent peers"))
    return out


def import_cycles(graph: ImportGraph) -> List[List[str]]:
    """Module-level import cycles (SCCs of the top-level edge graph).

    Returns each cycle as a sorted module list; singleton SCCs only
    count when the module imports itself.
    """
    adjacency: Dict[str, List[str]] = {name: [] for name in graph.modules}
    for edge in graph.edges(toplevel_only=True):
        # Only edges to modules in the graph matter (importing a package
        # lands on its __init__, which is registered under the package
        # name); edges out of the analyzed tree cannot close a cycle.
        if edge.imported in adjacency:
            adjacency[edge.importer].append(edge.imported)

    # Tarjan, iterative.
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    counter = [0]
    cycles: List[List[str]] = []

    def strongconnect(root: str) -> None:
        work = [(root, iter(adjacency[root]))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(adjacency[succ])))
                    advanced = True
                    break
                if on_stack.get(succ):
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in adjacency[node]:
                    cycles.append(sorted(component))

    for name in sorted(adjacency):
        if name not in index:
            strongconnect(name)
    return sorted(cycles)


__all__ = [
    "EXEMPT_IMPORTERS",
    "ImportEdge",
    "ImportGraph",
    "LAYERS",
    "LEAF_MODULES",
    "LayerViolation",
    "ModuleInfo",
    "build_import_graph",
    "graph_from_trees",
    "import_cycles",
    "layer_of",
    "layering_violations",
    "module_name_for",
    "package_of",
]
