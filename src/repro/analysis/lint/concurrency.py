"""Concurrency-safety rules: REPRO008 lock discipline, REPRO010 shared state.

* **REPRO008 lock-discipline** — a class that builds a lock in
  ``__init__`` (``self._lock = threading.Lock()`` or RLock/Condition)
  establishes a discipline: any instance field mutated under ``with
  self._lock:`` *somewhere* in the class is lock-protected *everywhere*.
  A mutation of such a field on a CFG path not dominated by the lock's
  ``with`` context (or an explicit ``.acquire()``) is a race.
  ``__init__``/``__new__`` and ``reset``-style methods are exempt —
  construction and teardown happen before/after the object is shared.
* **REPRO010 thread-shared-state** — module-level mutable containers
  (dict/list/set/OrderedDict/defaultdict/deque literals or constructor
  calls) in the concurrent packages (``nosqldb/``, ``query/``,
  ``telemetry/``) may only be written from inside ``with <lock>:`` or
  from a ``reset``/``clear``-named setup function; anything else is a
  cross-thread data race waiting for load.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG, FunctionNode, dominators, dotted_name
from repro.analysis.lint.context import FileContext
from repro.analysis.lint.registry import rule

#: threading constructors whose result makes an attribute a lock.
_LOCK_FACTORIES = ("Lock", "RLock", "Condition")

#: Method-name fragments exempt from lock discipline (single-threaded
#: construction / explicit teardown phases).
_EXEMPT_METHOD_PARTS = ("reset", "clear", "close")

#: Path fragments whose module globals REPRO010 applies to.
_SHARED_STATE_PARTS = ("/nosqldb/", "/query/", "/telemetry/")

#: Module-level constructor names that build a mutable container.
_CONTAINER_CALLS = ("dict", "list", "set", "OrderedDict", "defaultdict",
                    "Counter", "deque")

_CONTAINER_LITERALS = (ast.Dict, ast.List, ast.Set)

#: Container methods that mutate in place.
_MUTATING_METHODS = ("append", "extend", "add", "update", "setdefault",
                     "pop", "popitem", "remove", "discard", "insert",
                     "clear", "appendleft", "extendleft")


def _walk_shallow(func: ast.AST) -> Iterable[ast.AST]:
    """Walk ``func``'s subtree, skipping nested defs/lambdas/classes.

    Rules over a function's own CFG must not see statements of nested
    scopes — those blocks belong to a different graph.
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (*FunctionNode, ast.Lambda, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_exempt_method(name: str) -> bool:
    if name in ("__init__", "__new__", "__del__", "__enter__", "__exit__"):
        return True
    return any(part in name.lower() for part in _EXEMPT_METHOD_PARTS)


def _is_lock_factory(call: ast.AST) -> bool:
    if not isinstance(call, ast.Call):
        return False
    func = call.func
    name = None
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    return name in _LOCK_FACTORIES


# ----------------------------------------------------------------------
# REPRO008 — lock-guarded field discipline within a class
# ----------------------------------------------------------------------
def _class_locks(cls: ast.ClassDef) -> Set[str]:
    """Lock attribute names: ``self.X = threading.Lock()`` in any method."""
    locks: Set[str] = set()
    for method in cls.body:
        if not isinstance(method, FunctionNode):
            continue
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            if not _is_lock_factory(node.value):
                continue
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    locks.add(target.attr)
    return locks


def _self_field_mutations(method: ast.AST) -> Iterable[Tuple[str, ast.stmt]]:
    """``(field, stmt)`` for each ``self.field`` store/augstore in a stmt.

    Only direct statements of the method body count (nested defs have
    their own discipline); mutating *method calls* on containers
    (``self.x.append(...)``) count as writes too.
    """
    for node in _walk_shallow(method):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            if isinstance(node, ast.AnnAssign) and node.value is None:
                continue
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                base = target
                # self.x[k] = v and self.x.y = v mutate self.x's object.
                while isinstance(base, (ast.Subscript,)):
                    base = base.value
                if (isinstance(base, ast.Attribute)
                        and isinstance(base.value, ast.Name)
                        and base.value.id == "self"):
                    yield base.attr, node
        elif (isinstance(node, ast.Expr)
              and isinstance(node.value, ast.Call)
              and isinstance(node.value.func, ast.Attribute)
              and node.value.func.attr in _MUTATING_METHODS):
            owner = node.value.func.value
            if (isinstance(owner, ast.Attribute)
                    and isinstance(owner.value, ast.Name)
                    and owner.value.id == "self"):
                yield owner.attr, node


def _guarded(cfg: CFG, stmt: ast.stmt, lock_contexts: Set[str],
             doms=None) -> bool:
    """True when ``stmt``'s block is inside a lock's ``with`` context or
    dominated by a block containing ``<lock>.acquire()``."""
    block = cfg.block_of(stmt)
    if block is None:
        return False
    if any(ctx_name in lock_contexts for ctx_name in block.with_contexts):
        return True
    if doms is None:
        doms = dominators(cfg)
    for dom in doms.get(block, ()):
        if any(ctx_name in lock_contexts for ctx_name in dom.with_contexts):
            return True
        for node in dom.statements:
            for call in ast.walk(node):
                if (isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr == "acquire"):
                    owner = dotted_name(call.func.value)
                    if owner in lock_contexts:
                        return True
    return False


@rule("REPRO008", "lock-discipline",
      "lock-guarded field mutated on an unguarded CFG path")
def check_lock_discipline(ctx: FileContext) -> None:
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        locks = _class_locks(cls)
        if not locks:
            continue
        lock_contexts = {f"self.{name}" for name in locks}
        methods = [m for m in cls.body if isinstance(m, FunctionNode)]
        # Pass 1: which fields does this class ever mutate under a lock?
        guarded_fields: Set[str] = set()
        per_method: Dict[int, List[Tuple[str, ast.stmt]]] = {}
        dom_cache: Dict[int, dict] = {}
        for method in methods:
            mutations = [(field, stmt)
                         for field, stmt in _self_field_mutations(method)
                         if field not in locks]
            per_method[id(method)] = mutations
            if not mutations:
                continue
            cfg = ctx.cfg(method)
            doms = dom_cache.setdefault(id(method), dominators(cfg))
            for field, stmt in mutations:
                if _guarded(cfg, stmt, lock_contexts, doms):
                    guarded_fields.add(field)
        if not guarded_fields:
            continue
        # Pass 2: every mutation of a guarded field must itself be guarded.
        for method in methods:
            if _is_exempt_method(method.name):
                continue
            mutations = [m for m in per_method[id(method)]
                         if m[0] in guarded_fields]
            if not mutations:
                continue
            cfg = ctx.cfg(method)
            doms = dom_cache.setdefault(id(method), dominators(cfg))
            for field, stmt in mutations:
                ctx.check(
                    _guarded(cfg, stmt, lock_contexts, doms),
                    "REPRO008", stmt.lineno,
                    f"{cls.name}.{method.name}() mutates self.{field} "
                    "outside its lock; the class guards this field with "
                    f"`with self.{sorted(locks)[0]}:` elsewhere, so this "
                    "write can race",
                )


# ----------------------------------------------------------------------
# REPRO010 — module-level mutable containers written without a lock
# ----------------------------------------------------------------------
def _module_containers(tree: ast.Module) -> Dict[str, int]:
    """``name -> lineno`` of module-level mutable container bindings."""
    containers: Dict[str, int] = {}
    for stmt in tree.body:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        value = stmt.value
        if value is None:
            continue
        is_container = isinstance(value, _CONTAINER_LITERALS) or (
            isinstance(value, ast.Call)
            and ((isinstance(value.func, ast.Name)
                  and value.func.id in _CONTAINER_CALLS)
                 or (isinstance(value.func, ast.Attribute)
                     and value.func.attr in _CONTAINER_CALLS)))
        if not is_container:
            continue
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        for target in targets:
            if isinstance(target, ast.Name):
                containers[target.id] = stmt.lineno
    return containers


def _module_locks(tree: ast.Module) -> Set[str]:
    """Module-level lock names: Lock()-assigned or name-contains-lock."""
    locks: Set[str] = set()
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if not isinstance(target, ast.Name):
                continue
            if _is_lock_factory(stmt.value) or "lock" in target.id.lower():
                locks.add(target.id)
    return locks


def _container_writes(func: ast.AST, names: Set[str]
                      ) -> Iterable[Tuple[str, ast.stmt]]:
    """Statements in ``func`` that write a module-level container.

    A write is a mutating method call, a subscript store, an augmented
    assignment, or a rebinding via ``global``.
    """
    declared_global: Set[str] = set()
    for node in _walk_shallow(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in _walk_shallow(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in names):
                    yield target.value.id, node
                elif (isinstance(target, ast.Name)
                      and target.id in names
                      and target.id in declared_global):
                    yield target.id, node
        elif (isinstance(node, ast.Expr)
              and isinstance(node.value, ast.Call)
              and isinstance(node.value.func, ast.Attribute)
              and node.value.func.attr in _MUTATING_METHODS
              and isinstance(node.value.func.value, ast.Name)
              and node.value.func.value.id in names):
            yield node.value.func.value.id, node
        elif (isinstance(node, ast.Delete)):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in names):
                    yield target.value.id, node


@rule("REPRO010", "thread-shared-state",
      "module-level mutable container written without a lock")
def check_shared_state(ctx: FileContext) -> None:
    if not any(part in ctx.posix for part in _SHARED_STATE_PARTS):
        return
    containers = _module_containers(ctx.tree)
    if not containers:
        return
    names = set(containers)
    locks = _module_locks(ctx.tree)
    for func in ast.walk(ctx.tree):
        if not isinstance(func, FunctionNode):
            continue
        if _is_exempt_method(func.name):
            continue
        writes = list(_container_writes(func, names))
        if not writes:
            continue
        cfg = ctx.cfg(func)
        doms = dominators(cfg)
        for name, stmt in writes:
            ctx.check(
                bool(locks) and _guarded(cfg, stmt, locks, doms),
                "REPRO010", stmt.lineno,
                f"{func.name}() writes module-level container {name} "
                "without holding a module lock; wrap the write in "
                "`with <lock>:` (or rename the function to a reset/clear "
                "setup helper if it runs before threads start)",
            )
