"""REPRO001 — mutable default arguments.

A ``list``/``dict``/``set`` literal, comprehension or constructor call
as a parameter default is shared across calls; engines and mappers are
long-lived objects, so the aliasing bites late and far from the
definition.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import FileContext
from repro.analysis.lint.registry import rule

#: Constructor names whose call as a default value is a shared mutable.
_MUTABLE_CALLS = ("list", "dict", "set", "defaultdict", "OrderedDict",
                  "Counter")

#: AST nodes that literally build a fresh mutable per evaluation site.
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CALLS
    return False


@rule("REPRO001", "mutable-default",
      "mutable default arguments are shared across calls")
def check_mutable_defaults(ctx: FileContext) -> None:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            ctx.check(
                not _is_mutable_default(default), "REPRO001",
                default.lineno,
                f"mutable default argument in {node.name}() is shared "
                "across calls; default to None and build inside",
            )
