"""The repo-specific lint pass (stdlib ``ast`` only, no flake8).

Fourteen rules, each guarding a failure mode this codebase has actually
to care about, one module per rule family:

========= ===================== ==========================================
REPRO000  unparseable           a lint root contains a file ast cannot
                                parse (driver pseudo-rule)
REPRO001  mutable-default       :mod:`~repro.analysis.lint.mutability`
REPRO002  bare-except           :mod:`~repro.analysis.lint.exceptions`
REPRO003  dict-order-hash       :mod:`~repro.analysis.lint.hashing`
REPRO004  undocumented-raise    :mod:`~repro.analysis.lint.exceptions`
REPRO005  layering              :mod:`~repro.analysis.lint.layering`
REPRO006  kernel-independence   :mod:`~repro.analysis.lint.layering`
REPRO007  raw-clock             :mod:`~repro.analysis.lint.timing`
REPRO008  lock-discipline       :mod:`~repro.analysis.lint.concurrency`
REPRO009  resource-leak         :mod:`~repro.analysis.lint.resources`
REPRO010  thread-shared-state   :mod:`~repro.analysis.lint.concurrency`
REPRO011  exception-flow        :mod:`~repro.analysis.lint.exceptions`
REPRO012  import-layering       :mod:`~repro.analysis.lint.layering`
REPRO013  unused-suppression    stale ``# repro: noqa`` pragma (driver
                                pseudo-rule)
REPRO014  telemetry-name-catalog :mod:`~repro.analysis.lint.telemetry_names`
========= ===================== ==========================================

Findings on a line can be silenced with ``# repro: noqa[REPRO001]`` (see
:mod:`~repro.analysis.lint.pragmas`); pragmas that never fire are
themselves findings.  Run via :func:`run_lint` or
``python -m repro check --lint``; see ``docs/static_analysis.md``.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.analysis.lint import registry
from repro.analysis.lint.context import FileContext, ProjectContext
from repro.analysis.lint.registry import (
    DRIVER,
    Rule,
    all_rules,
    rule_ids,
    select_rules,
)
from repro.analysis.violations import CheckReport

# Registering the driver pseudo-rules first keeps ids sorted == grouped.
registry.register(Rule(
    "REPRO000", "unparseable",
    "a lint root contains a file the parser rejects", scope=DRIVER))
registry.register(Rule(
    "REPRO013", "unused-suppression",
    "a `# repro: noqa` pragma suppressed nothing", scope=DRIVER))

# Rule families register themselves on import.
from repro.analysis.lint import (  # noqa: E402  (registration order)
    concurrency,
    exceptions,
    hashing,
    layering,
    mutability,
    resources,
    telemetry_names,
    timing,
)


def package_root() -> Path:
    """The ``repro`` package directory this lint defends by default."""
    return Path(__file__).resolve().parents[2]


def default_roots() -> List[Path]:
    """Default lint roots: the package plus ``benchmarks/`` when present."""
    roots = [package_root()]
    benchmarks = package_root().parents[1] / "benchmarks"
    if benchmarks.is_dir():
        roots.append(benchmarks)
    return roots


def iter_source_files(paths: Optional[Sequence] = None) -> List[Path]:
    """Resolve ``paths`` (files or directories) to a sorted ``.py`` list."""
    roots = [Path(p) for p in paths] if paths else default_roots()
    files = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            files.append(root)
    return files


def run_lint(paths: Optional[Sequence] = None,
             rules: Optional[Sequence[str]] = None,
             exclude_rules: Optional[Sequence[str]] = None) -> CheckReport:
    """Lint every file under ``paths`` (default: the repro package).

    ``rules``/``exclude_rules`` narrow the run to a subset of rule ids;
    unknown ids raise ValueError (reject a typo, don't run nothing).
    """
    selected = select_rules(rules, exclude_rules)
    report = CheckReport("lint")
    contexts: List[FileContext] = []
    for path in iter_source_files(paths):
        ctx = FileContext.parse(path, report,
                                report_errors="REPRO000" in selected)
        if ctx is None:
            continue
        contexts.append(ctx)
        _run_file_rules(ctx, selected)
    project = ProjectContext(contexts, report)
    for entry in registry.checks(registry.PROJECT, selected):
        entry.check(project)
    for ctx in contexts:
        ctx.flush_unused_suppressions(selected)
    return report


def lint_file(path: Path, report: CheckReport) -> None:
    """Run every file-scope rule over one file (the classic entry point).

    Project-scope rules (REPRO012) need the whole tree and only run via
    :func:`run_lint`.
    """
    ctx = FileContext.parse(path, report)
    if ctx is None:
        return
    selected = set(rule_ids())
    _run_file_rules(ctx, selected)
    ctx.flush_unused_suppressions(selected)


def _run_file_rules(ctx: FileContext, selected: Set[str]) -> None:
    for entry in registry.checks(registry.FILE, selected):
        entry.check(ctx)


__all__ = [
    "all_rules",
    "default_roots",
    "iter_source_files",
    "lint_file",
    "package_root",
    "rule_ids",
    "run_lint",
    "select_rules",
]
