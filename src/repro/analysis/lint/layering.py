"""Layering rules: path-scoped REPRO005/REPRO006 and graph-wide REPRO012.

* **REPRO005 layering** — the query front-ends (``sqldb/sql/``,
  ``nosqldb/cql/``) must not import :mod:`repro.mapping` (parsers sit
  *below* mappers), and ``storage/`` must not import any higher layer
  (dwarf, sqldb, nosqldb, mapping, etl).
* **REPRO006 kernel-independence** — the shared query kernel
  (``repro/query/``) must not import any other ``repro`` subpackage:
  both engines compile their statements *onto* the kernel's operators,
  so an engine import from inside the kernel would make the dependency
  circular and the plan vocabulary engine-specific.  The sole exception
  is :mod:`repro.telemetry`, a stdlib-only leaf that every layer may
  use for metrics and spans.
* **REPRO012 import-layering** — the project-scope generalisation: the
  whole repo-wide import graph must respect the declared layer order in
  :data:`repro.analysis.imports.LAYERS` (top-level imports only —
  function-level lazy imports are the sanctioned way to call *up* the
  stack at runtime) and must contain no top-level import cycles.

REPRO005/REPRO006 stay as cheap per-file rules so linting a single file
still enforces them; REPRO012 subsumes them when the whole tree is
linted.
"""

from __future__ import annotations

import ast
from typing import Iterable, Tuple

from repro.analysis.imports import import_cycles, layering_violations
from repro.analysis.lint.context import FileContext, ProjectContext
from repro.analysis.lint.registry import PROJECT, rule

#: Layering rules: (path fragment, forbidden import prefixes).
_LAYERING = (
    ("/sqldb/sql/", ("repro.mapping",)),
    ("/nosqldb/cql/", ("repro.mapping",)),
    (
        "/storage/",
        ("repro.dwarf", "repro.sqldb", "repro.nosqldb", "repro.mapping",
         "repro.etl"),
    ),
)

_KERNEL_FRAGMENT = "/repro/query/"


def _imported_modules(tree: ast.AST) -> Iterable[Tuple[str, int]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node.lineno
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module:
                yield node.module, node.lineno


@rule("REPRO005", "layering",
      "front-end/storage code imports a layer above it")
def check_layering(ctx: FileContext) -> None:
    for fragment, forbidden in _LAYERING:
        if fragment not in ctx.posix:
            continue
        for module, lineno in _imported_modules(ctx.tree):
            for prefix in forbidden:
                ctx.check(
                    not (module == prefix or module.startswith(prefix + ".")),
                    "REPRO005", lineno,
                    f"layer violation: {fragment.strip('/')} code imports "
                    f"{module} (must stay below {prefix})",
                )


@rule("REPRO006", "kernel-independence",
      "the query kernel imports another repro subpackage")
def check_kernel_independence(ctx: FileContext) -> None:
    if _KERNEL_FRAGMENT not in ctx.posix:
        return
    for module, lineno in _imported_modules(ctx.tree):
        allowed = (
            module == "repro.query" or module.startswith("repro.query.")
            # telemetry is a stdlib-only leaf, importable from any layer
            # without making the kernel engine-specific.
            or module == "repro.telemetry"
            or module.startswith("repro.telemetry.")
        )
        ctx.check(
            allowed or not (module == "repro" or module.startswith("repro.")),
            "REPRO006", lineno,
            f"kernel violation: repro.query imports {module}; the query "
            "kernel must stay engine-agnostic (engines import it, never "
            "the reverse)",
        )


@rule("REPRO012", "import-layering",
      "the repo-wide import graph breaks the declared layer DAG",
      scope=PROJECT)
def check_import_layering(ctx: ProjectContext) -> None:
    graph = ctx.graph
    violations = layering_violations(graph)
    for violation in violations:
        info = graph.modules.get(violation.edge.importer)
        path = info.path if info else None
        if path is None:
            ctx.record()
            continue
        ctx.check(False, "REPRO012", path, violation.edge.lineno,
                  violation.message)
    # One evaluated check per clean top-level edge keeps n_checks an
    # honest measure of graph coverage.
    ctx.record(max(0, len(graph.edges(toplevel_only=True)) - len(violations)))
    for cycle in import_cycles(graph):
        anchor = cycle[0]
        info = graph.modules.get(anchor)
        if info is None:
            ctx.record()
            continue
        lineno = next(
            (edge.lineno for edge in info.edges
             if edge.toplevel and edge.imported in cycle), 1)
        ctx.check(False, "REPRO012", info.path, lineno,
                  "top-level import cycle: " + " -> ".join(cycle) +
                  " -> " + anchor +
                  "; break it with a function-level lazy import")
