"""REPRO003 — dict-iteration-order-dependent hashing in cube code.

In cube-hashing code (``dwarf/``, ``mapping/``, ``analysis/``), feeding
``.keys()``/``.values()``/``.items()`` into ``hash()`` or
``frozenset()`` without ``sorted()`` makes signatures depend on dict
insertion order — exactly the bug the serial/parallel equivalence
checks exist to rule out.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.lint.context import FileContext
from repro.analysis.lint.registry import rule

#: Path fragments (posix) whose files REPRO003 applies to.
_ORDER_SENSITIVE_PARTS = ("/dwarf/", "/mapping/", "/analysis/")


def _view_calls(node: ast.AST) -> Iterable[ast.Call]:
    """``.keys()``/``.values()``/``.items()`` calls in ``node``'s subtree."""
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr in ("keys", "values", "items")
            and not child.args and not child.keywords
        ):
            yield child


@rule("REPRO003", "dict-order-hash",
      "hash()/frozenset() over an unsorted dict view in cube code")
def check_dict_order_hash(ctx: FileContext) -> None:
    if not any(part in ctx.posix for part in _ORDER_SENSITIVE_PARTS):
        return
    sorted_views = set()
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
        ):
            for view in _view_calls(node):
                sorted_views.add(id(view))
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("hash", "frozenset")
        ):
            continue
        ctx.record()
        for view in _view_calls(node):
            if id(view) not in sorted_views:
                ctx.add(
                    "REPRO003", node.lineno,
                    f"{node.func.id}() over a dict .{view.func.attr}() view "
                    "depends on insertion order; wrap the view in sorted() "
                    "so cube signatures are canonical",
                )
