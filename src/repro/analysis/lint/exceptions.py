"""Exception-contract rules: REPRO002, REPRO004 and flow-aware REPRO011.

* **REPRO002 bare-except** — ``except:`` swallows ``KeyboardInterrupt``
  and ``SystemExit`` and hides checker/engine bugs; catch something.
* **REPRO004 undocumented-raise** — public functions of the engine
  packages (``storage/``, ``sqldb/``, ``nosqldb/``, minus the query
  front-ends) must name every error type they directly raise in their
  docstring; callers program against those docstrings.
* **REPRO011 exception-flow** — the CFG-based upgrade of REPRO004: a
  public engine function that calls a *private* same-module helper can
  raise whatever the helper raises on a reachable CFG path.  Those
  propagated error types must be documented too (or caught at the call
  site).  Inference is one helper level deep by design: public helpers
  document their own contracts.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.cfg import FunctionNode
from repro.analysis.lint.context import FileContext
from repro.analysis.lint.registry import rule

#: Suffixes of exception class names REPRO004/REPRO011 require
#: docstrings to name.
_ERROR_SUFFIXES = ("Error", "Exception", "Exists", "Request", "Warning")

#: Handler types treated as catching anything.
_BROAD_HANDLERS = ("Exception", "BaseException")


@rule("REPRO002", "bare-except",
      "bare `except:` swallows KeyboardInterrupt/SystemExit")
def check_bare_except(ctx: FileContext) -> None:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler):
            ctx.check(
                node.type is not None, "REPRO002", node.lineno,
                "bare `except:` swallows KeyboardInterrupt/SystemExit; "
                "catch Exception or something narrower",
            )


# ----------------------------------------------------------------------
# Shared raise-contract helpers
# ----------------------------------------------------------------------
def raise_docs_apply(posix: str) -> bool:
    if "/sql/" in posix or "/cql/" in posix:
        return False
    return any(
        part in posix for part in ("/storage/", "/sqldb/", "/nosqldb/")
    )


def public_functions(tree: ast.Module):
    """Top-level public functions and public methods of top-level classes."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield node
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if not item.name.startswith("_"):
                        yield item


def raised_in(func: ast.AST) -> Iterable[ast.Raise]:
    """Direct ``raise Name(...)``/``raise Name`` statements in ``func``.

    Nested defs are skipped — their raises are not part of the enclosing
    function's visible contract until the closure is called.
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                             ast.ClassDef)):
            continue
        if isinstance(node, ast.Raise):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def error_name(raise_node: ast.Raise) -> Optional[str]:
    exc = raise_node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    name = None
    if isinstance(exc, ast.Name):
        name = exc.id
    elif isinstance(exc, ast.Attribute):
        name = exc.attr
    if name == "NotImplementedError":
        # An abstract-method stub is a contract for implementers, not an
        # error callers of a concrete engine can observe.
        return None
    if name and name.endswith(_ERROR_SUFFIXES):
        return name
    return None


@rule("REPRO004", "undocumented-raise",
      "public engine API raises an error its docstring does not name")
def check_undocumented_raises(ctx: FileContext) -> None:
    if not raise_docs_apply(ctx.posix):
        return
    for func in public_functions(ctx.tree):
        docstring = ast.get_docstring(func) or ""
        for raise_node in raised_in(func):
            name = error_name(raise_node)
            if name is None:
                continue
            ctx.check(
                name in docstring, "REPRO004", raise_node.lineno,
                f"public {func.name}() raises {name} but its docstring "
                "does not mention it; callers program against docstrings",
            )


# ----------------------------------------------------------------------
# REPRO011 — raise-set inference through private helpers
# ----------------------------------------------------------------------
def _reachable_raise_set(ctx: FileContext, func: ast.AST) -> Set[str]:
    """Error names raised on a CFG-reachable path of ``func``.

    CFG-based so a raise in dead code (after an unconditional return)
    does not widen the helper's inferred contract.
    """
    cfg = ctx.cfg(func)
    live_blocks = cfg.reachable()
    names: Set[str] = set()
    for raise_node in raised_in(func):
        block = cfg.block_of(raise_node)
        if block is not None and block not in live_blocks:
            continue
        name = error_name(raise_node)
        if name:
            names.add(name)
    return names


def _private_helpers(tree: ast.Module) -> Dict[Tuple[str, str], ast.AST]:
    """``(scope, name) -> def`` for private module- and class-level helpers.

    Module scope uses ``("", name)``; methods use ``(class_name, name)``.
    """
    helpers: Dict[Tuple[str, str], ast.AST] = {}
    for node in tree.body:
        if isinstance(node, FunctionNode) and node.name.startswith("_"):
            helpers[("", node.name)] = node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if (isinstance(item, FunctionNode)
                        and item.name.startswith("_")
                        and not item.name.startswith("__")):
                    helpers[(node.name, item.name)] = item
    return helpers


def _enclosing_class(tree: ast.Module, func: ast.AST) -> Optional[str]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and func in node.body:
            return node.name
    return None


def _helper_calls(func: ast.AST) -> Iterable[Tuple[ast.Call, str, bool]]:
    """``(call, helper_name, is_method)`` for private-helper call sites."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (*FunctionNode, ast.Lambda, ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Name)
                    and node.func.id.startswith("_")):
                yield node, node.func.id, False
            elif (isinstance(node.func, ast.Attribute)
                  and node.func.attr.startswith("_")
                  and isinstance(node.func.value, ast.Name)
                  and node.func.value.id in ("self", "cls")):
                yield node, node.func.attr, True
        stack.extend(ast.iter_child_nodes(node))


def _caught_names(func: ast.AST, call: ast.Call) -> Set[str]:
    """Exception names caught by ``try`` statements enclosing ``call``."""
    caught: Set[str] = set()

    def handler_names(handler: ast.ExceptHandler) -> Iterable[str]:
        if handler.type is None:
            yield "BaseException"
            return
        types = (handler.type.elts
                 if isinstance(handler.type, ast.Tuple)
                 else [handler.type])
        for node in types:
            if isinstance(node, ast.Name):
                yield node.id
            elif isinstance(node, ast.Attribute):
                yield node.attr

    def walk(node: ast.AST, active: List[ast.Try]) -> bool:
        if node is call:
            for try_node in active:
                for handler in try_node.handlers:
                    caught.update(handler_names(handler))
            return True
        if isinstance(node, (*FunctionNode, ast.Lambda, ast.ClassDef)):
            if node is not func:
                return False
        if isinstance(node, ast.Try):
            for child in node.body + node.orelse:
                if walk(child, active + [node]):
                    return True
            for handler in node.handlers:
                for child in handler.body:
                    if walk(child, active):
                        return True
            for child in node.finalbody:
                if walk(child, active):
                    return True
            return False
        for child in ast.iter_child_nodes(node):
            if walk(child, active):
                return True
        return False

    walk(func, [])
    return caught


@rule("REPRO011", "exception-flow",
      "public engine API propagates an undocumented error via a helper")
def check_exception_flow(ctx: FileContext) -> None:
    if not raise_docs_apply(ctx.posix):
        return
    helpers = _private_helpers(ctx.tree)
    if not helpers:
        return
    raise_sets: Dict[Tuple[str, str], Set[str]] = {}
    for func in public_functions(ctx.tree):
        docstring = ast.get_docstring(func) or ""
        own_class = _enclosing_class(ctx.tree, func)
        for call, helper_name, is_method in _helper_calls(func):
            scope = (own_class or "") if is_method else ""
            helper = helpers.get((scope, helper_name))
            if helper is None:
                continue
            key = (scope, helper_name)
            if key not in raise_sets:
                raise_sets[key] = _reachable_raise_set(ctx, helper)
            propagated = raise_sets[key]
            if not propagated:
                ctx.record()
                continue
            caught = _caught_names(func, call)
            broad = any(name in caught for name in _BROAD_HANDLERS)
            for name in sorted(propagated):
                ctx.check(
                    name in docstring or name in caught or broad,
                    "REPRO011", call.lineno,
                    f"public {func.name}() can raise {name} via "
                    f"{helper_name}() but neither documents nor catches "
                    "it; name it in the docstring or handle it here",
                )
