"""REPRO014 — telemetry names must come from the central catalog.

Every metric family (``registry.counter/gauge/histogram``) and span
(``tracer.span``) carries a name that dashboards, ``repro top``, the
debug-bundle readers and the docs refer to by exact string.  Those
names are declared once, in :mod:`repro.telemetry.catalog`; a literal
name used anywhere else that the catalog does not list is either a typo
(a silently separate time series) or an undocumented signal.  Dynamic
names (non-literal first argument) are out of static reach and skipped.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import FileContext
from repro.analysis.lint.registry import rule
from repro.telemetry.catalog import METRIC_NAMES, SPAN_NAMES

_METRIC_FACTORIES = ("counter", "gauge", "histogram")

#: The telemetry package defines the primitives that accept arbitrary
#: names by design (and the catalog itself lives there).
_TELEMETRY_INTERNAL = "/repro/telemetry/"


@rule("REPRO014", "telemetry-name-catalog",
      "metric/span name not declared in repro.telemetry.catalog")
def check_telemetry_names(ctx: FileContext) -> None:
    if _TELEMETRY_INTERNAL in ctx.posix:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            continue
        attr = node.func.attr
        if attr in _METRIC_FACTORIES:
            ctx.check(
                first.value in METRIC_NAMES, "REPRO014", node.lineno,
                f"metric name {first.value!r} is not declared in "
                "repro.telemetry.catalog.METRIC_NAMES; declare it there "
                "so every exported series is discoverable",
            )
        elif attr == "span":
            ctx.check(
                first.value in SPAN_NAMES, "REPRO014", node.lineno,
                f"span name {first.value!r} is not declared in "
                "repro.telemetry.catalog.SPAN_NAMES; declare it there "
                "so every trace signal is discoverable",
            )
