"""REPRO009 — file handles that may escape a function without close().

A forward-may gen/kill dataflow over *normal* (non-exception) CFG
edges: opening calls (``open``, ``*.open``, ``socket.socket``,
``tempfile.*TemporaryFile``) bound to a local name *gen* a handle fact;
the fact is *killed* when the handle is closed, returned, yielded,
passed to another call, stored into an object, aliased or rebound.  A
fact that survives to the exit block is a handle some non-exceptional
path can drop without closing — the finding points at the ``open``.

Exception edges are deliberately excluded: "leaks only when something
raised" is the job of ``with``-conversion, and flagging every handle
that is live across any call would drown the signal.  An opening call
whose result is neither bound, returned nor managed by ``with`` is
flagged immediately (there is nothing left to close).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, NamedTuple, Optional, Set, Tuple

from repro.analysis.cfg import CFG, FunctionNode, NORMAL
from repro.analysis.dataflow import FactSet, GenKillProblem, solve
from repro.analysis.lint.context import FileContext
from repro.analysis.lint.registry import rule

#: ``module.attr`` constructor attributes that return an OS resource.
_OPEN_ATTRS = ("open", "socket", "NamedTemporaryFile", "TemporaryFile",
               "mkstemp_file", "popen")


def _is_opening_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "open"
    if isinstance(func, ast.Attribute):
        return func.attr in _OPEN_ATTRS
    return False


class Handle(NamedTuple):
    """One possibly-open resource: the bound name and the open() line."""

    name: str
    lineno: int


def _open_binding(stmt: ast.AST) -> Optional[Handle]:
    """``name = open(...)`` (single plain-name target) in this fragment."""
    if (isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and _is_opening_call(stmt.value)):
        return Handle(stmt.targets[0].id, stmt.value.lineno)
    if (isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.value is not None
            and _is_opening_call(stmt.value)):
        return Handle(stmt.target.id, stmt.value.lineno)
    return None


def _escaped_names(stmt: ast.AST) -> Set[str]:
    """Names whose handle this fragment closes or hands off.

    Closing (``f.close()``), returning, yielding, passing as a call
    argument, storing into an attribute/subscript/container, aliasing to
    another name, or ``del`` all end this function's responsibility for
    the handle.  Plain reads (``f.read()``, ``for line in f``) do not.
    """
    out: Set[str] = set()
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in ("close", "detach", "release")
                    and isinstance(func.value, ast.Name)):
                out.add(func.value.id)
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name):
                    out.add(arg.id)
                elif isinstance(arg, ast.Starred) and isinstance(
                        arg.value, ast.Name):
                    out.add(arg.value.id)
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            # `return f` / `yield f` transfers ownership to the caller;
            # `return f.read()` is a read and keeps the leak alive.
            if node.value is not None:
                values = (node.value.elts
                          if isinstance(node.value, (ast.Tuple, ast.List))
                          else [node.value])
                for value in values:
                    if isinstance(value, ast.Name):
                        out.add(value.id)
        elif isinstance(node, ast.Assign):
            # Direct aliasing (`g = f`, `pair = (f, g)`) hands the handle
            # off; a method-call RHS (`data = f.read()`) is just a read.
            values = (node.value.elts
                      if isinstance(node.value, (ast.Tuple, ast.List))
                      else [node.value])
            for value in values:
                if isinstance(value, ast.Name):
                    out.add(value.id)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
    return out


class OpenHandles(GenKillProblem):
    """Forward-may over NORMAL edges: handles possibly open and owned."""

    direction = "forward"
    edge_kinds = (NORMAL,)

    def __init__(self, cfg: CFG) -> None:
        super().__init__()
        self.cfg = cfg
        self._handles_by_name: Dict[str, List[Handle]] = {}
        self._block_gen: Dict[int, Set[Handle]] = {}
        self._block_killed: Dict[int, Set[str]] = {}
        for block in cfg.blocks:
            gen, killed = self._scan(block)
            self._block_gen[block.index] = gen
            self._block_killed[block.index] = killed
            for handle in gen:
                self._handles_by_name.setdefault(handle.name,
                                                 []).append(handle)

    @staticmethod
    def _scan(block) -> Tuple[Set[Handle], Set[str]]:
        opened: Dict[str, Handle] = {}
        killed: Set[str] = set()
        for stmt in block.statements:
            if isinstance(stmt, ast.withitem):
                # `with open(...) as f` is managed; never a fact.
                if stmt.optional_vars is not None:
                    for leaf in ast.walk(stmt.optional_vars):
                        if isinstance(leaf, ast.Name):
                            killed.add(leaf.id)
                            opened.pop(leaf.id, None)
                continue
            for name in _escaped_names(stmt):
                killed.add(name)
                opened.pop(name, None)
            binding = _open_binding(stmt)
            if binding is not None:
                killed.add(binding.name)  # rebind ends the old handle
                opened[binding.name] = binding
        return set(opened.values()), killed

    def gen(self, block) -> FactSet:
        return frozenset(self._block_gen[block.index])

    def kill(self, block) -> FactSet:
        killed = set()
        for name in self._block_killed[block.index]:
            killed.update(self._handles_by_name.get(name, ()))
        return frozenset(killed) - frozenset(self._block_gen[block.index])

    def any_handles(self) -> bool:
        return bool(self._handles_by_name)


def _unmanaged_open_calls(func: ast.AST) -> Iterable[ast.Call]:
    """Opening calls whose handle is neither bound, returned nor with-managed."""

    def visit(node: ast.AST, managed: bool) -> Iterable[ast.Call]:
        if isinstance(node, (*FunctionNode, ast.Lambda, ast.ClassDef)):
            if node is not func:
                return
        for child in ast.iter_child_nodes(node):
            child_managed = managed
            if _is_opening_call(child):
                if isinstance(node, ast.Assign) and child is node.value:
                    child_managed = True
                elif isinstance(node, ast.AnnAssign) and child is node.value:
                    child_managed = True
                elif isinstance(node, ast.withitem) and (
                        child is node.context_expr):
                    child_managed = True
                elif isinstance(node, (ast.Return, ast.Yield)) and (
                        child is node.value):
                    child_managed = True
                elif isinstance(node, ast.Call) and (
                        child in node.args
                        or child in [kw.value for kw in node.keywords]):
                    child_managed = True
                if not child_managed:
                    yield child
                    child_managed = True
            yield from visit(child, child_managed)

    yield from visit(func, False)


@rule("REPRO009", "resource-leak",
      "an opened handle can reach the function exit without close()")
def check_resource_leaks(ctx: FileContext) -> None:
    for func in ast.walk(ctx.tree):
        if not isinstance(func, FunctionNode):
            continue
        for call in _unmanaged_open_calls(func):
            ctx.check(
                False, "REPRO009", call.lineno,
                f"{func.name}() opens a handle and discards it; bind it, "
                "use `with`, or return it",
            )
        cfg = ctx.cfg(func)
        problem = OpenHandles(cfg)
        if not problem.any_handles():
            ctx.record()
            continue
        facts = solve(cfg, problem)
        leaked = sorted(facts[cfg.exit.index].in_facts,
                        key=lambda h: (h.lineno, h.name))
        reported: Set[Handle] = set()
        for handle in leaked:
            if handle in reported:
                continue
            reported.add(handle)
            ctx.check(
                False, "REPRO009", handle.lineno,
                f"{func.name}() opens {handle.name} here but some path "
                "reaches the end of the function without closing it; use "
                "`with` or close() on every path",
            )
        ctx.record()
