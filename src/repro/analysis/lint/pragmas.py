"""``# repro: noqa[REPROxxx]`` suppression pragmas.

A pragma on a line suppresses matching findings *on that exact line*:

* ``# repro: noqa[REPRO001]`` — one rule;
* ``# repro: noqa[REPRO001,REPRO009]`` — several;
* ``# repro: noqa`` — every rule (use sparingly; the unused-suppression
  check cannot tell which rule a bare pragma was meant for).

Pragmas are read from real COMMENT tokens (``tokenize``), so the text
inside a string literal never suppresses anything.  Every pragma is
tracked: ids that never suppressed a finding are reported as REPRO013
*unused-suppression* so stale pragmas cannot silently disable future
findings.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, List, Set, Tuple

#: Matches the pragma inside one comment token.
_PRAGMA = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>[A-Za-z0-9_,\s]+)\])?")

#: Pseudo-id recorded for a bare (id-less) noqa pragma.
ALL = "*"


class Suppressions:
    """The pragma table of one file, with per-id usage tracking."""

    __slots__ = ("_by_line", "_used")

    def __init__(self) -> None:
        self._by_line: Dict[int, Set[str]] = {}
        self._used: Set[Tuple[int, str]] = set()

    # ------------------------------------------------------------------
    def add(self, lineno: int, rule_id: str) -> None:
        self._by_line.setdefault(lineno, set()).add(rule_id)

    def suppressed(self, rule_id: str, lineno: int) -> bool:
        """True (and marks the pragma used) when a pragma covers this."""
        ids = self._by_line.get(lineno)
        if not ids:
            return False
        if rule_id in ids:
            self._used.add((lineno, rule_id))
            return True
        if ALL in ids:
            self._used.add((lineno, ALL))
            return True
        return False

    def unused(self, selected: Set[str]) -> List[Tuple[int, str]]:
        """``(lineno, id)`` pragmas that never fired.

        Only pragmas for rules in ``selected`` count — running with a
        ``--rules`` subset must not flag pragmas for rules that did not
        run.  Bare pragmas (``*``) count only when every rule ran.
        """
        out = []
        all_ran = self._all_selected(selected)
        for lineno in sorted(self._by_line):
            for rule_id in sorted(self._by_line[lineno]):
                if (lineno, rule_id) in self._used:
                    continue
                if rule_id == ALL:
                    if all_ran:
                        out.append((lineno, rule_id))
                elif rule_id in selected:
                    out.append((lineno, rule_id))
        return out

    @staticmethod
    def _all_selected(selected: Set[str]) -> bool:
        from repro.analysis.lint.registry import rule_ids

        return selected >= set(rule_ids())

    def __bool__(self) -> bool:
        return bool(self._by_line)


def parse_suppressions(source: str) -> Suppressions:
    """Extract every pragma from ``source``'s comment tokens."""
    table = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return table
    for lineno, text in comments:
        match = _PRAGMA.search(text)
        if not match:
            continue
        ids = match.group("ids")
        if ids is None:
            table.add(lineno, ALL)
        else:
            for rule_id in ids.split(","):
                rule_id = rule_id.strip()
                if rule_id:
                    table.add(lineno, rule_id)
    return table


__all__ = ["ALL", "Suppressions", "parse_suppressions"]
