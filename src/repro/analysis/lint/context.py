"""Per-file and per-project state handed to lint rule checks.

A :class:`FileContext` owns one parsed module: its AST, source, display
path, suppression table and a memoised CFG cache so several flow-aware
rules share one graph per function.  A :class:`ProjectContext` wraps the
full set of parsed files plus the lazily-built import graph for
project-scope rules (REPRO012).

All finding traffic goes through ``ctx.check``/``ctx.add`` — that is
where ``# repro: noqa`` suppression is applied, so individual rules
never need to know pragmas exist.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.imports import ImportGraph, graph_from_trees
from repro.analysis.lint.pragmas import Suppressions, parse_suppressions
from repro.analysis.violations import CheckReport

_CHECKER = "lint"


def display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


class FileContext:
    """One successfully parsed file plus everything rules need on it."""

    __slots__ = ("path", "posix", "display", "tree", "source", "report",
                 "suppressions", "_cfgs")

    def __init__(self, path: Path, tree: ast.Module, source: str,
                 report: CheckReport,
                 suppressions: Optional[Suppressions] = None) -> None:
        self.path = path
        self.posix = path.resolve().as_posix()
        self.display = display_path(path)
        self.tree = tree
        self.source = source
        self.report = report
        self.suppressions = (parse_suppressions(source)
                             if suppressions is None else suppressions)
        self._cfgs: Dict[int, CFG] = {}

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, path: Path, report: CheckReport,
              report_errors: bool = True) -> Optional["FileContext"]:
        """Parse ``path``; on failure record REPRO000 and return None.

        The parse itself counts as one evaluated check, so a run over
        broken files is never indistinguishable from a clean run in
        ``report.summary()``.  With ``report_errors=False`` (REPRO000
        deselected) the failure is counted but not reported.
        """
        location = display_path(path)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            if report_errors:
                report.check(False, _CHECKER, "REPRO000", location,
                             f"unparseable: {exc}")
            else:
                report.record()
            return None
        report.record()
        return cls(path, tree, source, report)

    # ------------------------------------------------------------------
    def add(self, rule_id: str, lineno: int, message: str) -> None:
        """Record one finding unless a pragma on its line suppresses it."""
        if self.suppressions.suppressed(rule_id, lineno):
            return
        self.report.add(_CHECKER, rule_id, f"{self.display}:{lineno}",
                        message)

    def check(self, condition: bool, rule_id: str, lineno: int,
              message: str) -> bool:
        """Count one invariant evaluation; record a finding on failure."""
        self.report.record()
        if not condition:
            self.add(rule_id, lineno, message)
        return condition

    def record(self, n: int = 1) -> None:
        self.report.record(n)

    # ------------------------------------------------------------------
    def cfg(self, func: ast.AST) -> CFG:
        """The (memoised) CFG of one function node in this file."""
        cached = self._cfgs.get(id(func))
        if cached is None:
            cached = self._cfgs[id(func)] = build_cfg(func)
        return cached

    def flush_unused_suppressions(self, selected) -> None:
        """Emit REPRO013 for pragmas that never matched a finding."""
        if "REPRO013" not in selected:
            return
        for lineno, rule_id in self.suppressions.unused(selected):
            label = ("any rule" if rule_id == "*" else rule_id)
            self.report.check(
                False, _CHECKER, "REPRO013", f"{self.display}:{lineno}",
                f"unused suppression: no {label} finding on this line; "
                "remove the stale `# repro: noqa` pragma")


class ProjectContext:
    """Cross-file state for project-scope rules."""

    __slots__ = ("files", "report", "_graph", "_by_path")

    def __init__(self, files: List[FileContext],
                 report: CheckReport) -> None:
        self.files = files
        self.report = report
        self._graph: Optional[ImportGraph] = None
        self._by_path: Optional[Dict[str, FileContext]] = None

    @property
    def graph(self) -> ImportGraph:
        """The import graph over every parsed file (built once)."""
        if self._graph is None:
            self._graph = graph_from_trees(
                [(ctx.path, ctx.tree) for ctx in self.files])
        return self._graph

    def context_for(self, path: Path) -> Optional[FileContext]:
        if self._by_path is None:
            self._by_path = {ctx.posix: ctx for ctx in self.files}
        return self._by_path.get(path.resolve().as_posix())

    # ------------------------------------------------------------------
    def check(self, condition: bool, rule_id: str, path: Path, lineno: int,
              message: str) -> bool:
        """Like :meth:`FileContext.check`, routed through the right
        file's suppression table (project findings are suppressible on
        the offending line, e.g. an import)."""
        ctx = self.context_for(path)
        if ctx is not None:
            return ctx.check(condition, rule_id, lineno, message)
        self.report.record()
        if not condition:
            self.report.add(_CHECKER, rule_id,
                            f"{display_path(path)}:{lineno}", message)
        return condition

    def record(self, n: int = 1) -> None:
        self.report.record(n)


__all__ = ["FileContext", "ProjectContext", "display_path"]
