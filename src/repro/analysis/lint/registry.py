"""The rule registry: one :class:`Rule` per REPROxxx identifier.

Rule families register themselves at import time via the :func:`rule`
decorator; the driver in :mod:`repro.analysis.lint` asks the registry
which checks to run, the CLI validates ``--rules``/``--exclude-rules``
against it, and the SARIF emitter reads it for tool metadata.  Two
pseudo-rules (REPRO000 parse failure, REPRO013 unused suppression) have
no check function — the driver itself emits them — but are registered
so selection and SARIF metadata treat them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Set

#: Rule scopes.
FILE = "file"        # check(FileContext), once per parsed file
PROJECT = "project"  # check(ProjectContext), once per run
DRIVER = "driver"    # emitted by the driver itself, no check function


@dataclass(frozen=True)
class Rule:
    """Metadata of one lint rule."""

    id: str
    name: str
    summary: str
    scope: str = FILE


class RegisteredRule(NamedTuple):
    rule: Rule
    check: Optional[Callable]


_REGISTRY: Dict[str, RegisteredRule] = {}


def register(rule_meta: Rule, check: Optional[Callable] = None) -> None:
    if rule_meta.id in _REGISTRY:
        raise ValueError(f"duplicate lint rule id {rule_meta.id!r}")
    if rule_meta.scope not in (FILE, PROJECT, DRIVER):
        raise ValueError(f"unknown rule scope {rule_meta.scope!r}")
    if (check is None) != (rule_meta.scope == DRIVER):
        raise ValueError(
            f"rule {rule_meta.id}: driver rules have no check function, "
            "file/project rules need one")
    _REGISTRY[rule_meta.id] = RegisteredRule(rule_meta, check)


def rule(id: str, name: str, summary: str, scope: str = FILE) -> Callable:
    """Decorator: ``@rule("REPRO001", "mutable-default", "...")``."""

    def decorate(check: Callable) -> Callable:
        register(Rule(id, name, summary, scope), check)
        return check

    return decorate


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id."""
    return [entry.rule for _, entry in sorted(_REGISTRY.items())]


def get_rule(rule_id: str) -> Rule:
    """Metadata for one id.  Raises KeyError for unknown ids."""
    return _REGISTRY[rule_id].rule


def rule_ids() -> List[str]:
    return sorted(_REGISTRY)


def checks(scope: str, selected: Optional[Set[str]] = None
           ) -> List[RegisteredRule]:
    """Registered checks of ``scope``, filtered to ``selected`` ids."""
    out = []
    for rule_id in sorted(_REGISTRY):
        entry = _REGISTRY[rule_id]
        if entry.rule.scope != scope:
            continue
        if selected is not None and rule_id not in selected:
            continue
        out.append(entry)
    return out


def select_rules(include: Optional[Sequence[str]] = None,
                 exclude: Optional[Sequence[str]] = None) -> Set[str]:
    """Resolve ``--rules``/``--exclude-rules`` to a set of rule ids.

    Raises ValueError naming every unknown id so the CLI can reject a
    typo'd selection instead of silently running nothing.
    """
    known = set(_REGISTRY)
    unknown = [rule_id for rule_id in (*(include or ()), *(exclude or ()))
               if rule_id not in known]
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {', '.join(sorted(set(unknown)))}; "
            f"known: {', '.join(sorted(known))}")
    selected = set(include) if include else set(known)
    if exclude:
        selected -= set(exclude)
    return selected


__all__ = [
    "DRIVER",
    "FILE",
    "PROJECT",
    "RegisteredRule",
    "Rule",
    "all_rules",
    "checks",
    "get_rule",
    "register",
    "rule",
    "rule_ids",
    "select_rules",
]
