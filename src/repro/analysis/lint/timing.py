"""REPRO007 — raw clock calls outside telemetry/benchmark helpers.

``time.perf_counter`` may only be called inside ``repro/telemetry/``
and ``benchmarks/_timing.py``; everything else must time through
telemetry spans or the shared benchmark helpers so measurements stay
comparable and trace-aware.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import FileContext
from repro.analysis.lint.registry import rule

#: Path fragments where calling ``time.perf_counter`` directly is fine.
_RAW_CLOCK_ALLOWED_PARTS = ("/repro/telemetry/", "/benchmarks/_timing.py")


@rule("REPRO007", "raw-clock",
      "time.perf_counter() outside telemetry/benchmark helpers")
def check_raw_clock(ctx: FileContext) -> None:
    if any(part in ctx.posix for part in _RAW_CLOCK_ALLOWED_PARTS):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        direct = (
            isinstance(func, ast.Attribute)
            and func.attr == "perf_counter"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        )
        bare = isinstance(func, ast.Name) and func.id == "perf_counter"
        ctx.check(
            not (direct or bare), "REPRO007", node.lineno,
            "raw time.perf_counter() call; time through repro.telemetry "
            "spans (or benchmarks/_timing.py helpers) so measurements "
            "stay comparable and trace-aware",
        )
