"""SARIF 2.1.0 output for ``repro check`` findings.

One run object: the tool section lists every registered lint rule (so
viewers can show rule metadata for ids that produced no findings this
run), each violation becomes a ``result`` with a physical location, and
— when a baseline was applied — ``baselineState`` distinguishes new
findings from accepted ones.  Only stdlib ``json`` is involved; the
schema reference lets downstream uploaders (GitHub code scanning, VS
Code SARIF viewer) validate and render the file.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Set

from repro.analysis.violations import CheckReport, Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: repro check findings are warnings at most — the exit code, not the
#: per-result level, is what gates CI.
_LEVEL = "warning"


def _location(violation: Violation) -> Dict[str, Any]:
    path, sep, line = violation.location.rpartition(":")
    uri, start_line = (path, int(line)) if sep and line.isdigit() else (
        violation.location, 1)
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": uri},
            "region": {"startLine": max(1, start_line)},
        }
    }


def _tool_rules() -> List[Dict[str, Any]]:
    from repro.analysis.lint.registry import all_rules

    return [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
        }
        for rule in all_rules()
    ]


def sarif_report(report: CheckReport,
                 new: Optional[Set[int]] = None) -> Dict[str, Any]:
    """Build the SARIF document for ``report`` as a plain dict.

    ``new`` holds ``id()``s of the violations a baseline did *not*
    cover; when given, every result carries a ``baselineState`` of
    either ``"new"`` or ``"unchanged"``.
    """
    rules = _tool_rules()
    rule_index = {entry["id"]: i for i, entry in enumerate(rules)}
    results: List[Dict[str, Any]] = []
    for violation in report.violations:
        result: Dict[str, Any] = {
            "ruleId": violation.rule,
            "level": _LEVEL,
            "message": {"text": violation.message},
            "locations": [_location(violation)],
            "properties": {"checker": violation.checker},
        }
        if violation.rule in rule_index:
            result["ruleIndex"] = rule_index[violation.rule]
        if new is not None:
            result["baselineState"] = (
                "new" if id(violation) in new else "unchanged")
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def sarif_dumps(report: CheckReport,
                new: Optional[Set[int]] = None) -> str:
    """The SARIF document as a JSON string (two-space indent)."""
    return json.dumps(sarif_report(report, new), indent=2) + "\n"


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "sarif_dumps", "sarif_report"]
