"""The :class:`CheckRunner` facade and the ``REPRO_CHECK=1`` hook body.

One entry point for every invariant checker: callers hand over a cube, a
B-tree, an SSTable, a column family or a relational table and the runner
dispatches to the matching checker.  The runtime hooks in the DWARF
builders and both engine sessions call :func:`runtime_check`, which adds
the raise-on-violation policy the sanitizer mode wants.

Engine modules are imported lazily inside the dispatch table so that
importing :mod:`repro.analysis` never drags in (or cycles with) the
engines themselves.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.analysis.flags import checks_enabled
from repro.analysis.violations import CheckReport


class CheckRunner:
    """Dispatch facade over every runtime invariant checker.

    ``runner.check(obj)`` picks the checker matching ``obj``'s type and
    returns its :class:`CheckReport`; :meth:`check_all` folds several
    targets into one report.  Raises :class:`TypeError` for objects no
    checker covers.
    """

    def _dispatch(self) -> List[Tuple[type, Callable[[object], CheckReport]]]:
        from repro.analysis.btree_check import btree_check
        from repro.analysis.dwarf_check import dwarf_check
        from repro.analysis.heap_check import heap_check
        from repro.analysis.sstable_check import columnfamily_check, sstable_check
        from repro.dwarf.cube import DwarfCube
        from repro.nosqldb.columnfamily import ColumnFamily
        from repro.nosqldb.sstable import SSTable
        from repro.sqldb.table import Table
        from repro.storage.btree import BTree

        return [
            (DwarfCube, dwarf_check),
            (BTree, btree_check),
            (SSTable, sstable_check),
            (ColumnFamily, columnfamily_check),
            (Table, heap_check),
        ]

    def check(self, target: object, **checker_kwargs) -> CheckReport:
        """Run the checker matching ``target``'s type.

        Extra keyword arguments are forwarded to the matched checker
        (e.g. ``coalesce=False`` for an uncoalesced ablation cube).
        Raises :class:`TypeError` when no checker covers the type.
        """
        for cls, checker in self._dispatch():
            if isinstance(target, cls):
                return checker(target, **checker_kwargs)
        raise TypeError(
            f"no invariant checker for {type(target).__name__}; checkable: "
            "DwarfCube, BTree, SSTable, ColumnFamily, sqldb Table"
        )

    def check_all(self, targets, name: str = "check_all") -> CheckReport:
        """Check every target, merged into one report."""
        report = CheckReport(name)
        for target in targets:
            report.merge(self.check(target))
        return report


#: Shared runner used by the runtime hooks.
_RUNNER = CheckRunner()


def runtime_check(
    target: object, label: Optional[str] = None, **checker_kwargs
) -> Optional[CheckReport]:
    """The ``REPRO_CHECK=1`` hook body: check ``target``, raise if broken.

    Returns None without doing anything when checking is disabled, so
    hook sites can call it unconditionally after a cheap
    :func:`~repro.analysis.flags.checks_enabled` guard (or rely on this
    one).  Extra keyword arguments reach the dispatched checker.  Raises
    :class:`InvariantViolationError` on any violation.
    """
    if not checks_enabled():
        return None
    report = _RUNNER.check(target, **checker_kwargs)
    if label:
        report.name = f"{report.name} <- {label}"
    report.raise_if_violations()
    return report
