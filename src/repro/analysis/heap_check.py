"""Runtime invariant checker for relational (sqldb) tables.

The "heap" of the MySQL-style engine is a clustered B-tree: rows live in
the leaves keyed by primary key (DESIGN.md "SQL engine", paper §5.1).
Beyond delegating the page-level structure to
:func:`~repro.analysis.btree_check.btree_check`, this checker verifies
the relational layer's own promises:

* **Row accounting** — ``len(table)`` equals the clustered tree's entry
  count (the dirty-page flush heuristic and ``size_bytes`` both scale
  with it).
* **Key faithfulness** — every stored row decodes to a primary key equal
  to the clustered key it is filed under.
* **Codec round-trip** — decoding then re-encoding a stored row
  reproduces the stored bytes (null bitmap included).
* **Constraint integrity** — NOT NULL columns hold values in every
  stored row.
* **Secondary-index ↔ heap agreement** — each secondary tree holds
  exactly the ``(value, pk)`` pairs derivable from the clustered rows.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.analysis.btree_check import btree_check
from repro.analysis.violations import CheckReport
from repro.sqldb.table import Table

_CHECKER = "heap"


def heap_check(table: Table) -> CheckReport:
    """Check every structural invariant of one sqldb table; never raises."""
    report = CheckReport(f"heap_check[{table.name}]")
    report.merge(btree_check(table._clustered, name=f"{table.name}/clustered"))

    expected: Dict[str, Set[Tuple[object, object]]] = {
        column: set() for column in table._secondary
    }
    not_null = [
        column for column in table.columns
        if column.not_null and column.name not in table.primary_key
    ]
    n_rows = 0
    for pk, encoded in table._clustered.items():
        n_rows += 1
        location = f"{table.name}[{pk!r}]"
        try:
            row = table.decode_row(encoded)
        except Exception as exc:
            report.add(
                _CHECKER, "heap.corrupt-row", location,
                f"stored row failed to decode: {type(exc).__name__}: {exc}",
            )
            continue
        try:
            derived = table._pk_of(row)
        except Exception:
            derived = None
        report.check(
            derived == pk, _CHECKER, "heap.pk-agreement", location,
            f"row decodes to primary key {derived!r}, filed under {pk!r}",
        )
        report.check(
            table.encode_row(row) == encoded, _CHECKER, "heap.row-codec",
            location,
            "row does not re-encode to its stored bytes (codec round-trip)",
        )
        for column in not_null:
            report.check(
                row.get(column.name) is not None, _CHECKER, "heap.not-null",
                location, f"NOT NULL column {column.name!r} stores NULL",
            )
        for column_name in expected:
            value = row.get(column_name)
            if value is not None:
                expected[column_name].add((value, pk))

    report.check(
        n_rows == len(table), _CHECKER, "heap.row-count", table.name,
        f"table reports {len(table)} rows, clustered tree holds {n_rows}",
    )

    for column_name, tree in table._secondary.items():
        location = f"{table.name}/index[{column_name}]"
        report.merge(btree_check(tree, name=location))
        actual = set(tree.keys())
        missing = expected[column_name] - actual
        extra = actual - expected[column_name]
        report.check(
            not missing, _CHECKER, "heap.index-agreement", location,
            f"{len(missing)} clustered row(s) missing from the index, e.g. "
            f"{_example(missing)}",
        )
        report.check(
            not extra, _CHECKER, "heap.index-agreement", location,
            f"{len(extra)} index entrie(s) with no matching clustered row, "
            f"e.g. {_example(extra)}",
        )
    return report


def _example(entries: Set) -> str:
    return repr(next(iter(entries))) if entries else "-"
