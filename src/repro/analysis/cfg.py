"""Per-function control-flow graphs built from stdlib ``ast``.

:func:`build_cfg` turns one ``FunctionDef`` into a :class:`CFG` of
:class:`BasicBlock` nodes covering the control constructs the lint rules
care about: ``if``/``elif``/``else``, ``while``/``for`` (with ``break``,
``continue`` and ``else``), ``try``/``except``/``else``/``finally``,
``with``, ``match``, early ``return`` and ``raise``.  The graph is the
substrate for the flow-aware REPRO rules (docs/static_analysis.md) and
for the generic solver in :mod:`repro.analysis.dataflow`.

Design points
-------------
* **Edge kinds.**  Every edge is labelled :data:`NORMAL`, :data:`EXCEPT`
  (flow into an exception handler, or exception propagation out of the
  function) or :data:`BACK` (a loop back edge).  May-analyses that only
  care about non-exceptional completion (the resource-leak rule) filter
  on the kind.
* **Exceptions are conservative.**  Every block created inside a ``try``
  body gets an :data:`EXCEPT` edge to each of its handlers — any
  statement may raise.  ``finally`` bodies are on every path out of
  their ``try``: abrupt exits (``return``/``break``/``continue``/
  ``raise``) are routed *through* the finally block to their real
  target, including through nested ``finally`` chains.
* **Block statements are flat.**  A block's ``statements`` hold simple
  statements plus the evaluated fragments of compound headers (an
  ``if``/``while`` test expression, a ``For`` node for its
  target-binding header, ``withitem`` nodes for context entry).  Bodies
  of compound statements always live in *other* blocks, so a dataflow
  transfer function never sees nested statement lists.
* **``with`` contexts are block attributes.**  Each block carries the
  dotted source text of every enclosing ``with`` context expression
  (``('self._lock',)`` inside ``with self._lock:``).  Because a ``with``
  body is lexically scoped, every block it generates is dominated by the
  context entry — this is what the lock-discipline rule reads.

:func:`dominators` computes the classic iterative dominator sets for
guard analyses that need more than lexical ``with`` scoping.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Set, Tuple

#: Edge kinds.
NORMAL = "normal"
EXCEPT = "except"
BACK = "back"

FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


class Edge(NamedTuple):
    """One directed CFG edge."""

    target: "BasicBlock"
    kind: str


class BasicBlock:
    """A straight-line run of statements with labelled out-edges."""

    __slots__ = ("index", "label", "statements", "edges", "preds",
                 "with_contexts")

    def __init__(self, index: int, label: str,
                 with_contexts: Tuple[str, ...] = ()) -> None:
        self.index = index
        self.label = label
        self.statements: List[ast.AST] = []
        self.edges: List[Edge] = []
        self.preds: List["BasicBlock"] = []
        self.with_contexts = with_contexts

    # ------------------------------------------------------------------
    def add_edge(self, target: "BasicBlock", kind: str = NORMAL) -> None:
        for edge in self.edges:
            if edge.target is target and edge.kind == kind:
                return
        self.edges.append(Edge(target, kind))
        target.preds.append(self)

    def successors(self, kinds: Optional[Iterable[str]] = None
                   ) -> List["BasicBlock"]:
        if kinds is None:
            return [edge.target for edge in self.edges]
        allowed = set(kinds)
        return [edge.target for edge in self.edges if edge.kind in allowed]

    def describe(self) -> str:
        """``B2 loop.body(1) -> B1(back), B3`` — one stable line per block."""
        outs = []
        for edge in self.edges:
            suffix = "" if edge.kind == NORMAL else f"({edge.kind})"
            outs.append(f"B{edge.target.index}{suffix}")
        arrow = " -> " + ", ".join(outs) if outs else ""
        return f"B{self.index} {self.label}({len(self.statements)}){arrow}"

    def __repr__(self) -> str:
        return f"<BasicBlock B{self.index} {self.label}>"


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks: List[BasicBlock] = []
        self.entry = self.new_block("entry")
        self.exit = self.new_block("exit")
        self._node_block: Dict[int, BasicBlock] = {}

    # ------------------------------------------------------------------
    def new_block(self, label: str,
                  with_contexts: Tuple[str, ...] = ()) -> BasicBlock:
        block = BasicBlock(len(self.blocks), label, with_contexts)
        self.blocks.append(block)
        return block

    def block_of(self, node: ast.AST) -> Optional[BasicBlock]:
        """The block whose evaluation covers ``node`` (None if unmapped)."""
        return self._node_block.get(id(node))

    def reachable(self, kinds: Optional[Iterable[str]] = None
                  ) -> Set[BasicBlock]:
        """Blocks reachable from the entry along edges of ``kinds``."""
        seen: Set[BasicBlock] = set()
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block in seen:
                continue
            seen.add(block)
            stack.extend(b for b in block.successors(kinds) if b not in seen)
        return seen

    def describe(self) -> str:
        """A stable multi-line rendering for golden tests."""
        return "\n".join(block.describe() for block in self.blocks)

    def __repr__(self) -> str:
        return f"CFG({self.name!r}, {len(self.blocks)} blocks)"


def dotted_name(node: ast.AST) -> Optional[str]:
    """``self._lock`` / ``threading.Lock`` as source-ish dotted text.

    Calls render with a ``()`` suffix (``self._pool.get()``); anything
    unresolvable (subscripts, literals) returns None.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    if isinstance(node, ast.Call):
        base = dotted_name(node.func)
        return f"{base}()" if base else None
    return None


class _FinallyFrame:
    """One active ``finally`` body plus the continuations routed through it."""

    __slots__ = ("block", "loop_depth", "pending", "entered")

    def __init__(self, block: BasicBlock, loop_depth: int) -> None:
        self.block = block
        self.loop_depth = loop_depth
        #: (target block, edge kind) pairs the finally must forward to.
        self.pending: List[Tuple[BasicBlock, str]] = []
        self.entered = False  # any abrupt edge routed into this finally


class _TryFrame:
    """Exception-routing context of one ``try`` statement."""

    __slots__ = ("handlers", "finally_frame")

    def __init__(self, handlers: List[BasicBlock],
                 finally_frame: Optional[_FinallyFrame]) -> None:
        self.handlers = handlers
        self.finally_frame = finally_frame


class _Builder:
    def __init__(self) -> None:
        self.cfg: Optional[CFG] = None
        self.current: Optional[BasicBlock] = None
        #: (header, after) per active loop.
        self.loops: List[Tuple[BasicBlock, BasicBlock]] = []
        self.tries: List[_TryFrame] = []
        self.finallies: List[_FinallyFrame] = []
        self.with_stack: List[str] = []

    # -- plumbing ------------------------------------------------------
    def _contexts(self) -> Tuple[str, ...]:
        return tuple(self.with_stack)

    def _new_block(self, label: str) -> BasicBlock:
        return self.cfg.new_block(label, self._contexts())

    def _ensure_block(self, label: str = "unreachable") -> BasicBlock:
        if self.current is None:
            self.current = self._new_block(label)
        return self.current

    def _append(self, node: ast.AST, *, deep: bool = True) -> None:
        block = self._ensure_block()
        block.statements.append(node)
        if deep:
            for child in ast.walk(node):
                self.cfg._node_block[id(child)] = block
        else:
            self.cfg._node_block[id(node)] = block

    # -- abrupt-exit routing -------------------------------------------
    def _route_through_finallies(self, frames: List[_FinallyFrame],
                                 target: BasicBlock, kind: str) -> None:
        """Connect ``self.current`` to ``target`` via a finally chain."""
        if not frames:
            self.current.add_edge(target, kind)
            return
        self.current.add_edge(frames[0].block, NORMAL)
        for frame, nxt in zip(frames, frames[1:]):
            frame.entered = True
            frame.pending.append((nxt.block, NORMAL))
        frames[0].entered = True
        frames[-1].entered = True
        frames[-1].pending.append((target, kind))

    def _do_return(self) -> None:
        frames = list(reversed(self.finallies))
        self._route_through_finallies(frames, self.cfg.exit, NORMAL)

    def _do_loop_jump(self, target: BasicBlock, kind: str) -> None:
        depth = len(self.loops)
        frames = [f for f in reversed(self.finallies) if f.loop_depth >= depth]
        self._route_through_finallies(frames, target, kind)

    def _do_raise(self) -> None:
        """Edge(s) for a ``raise``: innermost handlers, else finally chain."""
        frames: List[_FinallyFrame] = []
        for frame in reversed(self.tries):
            if frame.handlers:
                if frames:
                    self._route_through_finallies(
                        frames, frame.handlers[0], EXCEPT)
                    for handler in frame.handlers[1:]:
                        frames[-1].pending.append((handler, EXCEPT))
                else:
                    for handler in frame.handlers:
                        self.current.add_edge(handler, EXCEPT)
                return
            if frame.finally_frame is not None:
                frames.append(frame.finally_frame)
        self._route_through_finallies(frames, self.cfg.exit, EXCEPT)

    # -- construction --------------------------------------------------
    def build(self, func: ast.AST) -> CFG:
        self.cfg = CFG(getattr(func, "name", "<lambda>"))
        self.current = self.cfg.entry
        self._visit_body(func.body)
        if self.current is not None:
            self.current.add_edge(self.cfg.exit, NORMAL)
        return self.cfg

    def _visit_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._visit(stmt)

    def _visit(self, stmt: ast.stmt) -> None:
        handler = getattr(self, f"_visit_{type(stmt).__name__}", None)
        if handler is not None:
            handler(stmt)
            return
        # Nested defs/classes are opaque single statements: their bodies
        # have their own CFGs and their own dataflow.
        self._append(stmt, deep=not isinstance(stmt, (*FunctionNode,
                                                      ast.ClassDef)))

    # -- straight-line exits -------------------------------------------
    def _visit_Return(self, stmt: ast.Return) -> None:
        self._append(stmt)
        self._do_return()
        self.current = None

    def _visit_Raise(self, stmt: ast.Raise) -> None:
        self._append(stmt)
        self._do_raise()
        self.current = None

    def _visit_Break(self, stmt: ast.Break) -> None:
        self._append(stmt)
        if self.loops:
            self._do_loop_jump(self.loops[-1][1], NORMAL)
        self.current = None

    def _visit_Continue(self, stmt: ast.Continue) -> None:
        self._append(stmt)
        if self.loops:
            self._do_loop_jump(self.loops[-1][0], BACK)
        self.current = None

    # -- branches ------------------------------------------------------
    def _visit_If(self, stmt: ast.If) -> None:
        cond = self._ensure_block()
        cond.statements.append(stmt.test)
        for child in ast.walk(stmt.test):
            self.cfg._node_block[id(child)] = cond
        then_block = self._new_block("if.then")
        cond.add_edge(then_block, NORMAL)
        self.current = then_block
        self._visit_body(stmt.body)
        then_end = self.current

        else_end = cond
        if stmt.orelse:
            else_block = self._new_block("if.else")
            cond.add_edge(else_block, NORMAL)
            self.current = else_block
            self._visit_body(stmt.orelse)
            else_end = self.current

        if then_end is None and else_end is None:
            self.current = None
            return
        join = self._new_block("if.join")
        if stmt.orelse:
            if else_end is not None:
                else_end.add_edge(join, NORMAL)
        else:
            cond.add_edge(join, NORMAL)
        if then_end is not None:
            then_end.add_edge(join, NORMAL)
        self.current = join

    def _visit_Match(self, stmt: ast.Match) -> None:
        subject = self._ensure_block()
        subject.statements.append(stmt.subject)
        for child in ast.walk(stmt.subject):
            self.cfg._node_block[id(child)] = subject
        join = None
        has_wildcard = False
        for case in stmt.cases:
            body = self._new_block("match.case")
            subject.add_edge(body, NORMAL)
            self.current = body
            self._visit_body(case.body)
            if self.current is not None:
                if join is None:
                    join = self._new_block("match.join")
                self.current.add_edge(join, NORMAL)
            if (isinstance(case.pattern, ast.MatchAs)
                    and case.pattern.pattern is None and case.guard is None):
                has_wildcard = True
        if not has_wildcard:
            if join is None:
                join = self._new_block("match.join")
            subject.add_edge(join, NORMAL)
        self.current = join

    # -- loops ---------------------------------------------------------
    def _loop(self, stmt, header_payload: ast.AST, label: str) -> None:
        before = self._ensure_block()
        header = self._new_block(f"{label}.header")
        before.add_edge(header, NORMAL)
        header.statements.append(header_payload)
        for child in ast.walk(header_payload):
            self.cfg._node_block[id(child)] = header
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            # The For node itself marks the header (target binding).
            self.cfg._node_block[id(stmt)] = header

        after = self._new_block(f"{label}.after")
        body = self._new_block(f"{label}.body")
        header.add_edge(body, NORMAL)

        self.loops.append((header, after))
        self.current = body
        self._visit_body(stmt.body)
        if self.current is not None:
            self.current.add_edge(header, BACK)
        self.loops.pop()

        if stmt.orelse:
            else_block = self._new_block(f"{label}.else")
            header.add_edge(else_block, NORMAL)
            self.current = else_block
            self._visit_body(stmt.orelse)
            if self.current is not None:
                self.current.add_edge(after, NORMAL)
        else:
            header.add_edge(after, NORMAL)
        self.current = after

    def _visit_While(self, stmt: ast.While) -> None:
        self._loop(stmt, stmt.test, "while")

    def _visit_For(self, stmt: ast.For) -> None:
        self._loop(stmt, stmt, "for")

    def _visit_AsyncFor(self, stmt: ast.AsyncFor) -> None:
        self._loop(stmt, stmt, "for")

    # -- with ----------------------------------------------------------
    def _visit_With(self, stmt) -> None:
        entry = self._ensure_block()
        self.cfg._node_block[id(stmt)] = entry
        names = []
        for item in stmt.items:
            entry.statements.append(item)
            for child in ast.walk(item):
                self.cfg._node_block[id(child)] = entry
            name = dotted_name(item.context_expr)
            if name:
                names.append(name)
        self.with_stack.extend(names)
        body = self._new_block("with.body")
        entry.add_edge(body, NORMAL)
        self.current = body
        self._visit_body(stmt.body)
        if names:
            del self.with_stack[-len(names):]
        if self.current is not None:
            after = self._new_block("with.after")
            self.current.add_edge(after, NORMAL)
            self.current = after
        # else: every path out of the with body already terminated.

    _visit_AsyncWith = _visit_With

    # -- try -----------------------------------------------------------
    def _visit_Try(self, stmt: ast.Try) -> None:
        before = self._ensure_block()
        handlers = [self._new_block("except")
                    for _ in stmt.handlers]
        finally_frame = None
        if stmt.finalbody:
            finally_frame = _FinallyFrame(
                self._new_block("finally"), len(self.loops))
            self.finallies.append(finally_frame)
        self.tries.append(_TryFrame(handlers, finally_frame))

        body = self._new_block("try.body")
        before.add_edge(body, NORMAL)
        first_new = body.index
        self.current = body
        self._visit_body(stmt.body)
        body_end = self.current
        # Any statement in the try body may raise into any handler.
        for block in self.cfg.blocks[first_new:]:
            for handler in handlers:
                block.add_edge(handler, EXCEPT)
        self.tries.pop()

        exits: List[BasicBlock] = []
        if body_end is not None:
            if stmt.orelse:
                else_block = self._new_block("try.else")
                body_end.add_edge(else_block, NORMAL)
                self.current = else_block
                self._visit_body(stmt.orelse)
                if self.current is not None:
                    exits.append(self.current)
            else:
                exits.append(body_end)

        for handler_block, handler in zip(handlers, stmt.handlers):
            self.current = handler_block
            self._visit_body(handler.body)
            if self.current is not None:
                exits.append(self.current)

        if finally_frame is None:
            if not exits:
                self.current = None
                return
            after = self._new_block("try.after")
            for block in exits:
                block.add_edge(after, NORMAL)
            self.current = after
            return

        self.finallies.pop()
        for block in exits:
            block.add_edge(finally_frame.block, NORMAL)
        self.current = finally_frame.block
        self._visit_body(stmt.finalbody)
        finally_end = self.current
        self.current = None
        if finally_end is None:
            return
        if exits:
            after = self._new_block("try.after")
            finally_end.add_edge(after, NORMAL)
            self.current = after
        for target, kind in finally_frame.pending:
            finally_end.add_edge(target, kind)
        if self.current is None and not finally_frame.pending:
            # finally completed but nothing flows on (body always raised
            # with no handlers and no pending continuations).
            finally_end.add_edge(self.cfg.exit, EXCEPT)


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of one ``FunctionDef``/``AsyncFunctionDef``."""
    if not isinstance(func, FunctionNode):
        raise TypeError(f"build_cfg wants a function node, got "
                        f"{type(func).__name__}")
    return _Builder().build(func)


def functions_in(tree: ast.AST) -> Iterable[ast.AST]:
    """Every (possibly nested) function definition in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, FunctionNode):
            yield node


def dominators(cfg: CFG) -> Dict[BasicBlock, FrozenSet[BasicBlock]]:
    """Iterative dominator sets: ``dom(b)`` = blocks on every entry path."""
    blocks = cfg.blocks
    universe = frozenset(blocks)
    dom: Dict[BasicBlock, FrozenSet[BasicBlock]] = {
        block: universe for block in blocks
    }
    dom[cfg.entry] = frozenset([cfg.entry])
    changed = True
    while changed:
        changed = False
        for block in blocks:
            if block is cfg.entry:
                continue
            preds = [dom[p] for p in block.preds]
            new = frozenset.intersection(*preds) if preds else frozenset()
            new = new | {block}
            if new != dom[block]:
                dom[block] = new
                changed = True
    return dom
