"""Cross-layer invariant checkers and the repo-specific lint pass.

Sanitizer-style runtime checkers for every storage structure in the
reproduction (DWARF cubes, B-trees, SSTables, column families, heap
tables, bi-directional mappers), a :class:`CheckRunner` facade over
them, plus an AST lint pass — all surfaced through ``repro check``
and, at runtime, the ``REPRO_CHECK=1`` environment flag.

Attribute access is lazy (PEP 562): the hot-path hooks import
:func:`checks_enabled` from :mod:`repro.analysis.flags` at module load,
and resolving ``repro.analysis.<checker>`` only then pulls in the engine
modules that checker inspects — so importing this package never creates
an import cycle with the engines it checks.
"""

from __future__ import annotations

from repro.analysis.flags import checks_enabled
from repro.analysis.violations import (
    CheckReport,
    InvariantViolationError,
    Violation,
)

#: attribute name -> defining submodule, resolved on first access.
_LAZY = {
    "dwarf_check": "repro.analysis.dwarf_check",
    "structural_signature": "repro.analysis.dwarf_check",
    "check_build_equivalence": "repro.analysis.dwarf_check",
    "delta_check": "repro.analysis.delta_check",
    "btree_check": "repro.analysis.btree_check",
    "sstable_check": "repro.analysis.sstable_check",
    "columnfamily_check": "repro.analysis.sstable_check",
    "heap_check": "repro.analysis.heap_check",
    "mapping_check": "repro.analysis.mapping_check",
    "CheckRunner": "repro.analysis.runner",
    "runtime_check": "repro.analysis.runner",
    "run_lint": "repro.analysis.lint",
    "lint_file": "repro.analysis.lint",
    "build_cfg": "repro.analysis.cfg",
    "functions_in": "repro.analysis.cfg",
    "dominators": "repro.analysis.cfg",
    "solve": "repro.analysis.dataflow",
    "ReachingDefinitions": "repro.analysis.dataflow",
    "LiveVariables": "repro.analysis.dataflow",
    "build_import_graph": "repro.analysis.imports",
    "layering_violations": "repro.analysis.imports",
    "import_cycles": "repro.analysis.imports",
    "load_baseline": "repro.analysis.baseline",
    "apply_baseline": "repro.analysis.baseline",
    "write_baseline": "repro.analysis.baseline",
    "sarif_report": "repro.analysis.sarif",
    "sarif_dumps": "repro.analysis.sarif",
}

__all__ = [
    "CheckReport",
    "CheckRunner",
    "InvariantViolationError",
    "LiveVariables",
    "ReachingDefinitions",
    "Violation",
    "apply_baseline",
    "btree_check",
    "build_cfg",
    "build_import_graph",
    "check_build_equivalence",
    "checks_enabled",
    "columnfamily_check",
    "delta_check",
    "dominators",
    "dwarf_check",
    "functions_in",
    "heap_check",
    "import_cycles",
    "layering_violations",
    "lint_file",
    "load_baseline",
    "mapping_check",
    "run_lint",
    "runtime_check",
    "sarif_dumps",
    "sarif_report",
    "solve",
    "sstable_check",
    "structural_signature",
    "write_baseline",
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
