"""A generic worklist dataflow solver over :mod:`repro.analysis.cfg`.

The classic monotone framework, stdlib only: a :class:`DataflowProblem`
names a direction, a lattice join (set union for may-problems,
intersection for must-problems) and a per-block transfer function; the
:func:`solve` worklist iterates block transfers to a fixpoint.  For the
common bit-vector shape, :class:`GenKillProblem` derives the transfer
from per-block *gen* and *kill* sets, which makes the fixpoint guarantee
trivial (transfer functions are monotone over a finite powerset).

Two ready-made instances:

* :class:`ReachingDefinitions` — forward-may; which assignments can
  reach each block.  Used by the framework's own property tests.
* :class:`LiveVariables` — backward-may; which names are read later.

Flow-aware lint rules build their own problems on the same solver (the
resource-leak rule tracks possibly-open handles forward over
non-exceptional edges).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Hashable, Iterable, List, NamedTuple, Optional, Tuple

from repro.analysis.cfg import CFG, BasicBlock

FactSet = FrozenSet[Hashable]

FORWARD = "forward"
BACKWARD = "backward"


class DataflowProblem:
    """Interface of one analysis: direction, join, boundary, transfer."""

    direction = FORWARD

    #: Edge kinds facts may flow along (None = all edges).
    edge_kinds: Optional[Tuple[str, ...]] = None

    def boundary(self) -> FactSet:
        """Facts at the entry (forward) / exit (backward) boundary."""
        return frozenset()

    def initial(self) -> FactSet:
        """Starting value of every interior block (empty for may-joins)."""
        return frozenset()

    def join(self, facts: List[FactSet]) -> FactSet:
        """Merge predecessor facts (union = may, intersection = must)."""
        if not facts:
            return frozenset()
        return frozenset().union(*facts)

    def transfer(self, block: BasicBlock, facts: FactSet) -> FactSet:
        raise NotImplementedError


class GenKillProblem(DataflowProblem):
    """A problem whose transfer is ``gen(b) | (in - kill(b))``.

    ``gen``/``kill`` are computed once per block and cached, so the
    solver's inner loop is two frozenset operations.
    """

    def __init__(self) -> None:
        self._gen: Dict[int, FactSet] = {}
        self._kill: Dict[int, FactSet] = {}

    def gen(self, block: BasicBlock) -> FactSet:
        raise NotImplementedError

    def kill(self, block: BasicBlock) -> FactSet:
        raise NotImplementedError

    def transfer(self, block: BasicBlock, facts: FactSet) -> FactSet:
        gen = self._gen.get(block.index)
        if gen is None:
            gen = self._gen[block.index] = frozenset(self.gen(block))
            self._kill[block.index] = frozenset(self.kill(block))
        return gen | (facts - self._kill[block.index])


class BlockFacts(NamedTuple):
    """The solved IN/OUT pair of one block."""

    in_facts: FactSet
    out_facts: FactSet


def solve(cfg: CFG, problem: DataflowProblem,
          max_passes: int = 10_000) -> Dict[int, BlockFacts]:
    """Run ``problem`` to a fixpoint; returns ``block.index -> (in, out)``.

    The worklist is seeded with every block so unreachable blocks still
    get their (boundary-free) solution.  ``max_passes`` bounds total
    block evaluations as a defence against a non-monotone transfer; the
    bit-vector problems here converge in a handful of sweeps.

    Raises RuntimeError if the fixpoint is not reached within
    ``max_passes`` evaluations (a broken transfer function).
    """
    forward = problem.direction == FORWARD
    kinds = problem.edge_kinds

    def flow_preds(block: BasicBlock) -> List[BasicBlock]:
        if forward:
            if kinds is None:
                return block.preds
            allowed = set(kinds)
            return [p for p in block.preds
                    if any(e.target is block and e.kind in allowed
                           for e in p.edges)]
        return block.successors(kinds)

    def flow_succs(block: BasicBlock) -> List[BasicBlock]:
        if forward:
            return block.successors(kinds)
        if kinds is None:
            return block.preds
        allowed = set(kinds)
        return [p for p in block.preds
                if any(e.target is block and e.kind in allowed
                       for e in p.edges)]

    boundary_block = cfg.entry if forward else cfg.exit
    in_facts: Dict[int, FactSet] = {}
    out_facts: Dict[int, FactSet] = {}
    for block in cfg.blocks:
        in_facts[block.index] = (problem.boundary()
                                 if block is boundary_block
                                 else problem.initial())
        out_facts[block.index] = problem.transfer(block,
                                                  in_facts[block.index])

    worklist = list(cfg.blocks)
    queued = {block.index for block in worklist}
    passes = 0
    while worklist:
        passes += 1
        if passes > max_passes:
            raise RuntimeError(
                f"dataflow on {cfg.name!r} did not converge in "
                f"{max_passes} block evaluations")
        block = worklist.pop(0)
        queued.discard(block.index)
        preds = flow_preds(block)
        if preds:
            merged = problem.join([out_facts[p.index] for p in preds])
            if block is boundary_block:
                merged = problem.join([merged, problem.boundary()])
            in_facts[block.index] = merged
        new_out = problem.transfer(block, in_facts[block.index])
        if new_out != out_facts[block.index]:
            out_facts[block.index] = new_out
            for succ in flow_succs(block):
                if succ.index not in queued:
                    worklist.append(succ)
                    queued.add(succ.index)
    return {
        index: BlockFacts(in_facts[index], out_facts[index])
        for index in in_facts
    }


# ----------------------------------------------------------------------
# Statement-level def/use extraction (CFG blocks hold flat fragments:
# simple statements, test expressions, For headers, withitems).
# ----------------------------------------------------------------------
def assigned_names(node: ast.AST) -> List[Tuple[str, int]]:
    """``(name, lineno)`` for every plain-name binding in one fragment."""
    out: List[Tuple[str, int]] = []

    def targets_of(node: ast.AST) -> Iterable[ast.expr]:
        if isinstance(node, (ast.Assign,)):
            return node.targets
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return [node.target] if node.target is not None else []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return [node.target]
        if isinstance(node, ast.withitem):
            return [node.optional_vars] if node.optional_vars else []
        if isinstance(node, (ast.NamedExpr,)):
            return [node.target]
        return []

    stack = [node]
    while stack:
        item = stack.pop()
        for target in targets_of(item):
            for leaf in ast.walk(target):
                if isinstance(leaf, ast.Name):
                    out.append((leaf.id, getattr(leaf, "lineno",
                                                 getattr(item, "lineno", 0))))
        if isinstance(item, (ast.For, ast.AsyncFor)):
            stack.append(item.iter)  # header fragment: skip the body
        elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef, ast.Lambda)):
            continue
        else:
            stack.extend(ast.iter_child_nodes(item))
    return out


def used_names(node: ast.AST) -> List[str]:
    """Names read (Load context) in one block fragment."""
    out = []
    stack = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        if isinstance(item, ast.Name) and isinstance(item.ctx, ast.Load):
            out.append(item.id)
        if isinstance(item, (ast.For, ast.AsyncFor)):
            stack.append(item.iter)
        else:
            stack.extend(ast.iter_child_nodes(item))
    return out


class Definition(NamedTuple):
    """One reaching-definitions fact: ``name`` defined at a site."""

    name: str
    block: int
    lineno: int


class ReachingDefinitions(GenKillProblem):
    """Forward-may: the definitions that can reach each block."""

    direction = FORWARD

    def __init__(self, cfg: CFG) -> None:
        super().__init__()
        self.cfg = cfg
        self._defs_by_block: Dict[int, List[Definition]] = {}
        self._defs_by_name: Dict[str, List[Definition]] = {}
        for block in cfg.blocks:
            defs = []
            for stmt in block.statements:
                for name, lineno in assigned_names(stmt):
                    defs.append(Definition(name, block.index, lineno))
            self._defs_by_block[block.index] = defs
            for definition in defs:
                self._defs_by_name.setdefault(definition.name,
                                              []).append(definition)

    def gen(self, block: BasicBlock) -> FactSet:
        # The *last* definition of each name in the block survives it.
        last: Dict[str, Definition] = {}
        for definition in self._defs_by_block[block.index]:
            last[definition.name] = definition
        # Facts form a set; iteration order cannot leak into results.
        return frozenset(last.values())  # repro: noqa[REPRO003]

    def kill(self, block: BasicBlock) -> FactSet:
        killed = set()
        for definition in self._defs_by_block[block.index]:
            killed.update(self._defs_by_name[definition.name])
        return frozenset(killed) - self.gen(block)


class LiveVariables(GenKillProblem):
    """Backward-may: names whose current value may be read later."""

    direction = BACKWARD

    def __init__(self, cfg: CFG) -> None:
        super().__init__()
        self.cfg = cfg

    def gen(self, block: BasicBlock) -> FactSet:
        # use-before-def within the block, scanned in order.
        defined: set = set()
        used: set = set()
        for stmt in block.statements:
            for name in used_names(stmt):
                if name not in defined:
                    used.add(name)
            for name, _ in assigned_names(stmt):
                defined.add(name)
        return frozenset(used)

    def kill(self, block: BasicBlock) -> FactSet:
        return frozenset(
            name for stmt in block.statements
            for name, _ in assigned_names(stmt)
        )


__all__ = [
    "BACKWARD",
    "BlockFacts",
    "DataflowProblem",
    "Definition",
    "FORWARD",
    "GenKillProblem",
    "LiveVariables",
    "ReachingDefinitions",
    "assigned_names",
    "solve",
    "used_names",
]
