"""Runtime invariant checker for in-memory DWARF cubes.

Verifies the structural guarantees the construction algorithm promises
(paper §2–3, DESIGN.md "DWARF core"):

* **Reachability / level consistency** — every node reached from the
  root sits at exactly one level, every non-leaf cell points one level
  down, the root is level 0 and leaf cells appear only at the last
  dimension.
* **Cell ordering** — the ordinary cells of every node iterate in
  strictly ascending :func:`~repro.core.tuples.member_sort_key` order
  (range queries and the sorted-merge machinery rely on this).
* **Closure** — every non-empty node of a finished cube has an ALL cell,
  and the ALL chain from the root reaches the leaf level (``members()``
  and every ALL-path query walk it).
* **Suffix-coalescing aliasing** — a closed single-cell interior node
  *shares* its only sub-dwarf with its ALL cell (same object, not a
  copy); this is the sharing that makes DWARF sub-linear in size.
* **ALL aggregates** — the ALL cell of every leaf-level node equals the
  aggregator's merge over its member cells, and every interior ALL
  sub-dwarf totals to the merge of its sibling sub-dwarfs' totals.
* **Serial ↔ parallel equivalence** — :func:`check_build_equivalence`
  compares two cubes' :func:`structural_signature`; the partitioned
  builder must produce a DAG structurally identical to the serial scan.
"""

from __future__ import annotations

from functools import reduce
from typing import Dict, List, Optional, Tuple

from repro.analysis.violations import CheckReport
from repro.core.tuples import member_sort_key
from repro.dwarf.cube import DwarfCube
from repro.dwarf.node import DwarfNode
from repro.dwarf.traversal import breadth_first

_CHECKER = "dwarf"

#: Signature key used for ALL cells (orders after every member key).
_ALL_KEY = ("~all~", None)


def _key_of(cell) -> Tuple:
    return _ALL_KEY if cell.is_all else member_sort_key(cell.key)


def _loc(node: DwarfNode, cell=None) -> str:
    if cell is None:
        return f"node@L{node.level}"
    key = "ALL" if cell.is_all else repr(cell.key)
    return f"node@L{node.level}[key={key}]"


def _states_equal(left, right) -> bool:
    """Aggregation-state equality, tolerant of float rounding.

    Recomputing an ALL aggregate may associate merges differently than
    construction did; integer states (the paper's ``measure int``) are
    exact, float-bearing states allow a relative tolerance.
    """
    if isinstance(left, tuple) and isinstance(right, tuple):
        return len(left) == len(right) and all(
            _states_equal(a, b) for a, b in zip(left, right)
        )
    if isinstance(left, float) or isinstance(right, float):
        try:
            return left == right or abs(left - right) <= 1e-9 * max(
                1.0, abs(left), abs(right)
            )
        except TypeError:
            return False
    return left == right


def dwarf_check(cube: DwarfCube, coalesce: bool = True) -> CheckReport:
    """Check every structural invariant of ``cube``; never raises.

    ``coalesce=False`` relaxes the aliasing rule for ablation cubes built
    with suffix coalescing disabled (their ALL sub-dwarfs are copies by
    design).
    """
    report = CheckReport("dwarf_check")
    schema = cube.schema
    n_dims = schema.n_dimensions
    leaf_level = n_dims - 1
    agg = schema.aggregator

    report.check(
        cube.root.level == 0, _CHECKER, "dwarf.root-level",
        _loc(cube.root), f"root node has level {cube.root.level}, expected 0",
    )

    nodes: List[DwarfNode] = []
    for visit in breadth_first(cube.root):
        node, cell = visit.node, visit.cell
        if cell is None:
            nodes.append(node)
            report.check(
                0 <= node.level <= leaf_level, _CHECKER, "dwarf.level-range",
                _loc(node),
                f"node level {node.level} outside [0, {leaf_level}]",
            )
            if node.n_cells > 0:
                report.check(
                    node.is_closed, _CHECKER, "dwarf.unclosed",
                    _loc(node), "non-empty node of a finished cube has no ALL cell",
                )
            continue

        if cell.is_leaf:
            report.check(
                node.level == leaf_level, _CHECKER, "dwarf.leaf-level",
                _loc(node, cell),
                f"leaf cell at interior level {node.level} (leaves live at "
                f"level {leaf_level})",
            )
        else:
            report.check(
                cell.node.level == node.level + 1, _CHECKER, "dwarf.child-level",
                _loc(node, cell),
                f"cell points at a level-{cell.node.level} node; expected "
                f"level {node.level + 1}",
            )
            report.check(
                cell.value is None, _CHECKER, "dwarf.pointer-value",
                _loc(node, cell), "non-leaf cell carries an aggregation state",
            )

    for node in nodes:
        _check_cell_order(report, node)
        _check_aliasing(report, node, leaf_level, coalesce)

    _check_all_chain(report, cube)
    _check_all_aggregates(report, nodes, leaf_level, agg)
    return report


# ----------------------------------------------------------------------
# individual rules
# ----------------------------------------------------------------------
def _check_cell_order(report: CheckReport, node: DwarfNode) -> None:
    previous = None
    for cell in node.cells():
        key = member_sort_key(cell.key)
        if previous is not None:
            report.check(
                previous < key, _CHECKER, "dwarf.cell-order",
                _loc(node, cell),
                "cells out of ascending member order (range scans rely on it)",
            )
        else:
            report.record()
        previous = key


def _check_aliasing(
    report: CheckReport, node: DwarfNode, leaf_level: int, coalesce: bool
) -> None:
    """A closed single-cell node must *share* its sub-dwarf with ALL."""
    if node.n_cells != 1 or not node.is_closed:
        return
    only = next(node.cells())
    if node.level == leaf_level:
        report.check(
            _states_equal(node.all_cell.value, only.value),
            _CHECKER, "dwarf.all-aggregate", _loc(node),
            f"single-cell leaf node: ALL state {node.all_cell.value!r} != "
            f"member state {only.value!r}",
        )
    elif coalesce:
        report.check(
            node.all_cell.node is only.node,
            _CHECKER, "dwarf.coalesce-alias", _loc(node),
            "single-cell node's ALL sub-dwarf is a copy, not the shared "
            "sub-dwarf (SuffixCoalesce must alias, paper §2)",
        )


def _check_all_chain(report: CheckReport, cube: DwarfCube) -> None:
    node: Optional[DwarfNode] = cube.root
    if node.n_cells == 0:
        return
    for level in range(cube.schema.n_dimensions - 1):
        ok = report.check(
            node is not None and node.all_cell is not None
            and node.all_cell.node is not None,
            _CHECKER, "dwarf.all-chain",
            f"node@L{level}",
            "ALL chain from the root is broken before the leaf level",
        )
        if not ok:
            return
        node = node.all_cell.node


def _check_all_aggregates(
    report: CheckReport, nodes: List[DwarfNode], leaf_level: int, agg
) -> None:
    """ALL == merge(members), at every level.

    ``total(node)`` is the aggregate over every fact beneath ``node``
    (merge over its ordinary cells' sub-totals).  Two invariants follow:
    a leaf node's ALL cell holds exactly ``total(node)``, and an interior
    node's ALL sub-dwarf totals to the merge of its children's totals.
    Totals are memoised by node identity, so shared sub-dwarfs — the DAG
    — are computed once.
    """
    totals: Dict[int, object] = {}

    def total(node: DwarfNode):
        cached = totals.get(id(node))
        if cached is not None or id(node) in totals:
            return cached
        if node.n_cells == 0:
            result = None
        elif node.level == leaf_level:
            result = reduce(agg.merge, (c.value for c in node.cells()))
        else:
            subtotals = [total(c.node) for c in node.cells()]
            subtotals = [s for s in subtotals if s is not None]
            result = reduce(agg.merge, subtotals) if subtotals else None
        totals[id(node)] = result
        return result

    for node in nodes:
        if node.n_cells == 0 or not node.is_closed:
            continue
        expected = total(node)
        if node.level == leaf_level:
            report.check(
                _states_equal(node.all_cell.value, expected),
                _CHECKER, "dwarf.all-aggregate", _loc(node),
                f"ALL state {node.all_cell.value!r} != merge of member "
                f"states {expected!r}",
            )
        elif node.all_cell.node is not None:
            report.check(
                _states_equal(total(node.all_cell.node), expected),
                _CHECKER, "dwarf.all-aggregate", _loc(node),
                f"ALL sub-dwarf totals {total(node.all_cell.node)!r} != merge "
                f"of member sub-dwarf totals {expected!r}",
            )


# ----------------------------------------------------------------------
# structural signatures (serial <-> parallel equivalence)
# ----------------------------------------------------------------------
def structural_signature(cube: DwarfCube) -> Tuple:
    """A canonical, shape-and-sharing-sensitive signature of the DAG.

    Nodes are numbered in first-visit DFS order; a re-encountered node
    contributes a ``("ref", id)`` marker instead of its expansion, so two
    cubes compare equal **iff** they have identical topology *including*
    which sub-dwarfs are shared — the property the parallel partitioned
    builder guarantees relative to the serial scan, and the property a
    bi-directional mapper must preserve through storage.
    """
    ids: Dict[int, int] = {}

    def signature(node: DwarfNode) -> Tuple:
        known = ids.get(id(node))
        if known is not None:
            return ("ref", known)
        ids[id(node)] = assigned = len(ids)
        entries = []
        for cell in node.all_cells():
            key = _key_of(cell)
            if cell.is_leaf:
                entries.append((key, "=", cell.value))
            else:
                entries.append((key, ">", signature(cell.node)))
        return ("node", assigned, node.level, tuple(entries))

    return signature(cube.root)


def check_build_equivalence(
    reference: DwarfCube, candidate: DwarfCube, label: str = "parallel"
) -> CheckReport:
    """Check that two builds of the same facts are structurally identical.

    The serial↔parallel hook: build once with :class:`DwarfBuilder`, once
    with :class:`~repro.dwarf.parallel.ParallelDwarfBuilder`, and demand
    identical DAGs (same topology, sharing, values and tuple counts).
    """
    report = CheckReport("build_equivalence")
    report.check(
        reference.n_source_tuples == candidate.n_source_tuples,
        _CHECKER, "dwarf.parallel-equivalence", label,
        f"source tuple counts differ: {reference.n_source_tuples} vs "
        f"{candidate.n_source_tuples}",
    )
    report.check(
        structural_signature(reference) == structural_signature(candidate),
        _CHECKER, "dwarf.parallel-equivalence", label,
        "structural signatures differ: the two builds are not the same DAG",
    )
    return report
