"""Shared syntax-error formatting for both query front-ends.

The SQL and CQL parsers historically drifted in how they reported
positions (flat character offsets, different "near" spellings).  Both
now render through :func:`syntax_error_message`, so an error at line 3
column 7 reads identically — token for token — whichever dialect raised
it, and tests can assert the format once.
"""

from __future__ import annotations

from typing import Tuple


def line_and_column(text: str, offset: int) -> Tuple[int, int]:
    """1-based ``(line, column)`` of character ``offset`` in ``text``.

    Offsets past the end of ``text`` report the position just after the
    last character — where an unexpected end-of-input sits.
    """
    offset = max(0, min(offset, len(text)))
    line = text.count("\n", 0, offset) + 1
    last_newline = text.rfind("\n", 0, offset)
    return line, offset - last_newline  # column is 1-based via the -1 index


def describe_position(text: str, offset: int) -> str:
    """``"line L column C"`` for character ``offset`` in ``text``."""
    line, column = line_and_column(text, offset)
    return f"line {line} column {column}"


def syntax_error_message(message: str, text: str, offset: int, near: str = "") -> str:
    """The one syntax-error format both parsers and lexers emit.

    ``near`` is the offending token's text; empty means end of input.
    """
    where = describe_position(text, offset)
    if near:
        return f"{message} at {where} (near {near!r})"
    return f"{message} at {where} (at end of input)"
