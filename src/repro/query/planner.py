"""Rule-based access-path selection and the per-session plan cache.

The planner sees a dialect-neutral description of the target table
(:class:`TableMeta`) and the WHERE conditions as ``(column, op)`` pairs
in source order, and picks the cheapest access path by rule:

1. an equality on a single-column primary key  -> ``point``
2. an ``IN`` on a single-column primary key    -> ``multiget``
3. an equality on the first primary-key column
   of a composite key (when the storage layer
   supports prefix scans)                      -> ``pk-prefix``
4. an equality on an indexed column            -> ``index``
5. otherwise                                   -> ``scan``

Primary-key rules are tried across all conditions before index rules —
a pk hit later in the WHERE clause beats an indexed column earlier —
matching what both executors historically did.  Within each tier the
first matching condition wins, so plans are deterministic for a given
statement.

:class:`PlanCache` memoises compiled plans per session, keyed on
``(database-or-keyspace, statement text)``.  Cached entries carry
zero-argument *guards* (see :class:`repro.query.plan.Plan`) that
revalidate table identity and index signatures on every hit, so DDL
(DROP/CREATE TABLE, CREATE INDEX) invalidates stale plans instead of
silently replaying them.

Access selection is orthogonal to shard scatter: ``scan`` (and the
aggregate/hash-build shapes above it) parallelises at *execution* time
over however many shards the bound storage object exposes, so the
planner needs no shard awareness and a cached plan stays valid across
executions — a table's consistent-hash layout is fixed at construction,
and the table-identity guard already evicts plans when the object is
replaced.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, NamedTuple, Optional, Sequence, Tuple

from repro.telemetry import get_registry

# Live plan-cache traffic, summed across every session's cache
# (per-session breakdowns stay available via PlanCache.stats()).
_REGISTRY = get_registry()
_M_PLAN_HITS = _REGISTRY.counter("query_plan_cache_hits_total", "plan-cache hits")
_M_PLAN_MISSES = _REGISTRY.counter("query_plan_cache_misses_total", "plan-cache misses")
_M_PLAN_INVALIDATIONS = _REGISTRY.counter(
    "query_plan_cache_invalidations_total", "cached plans evicted by failed guards"
)

#: Access-path names :func:`choose_access` can return.
ACCESS_POINT = "point"
ACCESS_MULTIGET = "multiget"
ACCESS_PK_PREFIX = "pk-prefix"
ACCESS_INDEX = "index"
ACCESS_SCAN = "scan"


class TableMeta(NamedTuple):
    """What the planner needs to know about a table or column family."""

    name: str
    primary_key: Tuple[str, ...]
    indexed: frozenset
    supports_pk_prefix: bool


def choose_access(meta: TableMeta, conditions: Sequence[Tuple[str, str]]) -> Tuple[str, Optional[int]]:
    """Pick an access path; returns ``(access, condition_index)``.

    ``conditions`` are ``(column, op)`` pairs in source order; the
    returned index says which condition the access path consumes (the
    engine drops it from the residual filter).  ``scan`` consumes none.
    """
    single_pk = meta.primary_key[0] if len(meta.primary_key) == 1 else None
    prefix_pk = meta.primary_key[0] if (
        meta.supports_pk_prefix and len(meta.primary_key) > 1
    ) else None
    for i, (column, op) in enumerate(conditions):
        if single_pk is not None and column == single_pk:
            if op == "=":
                return ACCESS_POINT, i
            if op == "IN":
                return ACCESS_MULTIGET, i
        if prefix_pk is not None and column == prefix_pk and op == "=":
            return ACCESS_PK_PREFIX, i
    for i, (column, op) in enumerate(conditions):
        if op == "=" and column in meta.indexed:
            return ACCESS_INDEX, i
    return ACCESS_SCAN, None


def choose_join_access(meta: TableMeta, join_column: str) -> str:
    """Access path for probing ``meta`` on ``join_column`` equality:
    ``point`` (unique pk probe), ``index``, or ``scan`` (build a hash
    table over the full relation)."""
    if len(meta.primary_key) == 1 and join_column == meta.primary_key[0]:
        return ACCESS_POINT
    if join_column in meta.indexed:
        return ACCESS_INDEX
    return ACCESS_SCAN


class _Unplannable:
    """The cacheable negative entry: this statement shape cannot use the
    path in question (e.g. a select_many fusion).  Carries no guards, so
    it stays valid; the execution path it gates falls back to the generic
    executor, which is always correct."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "UNPLANNABLE"


#: Singleton negative cache entry — compare with ``is``.
UNPLANNABLE = _Unplannable()


class PlanCacheStats(NamedTuple):
    """Cumulative plan-cache counters."""

    hits: int
    misses: int
    invalidations: int
    entries: int


class PlanCache:
    """LRU cache of compiled plans keyed on statement template.

    Entries are whatever the engine binding compiled (normally a
    :class:`repro.query.plan.Plan`); anything exposing ``guards`` gets
    revalidated on each hit.  A guard failure evicts the entry and
    counts as an invalidation *and* a miss, so warm-pass hit counts stay
    honest across DDL.
    """

    __slots__ = ("capacity", "_entries", "hits", "misses", "invalidations")

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[object, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, key):
        """The cached plan for ``key``, or None on miss/invalidation."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            _M_PLAN_MISSES.inc()
            return None
        guards = getattr(entry, "guards", ())
        try:
            stale = not all(guard() for guard in guards)
        except Exception:
            stale = True
        if stale:
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            _M_PLAN_INVALIDATIONS.inc()
            _M_PLAN_MISSES.inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        _M_PLAN_HITS.inc()
        return entry

    def peek(self, key):
        """The cached entry for ``key`` with *no* side effects — no LRU
        bump, no guard revalidation, no hit/miss accounting.  The query
        log uses this to read a plan's counters after execution without
        perturbing the cache metrics the record is about to report."""
        return self._entries.get(key)

    def put(self, key, plan) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = plan
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def entries(self):
        """Snapshot of cached ``(key, plan)`` pairs, LRU-first order."""
        return list(self._entries.items())

    def stats(self) -> PlanCacheStats:
        return PlanCacheStats(
            hits=self.hits,
            misses=self.misses,
            invalidations=self.invalidations,
            entries=len(self._entries),
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"PlanCache(entries={s.entries}, hits={s.hits}, "
            f"misses={s.misses}, invalidations={s.invalidations})"
        )
