"""The one result type both engines hand back for reads.

Engine front-ends subclass :class:`ResultSet` purely to keep their
historical names (``SQLResult``, CQL ``ResultSet``) and reprs; the
behaviour — iteration, ``len``, ``one()``, DML ``rowcount`` — lives
here so query-layer code can consume results from either engine without
caring which one produced them.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class ResultSet:
    """Rows returned by a read (list of column-name -> value dicts),
    plus the affected-row count for DML statements.

    ``analyzed`` is set only by EXPLAIN ANALYZE: the rendered rows live
    in ``rows`` while the :class:`repro.query.analyze.AnalyzedRun`
    (per-operator actuals plus the byte-identical result rows the
    statement produced) rides along for programmatic consumers."""

    __slots__ = ("rows", "rowcount", "analyzed")

    def __init__(self, rows: Optional[List[Dict[str, object]]] = None, rowcount: int = 0) -> None:
        self.rows = rows if rows is not None else []
        self.rowcount = rowcount
        self.analyzed = None

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def one(self) -> Optional[Dict[str, object]]:
        return self.rows[0] if self.rows else None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self.rows)} rows)"
