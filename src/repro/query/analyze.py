"""EXPLAIN ANALYZE: execute a plan and annotate EXPLAIN with actuals.

Operator counters are *cumulative* across executions (a cached plan
keeps accruing), so per-execution actuals are computed as before/after
deltas around one run.  The run itself goes through the engine's normal
execution path with the context's ``timed`` flag set, so wall/CPU
seconds accrue per operator even when ``REPRO_TRACE`` is off — and the
result rows are exactly what a plain execution would have produced.

The report reuses the EXPLAIN vocabulary verbatim — same nodes, same
ordering, same ``fanout shard=<i>`` rows — and appends the actual
columns :data:`ACTUAL_COLUMNS` to every row.  Fanout rows carry the
shard's gathered row count where the operator tracks it (sharded scans,
hash builds, scatter aggregates); batched-read fanout is a worst-case
rendering with no per-shard accounting, so those actuals stay blank
rather than guessed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Sequence

from repro.query.plan import Plan, _shard_count

#: Actual-value columns appended to every EXPLAIN row, in render order.
ACTUAL_COLUMNS = (
    "rows",
    "wall_ms",
    "cpu_ms",
    "cache_hits",
    "blocks_skipped",
    "rows_pruned",
)


def _snapshot_node(node) -> Dict[str, object]:
    shard_rows = getattr(node, "shard_rows", None)
    return {
        "rows_out": node.rows_out,
        "seconds": node.seconds,
        "cpu_seconds": node.cpu_seconds,
        "blocks_cached": getattr(node, "blocks_cached", 0),
        "blocks_skipped": getattr(node, "blocks_skipped", 0),
        "rows_pruned": getattr(node, "rows_pruned", 0),
        "shard_rows": dict(shard_rows) if shard_rows is not None else None,
    }


def _annotate(plan: Plan, before: List[Dict], after: List[Dict]) -> List[Dict[str, object]]:
    """The EXPLAIN walk of :meth:`Plan.explain`, with actuals appended."""
    report: List[Dict[str, object]] = []
    step = 0
    for node, b, a in zip(plan.root._postorder(), before, after):
        fanout = node._explain_fanout()
        for shard_id, fan_detail in enumerate(fanout):
            step += 1
            row: Dict[str, object] = {
                "step": step,
                "node": node.kind,
                "table": node.table_name,
                "key": node.key_desc,
                "detail": fan_detail,
            }
            for column in ACTUAL_COLUMNS:
                row[column] = None
            if a["shard_rows"] is not None:
                row["rows"] = (
                    a["shard_rows"].get(shard_id, 0)
                    - (b["shard_rows"] or {}).get(shard_id, 0)
                )
            report.append(row)
        step += 1
        report.append(
            {
                "step": step,
                "node": node.kind,
                "table": node.table_name,
                "key": node.key_desc,
                "detail": node.detail(),
                "rows": a["rows_out"] - b["rows_out"],
                "wall_ms": (a["seconds"] - b["seconds"]) * 1000.0,
                "cpu_ms": (a["cpu_seconds"] - b["cpu_seconds"]) * 1000.0,
                "cache_hits": a["blocks_cached"] - b["blocks_cached"],
                "blocks_skipped": a["blocks_skipped"] - b["blocks_skipped"],
                "rows_pruned": a["rows_pruned"] - b["rows_pruned"],
            }
        )
    return report


def snapshot_counters(plan: Plan) -> List[Dict[str, object]]:
    """Per-node counter snapshot in postorder; pair with
    :func:`annotate_explain` to frame one execution's actuals."""
    return [_snapshot_node(node) for node in plan.root._postorder()]


def _zero_like(snap: Dict[str, object]) -> Dict[str, object]:
    return {
        "rows_out": 0,
        "seconds": 0.0,
        "cpu_seconds": 0.0,
        "blocks_cached": 0,
        "blocks_skipped": 0,
        "rows_pruned": 0,
        "shard_rows": {} if snap["shard_rows"] is not None else None,
    }


def annotate_explain(
    plan: Plan, before: Optional[List[Dict[str, object]]] = None
) -> List[Dict[str, object]]:
    """The annotated EXPLAIN report from ``before`` (a
    :func:`snapshot_counters` result, or None meaning zeros — a
    freshly-built plan's cumulative counters) to the counters now."""
    after = snapshot_counters(plan)
    if before is None:
        before = [_zero_like(snap) for snap in after]
    return _annotate(plan, before, after)


class AnalyzedRun(NamedTuple):
    """One analyzed execution: the annotated report plus the statement's
    result rows (byte-identical to a plain run) and whole-plan totals."""

    report: List[Dict[str, object]]
    result_rows: List[Dict[str, object]]
    totals: Dict[str, object]


def analyze_plan(
    plan: Plan,
    params: Sequence = (),
    runner: Optional[Callable[[], List[Dict[str, object]]]] = None,
) -> AnalyzedRun:
    """Execute ``plan`` once with per-operator timing and report actuals.

    ``runner``, when given, must execute this same plan tree (timed) and
    return the final result rows — engines pass their normal
    plan-execution path so post-plan shaping (projection templates,
    limits) stays identical to an unanalyzed run.  Defaults to
    ``plan.run(params, timed=True)``.
    """
    nodes = plan.root._postorder()
    before = [_snapshot_node(node) for node in nodes]
    if runner is None:
        result_rows = plan.run(params, timed=True)
    else:
        result_rows = runner()
    after = [_snapshot_node(node) for node in nodes]
    report = _annotate(plan, before, after)
    root_b, root_a = before[-1], after[-1]
    totals = {
        "rows": len(result_rows),
        "wall_s": root_a["seconds"] - root_b["seconds"],
        "cpu_s": root_a["cpu_seconds"] - root_b["cpu_seconds"],
        "cache_hits": sum(a["blocks_cached"] - b["blocks_cached"]
                          for b, a in zip(before, after)),
        "blocks_skipped": sum(a["blocks_skipped"] - b["blocks_skipped"]
                              for b, a in zip(before, after)),
        "rows_pruned": sum(a["rows_pruned"] - b["rows_pruned"]
                           for b, a in zip(before, after)),
        "shards": shard_fanout(plan),
    }
    return AnalyzedRun(report=report, result_rows=result_rows, totals=totals)


class AnalyzedStatement:
    """Plan-cache entry for an ``EXPLAIN ANALYZE`` statement.

    Wraps the compiled plan of the underlying SELECT (cached under the
    full ``EXPLAIN ANALYZE ...`` text, so a warm re-analyze skips parse
    and plan).  Exposes ``guards`` so :meth:`PlanCache.get` revalidates
    it exactly like a bare :class:`Plan`.  ``meta`` is the engine's
    private companion state (result shaping), as on :class:`Plan`.
    """

    __slots__ = ("plan", "meta")

    def __init__(self, plan: Plan, meta=None) -> None:
        self.plan = plan
        self.meta = meta

    @property
    def guards(self):
        return self.plan.guards

    def __repr__(self) -> str:
        return f"AnalyzedStatement({self.plan!r})"


def counter_totals(plan: Plan) -> Dict[str, int]:
    """Cumulative cache/pushdown counters summed over the plan's
    operators — the query log diffs these around an execution."""
    cache_hits = blocks_skipped = rows_pruned = 0
    for node in plan.root._postorder():
        cache_hits += getattr(node, "blocks_cached", 0)
        blocks_skipped += getattr(node, "blocks_skipped", 0)
        rows_pruned += getattr(node, "rows_pruned", 0)
    return {
        "cache_hits": cache_hits,
        "blocks_skipped": blocks_skipped,
        "rows_pruned": rows_pruned,
    }


def shard_fanout(plan: Plan) -> int:
    """Widest shard layout any operator in the plan touches (>= 1)."""
    widest = 1
    for node in plan.root._postorder():
        for table in (getattr(node, "table", None), getattr(node, "build_table", None)):
            if table is not None:
                widest = max(widest, _shard_count(table))
    return widest


def record_query(
    log,
    text: str,
    dialect: str,
    seconds: float,
    rows: int,
    plan: Optional[Plan] = None,
    before: Optional[Dict[str, int]] = None,
    analyzed: Optional[AnalyzedRun] = None,
    epoch: int = 0,
) -> None:
    """Append one :class:`repro.telemetry.querylog.QueryRecord`.

    Shared by both engines' sessions so the record shape stays
    identical across dialects.  ``before`` is a :func:`counter_totals`
    snapshot taken before the execution (omitted for freshly-built
    plans, whose cumulative counters *are* this execution); ``analyzed``
    short-circuits to the AnalyzedRun's already-computed totals.
    Callers gate on ``log.enabled`` before doing any of this work.
    """
    if analyzed is not None:
        totals = analyzed.totals
        log.record(
            text, dialect, seconds, rows=rows,
            cache_hits=totals["cache_hits"],
            blocks_skipped=totals["blocks_skipped"],
            rows_pruned=totals["rows_pruned"],
            shards=totals["shards"], epoch=epoch,
        )
        return
    if isinstance(plan, AnalyzedStatement):
        plan = plan.plan
    if isinstance(plan, Plan):
        totals = counter_totals(plan)
        if before is None:
            before = {"cache_hits": 0, "blocks_skipped": 0, "rows_pruned": 0}
        log.record(
            text, dialect, seconds, rows=rows,
            cache_hits=totals["cache_hits"] - before["cache_hits"],
            blocks_skipped=totals["blocks_skipped"] - before["blocks_skipped"],
            rows_pruned=totals["rows_pruned"] - before["rows_pruned"],
            shards=shard_fanout(plan), epoch=epoch,
        )
        return
    log.record(text, dialect, seconds, rows=rows, epoch=epoch)
