"""Predicate pushdown: filters evaluated inside the storage layer.

Both executors historically translated every residual WHERE condition
into a kernel :class:`~repro.query.plan.Filter` above the access node,
so a scan decoded (and, on the NoSQL engine, materialized) every row
only for most of them to be discarded one operator later.  Pushdown
moves the cheap, storage-evaluable conditions *into* ``FullScan`` /
``IndexScan``: the planner extracts the pushable subset of the residual
filter, wraps it in a :class:`PushedPredicate`, and the access node
hands a per-execution :class:`BoundPredicate` to the table's
``scan(pushed=...)`` / ``lookup_indexed(..., pushed=...)`` methods.

The storage layers duck-type the bound object — they never import the
kernel — and may exploit it three ways, in decreasing strength:

1. **block skipping** — columnar SSTable blocks carry per-column zone
   maps; :meth:`BoundPredicate.block_may_match` proves a whole block
   cannot contribute and the reader never even decodes it;
2. **late materialization** — columnar blocks evaluate the predicate on
   the needed column vectors only and materialize surviving rows;
3. **row pruning** — row-major blocks, memtables and the relational
   B-tree evaluate the predicate row-wise before handing rows upward.

Semantics are exactly those of the :class:`Filter` chain the predicate
replaced: conditions are evaluated in residual order with the same
NULL-rejecting :func:`~repro.query.expr.compare`, so pushed and
unpushed plans return identical answers.
"""

from __future__ import annotations

from typing import Callable, Mapping, NamedTuple, Tuple

from repro.query.expr import compare
from repro.telemetry import get_registry

_REGISTRY = get_registry()
_M_ROWS_PRUNED = _REGISTRY.counter(
    "query_pushdown_rows_pruned_total",
    "rows discarded inside the storage layer by pushed-down predicates",
)

#: Operators a storage layer can evaluate (and zone maps can reason
#: about).  ``ISNULL``/``NOTNULL`` stay in kernel Filters: SQL NULL
#: tests are rare and their zone semantics are subtle.
PUSHABLE_OPS = frozenset({"=", "!=", "<", ">", "<=", ">=", "IN"})


class PushedCondition(NamedTuple):
    """One pushable WHERE condition in planner-compiled form."""

    column: str
    op: str
    resolve: Callable  # params -> expected value (list for IN)
    desc: str          # dialect-rendered text for EXPLAIN


class PushedPredicate:
    """An immutable conjunction of pushable conditions, attached to an
    access node at plan time.  Parameter markers resolve at execution
    via :meth:`bind`."""

    __slots__ = ("conditions",)

    def __init__(self, conditions: Tuple[PushedCondition, ...]) -> None:
        self.conditions = tuple(conditions)

    def bind(self, params) -> "BoundPredicate":
        """Resolve parameter markers for one execution."""
        return BoundPredicate(
            tuple(
                (cond.column, cond.op, cond.resolve(params))
                for cond in self.conditions
            )
        )

    def describe(self) -> str:
        """EXPLAIN rendering, e.g. ``key = ?1 AND measure > 0``."""
        return " AND ".join(cond.desc for cond in self.conditions)

    def __repr__(self) -> str:
        return f"PushedPredicate({self.describe()!r})"


class BoundPredicate:
    """A pushed predicate with parameters resolved, plus the pruning
    counters the storage layer fills in while scanning."""

    __slots__ = ("conditions", "blocks_skipped", "rows_pruned")

    def __init__(self, conditions: Tuple[Tuple[str, str, object], ...]) -> None:
        self.conditions = conditions
        self.blocks_skipped = 0
        self.rows_pruned = 0

    @property
    def columns(self) -> Tuple[str, ...]:
        """The distinct columns the predicate reads, in condition order."""
        seen = []
        for column, _, _ in self.conditions:
            if column not in seen:
                seen.append(column)
        return tuple(seen)

    def matches(self, row: Mapping) -> bool:
        """Evaluate against a decoded row (or a partial dict holding at
        least :attr:`columns`).  Mirrors the Filter chain: conditions in
        order, short-circuiting, NULL-rejecting."""
        for column, op, expected in self.conditions:
            if not compare(op, row.get(column), expected):
                return False
        return True

    def matches_vectors(self, column_vector: Callable, n_rows: int) -> list:
        """Evaluate the predicate over a whole decoded block at once.

        ``column_vector(name)`` must return the column as a list of
        ``n_rows`` decoded values (None where absent).  Returns a
        boolean mask in row order.  Semantically identical to calling
        :meth:`matches` per row: conditions are applied in order and
        later conditions are only evaluated where earlier ones still
        hold (the ``mask[i] and ...`` short-circuit), preserving the
        Filter chain's short-circuit behaviour exactly.
        """
        mask = None
        for column, op, expected in self.conditions:
            if op == "IN":
                try:
                    expected = frozenset(expected)
                except TypeError:
                    pass  # unhashable members: linear membership as-is
            vector = column_vector(column)
            if mask is None:
                mask = [compare(op, value, expected) for value in vector]
            else:
                mask = [
                    held and compare(op, vector[i], expected)
                    for i, held in enumerate(mask)
                ]
        return mask if mask is not None else [True] * n_rows

    def block_may_match(self, zones: Mapping) -> bool:
        """Can any row in a block with these zone maps satisfy the
        predicate?  ``zones`` maps column name to ``(lo, hi, distinct)``
        where ``distinct`` is an exact frozenset of the block's values
        (or None when cardinality exceeded the tracking cap) and an
        all-NULL column is ``(None, None, frozenset())``.  Columns
        absent from ``zones`` are unknown and assumed to match."""
        for column, op, expected in self.conditions:
            zone = zones.get(column)
            if zone is None:
                continue
            try:
                if not _zone_may_match(zone, op, expected):
                    return False
            except TypeError:
                continue  # incomparable constant: cannot prune
        return True

    def note_skipped(self, blocks: int = 1) -> None:
        self.blocks_skipped += blocks

    def note_pruned(self, rows: int) -> None:
        self.rows_pruned += rows
        _M_ROWS_PRUNED.inc(rows)


def _zone_may_match(zone, op: str, expected) -> bool:
    lo, hi, distinct = zone
    if op == "IN":
        members = list(expected)
        if any(member is None for member in members):
            return True  # NULL member: compare() semantics, cannot prune
        if distinct is not None:
            return any(member in distinct for member in members)
        if lo is None:
            return False  # all-NULL block column matches nothing
        return any(lo <= member <= hi for member in members)
    if op == "=":
        if expected is None:
            return False  # compare("=", x, None) is never true
        if distinct is not None:
            return expected in distinct
        if lo is None:
            return False
        return lo <= expected <= hi
    if op == "!=":
        if distinct is not None:
            return any(value != expected for value in distinct)
        if lo is None:
            return False
        return not (lo == hi == expected)
    if lo is None:
        return False  # ordered comparison against an all-NULL column
    if expected is None:
        return False
    if op == "<":
        return lo < expected
    if op == "<=":
        return lo <= expected
    if op == ">":
        return hi > expected
    if op == ">=":
        return hi >= expected
    return True  # unknown operator: never prune
