"""The shared query kernel.

One plan/operator layer under both database engines: a common
:class:`ResultSet`, the expression evaluator, volcano-style plan nodes
with per-operator counters, and the rule-based planner with its plan
cache.  Engine front-ends (``repro.sqldb``, ``repro.nosqldb``) compile
their dialects down to this layer; this package must never import an
engine (lint rule REPRO006).
"""

from repro.query.analyze import (
    ACTUAL_COLUMNS,
    AnalyzedRun,
    AnalyzedStatement,
    analyze_plan,
    annotate_explain,
    counter_totals,
    record_query,
    shard_fanout,
    snapshot_counters,
)
from repro.query.errors import describe_position, line_and_column, syntax_error_message
from repro.query.expr import COMPARISON_OPS, compare, evaluate_aggregate, null_safe_key
from repro.query.plan import (
    Aggregate,
    Filter,
    FullScan,
    HashJoin,
    IndexScan,
    Limit,
    MultiGet,
    OperatorStats,
    PartialAggregate,
    Plan,
    PlanNode,
    PointLookup,
    Project,
    Sort,
    count_partial,
)
from repro.query.planner import (
    ACCESS_INDEX,
    ACCESS_MULTIGET,
    ACCESS_PK_PREFIX,
    ACCESS_POINT,
    ACCESS_SCAN,
    PlanCache,
    PlanCacheStats,
    TableMeta,
    UNPLANNABLE,
    choose_access,
    choose_join_access,
)
from repro.query.pushdown import (
    PUSHABLE_OPS,
    BoundPredicate,
    PushedCondition,
    PushedPredicate,
)
from repro.query.result import ResultSet

__all__ = [
    "ACCESS_INDEX",
    "ACCESS_MULTIGET",
    "ACCESS_PK_PREFIX",
    "ACCESS_POINT",
    "ACCESS_SCAN",
    "ACTUAL_COLUMNS",
    "Aggregate",
    "AnalyzedRun",
    "AnalyzedStatement",
    "analyze_plan",
    "annotate_explain",
    "counter_totals",
    "record_query",
    "shard_fanout",
    "snapshot_counters",
    "BoundPredicate",
    "COMPARISON_OPS",
    "Filter",
    "FullScan",
    "HashJoin",
    "IndexScan",
    "Limit",
    "MultiGet",
    "OperatorStats",
    "PUSHABLE_OPS",
    "PartialAggregate",
    "Plan",
    "PlanCache",
    "PlanCacheStats",
    "PlanNode",
    "PointLookup",
    "Project",
    "PushedCondition",
    "PushedPredicate",
    "ResultSet",
    "Sort",
    "TableMeta",
    "UNPLANNABLE",
    "choose_access",
    "choose_join_access",
    "compare",
    "count_partial",
    "describe_position",
    "evaluate_aggregate",
    "line_and_column",
    "null_safe_key",
    "syntax_error_message",
]
