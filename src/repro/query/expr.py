"""The shared expression evaluator.

Both engines' WHERE clauses, ORDER BY keys and aggregate functions boil
down to the three primitives here.  Keeping them in one place is what
makes the differential tests meaningful: a comparison-semantics bug
cannot hide in one engine only.

SQL three-valued logic is approximated the way both executors always
did: a comparison against a NULL operand is false (never true), ``IN``
compares raw values (so ``NULL IN (NULL)`` holds), and aggregates skip
NULLs entirely.
"""

from __future__ import annotations

from typing import Optional, Sequence

#: Comparison operators :func:`compare` accepts, in both dialects'
#: normalised spelling (``<>`` is normalised to ``!=`` at parse time).
COMPARISON_OPS = ("=", "!=", "<", ">", "<=", ">=", "IN", "ISNULL", "NOTNULL")


def compare(op: str, actual, expected) -> bool:
    """Evaluate ``actual OP expected`` with NULL-rejecting semantics.

    ``expected`` is a collection for ``IN`` and ignored for the
    null-test operators.  Unknown operators raise ValueError — engine
    front-ends validate operators at plan-build time, so hitting this at
    run time is a compiler bug, not bad user input.
    """
    if op == "IN":
        return actual in expected
    if op == "ISNULL":
        return actual is None
    if op == "NOTNULL":
        return actual is not None
    if actual is None:
        return False
    if op == "=":
        return actual == expected
    if op == "!=":
        return actual != expected
    if op == "<":
        return actual < expected
    if op == ">":
        return actual > expected
    if op == "<=":
        return actual <= expected
    if op == ">=":
        return actual >= expected
    raise ValueError(f"unsupported comparison operator {op!r}")


def null_safe_key(value):
    """An ORDER BY sort key that places NULLs last (ascending)."""
    return (value is None, value)


def evaluate_aggregate(func: str, values: Sequence) -> Optional[object]:
    """One aggregate over a group's non-NULL ``values``.

    ``count`` of an empty group is 0; every other aggregate of an empty
    group is NULL, as in SQL.  Unknown functions raise ValueError (the
    parsers only emit the five known ones).
    """
    if func == "count":
        return len(values)
    if not values:
        return None
    if func == "sum":
        return sum(values)
    if func == "min":
        return min(values)
    if func == "max":
        return max(values)
    if func == "avg":
        return sum(values) / len(values)
    raise ValueError(f"unknown aggregate {func!r}")
