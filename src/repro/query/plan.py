"""Volcano-style plan nodes shared by both engines.

A plan is a tree of operators.  Leaves are *access paths* bound to a
storage object (a relational :class:`~repro.sqldb.table.Table` or a
:class:`~repro.nosqldb.columnfamily.ColumnFamily` — the kernel only
relies on the common ``get``/``get_many``/``lookup_indexed``/``scan``
duck type); inner nodes transform row streams.  Engine front-ends
compile their dialect's AST into the callables each node carries —
key resolvers take the bind-parameter tuple, predicates take
``(row, params)`` — so the kernel never sees an AST and never imports
an engine (lint rule REPRO006 enforces that direction).

Every node keeps cumulative counters (``calls``, ``rows_in``,
``rows_out``, plus ``keys_batched`` and ``blocks_cached`` on batched
leaves) surfaced through :meth:`Plan.operator_stats` and
:func:`repro.dwarf.stats.describe`.  ``EXPLAIN`` in either dialect is
:meth:`Plan.explain`: one row per operator in execution order, with the
same vocabulary everywhere.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.telemetry import cpu_clock, get_tracer, wall_clock

_TRACER = get_tracer()


def _shard_count(table) -> int:
    """How many consistent-hash shards the storage object exposes."""
    return getattr(table, "shard_count", 1)


def _run_sharded(table, tasks):
    """Run per-shard tasks through the table's scatter hook.

    Sharded storage objects expose ``run_sharded(tasks)`` (backed by the
    ``REPRO_WORKERS`` pool); the kernel duck-types it — it cannot import
    the pool itself, the engines sit above it (REPRO006) — and falls
    back to serial execution for plain tables.  Results come back in
    task (= shard) order either way.
    """
    runner = getattr(table, "run_sharded", None)
    if runner is None:
        return [task() for task in tasks]
    return runner(tasks)


class PartialAggregate(NamedTuple):
    """A distributive aggregate split into per-shard fold + global merge.

    ``fold_shard(rows, params)`` runs inside each shard's scatter task
    and reduces that shard's rows to a small state object;
    ``merge(states, params)`` combines the per-shard states — in shard
    order — into the final aggregate output rows.  ``count_only`` marks
    the pure COUNT(*) shape, which lets a sharded ``FullScan`` child
    answer from ``count_shard`` without materialising any row at all.
    """

    fold_shard: Callable
    merge: Callable
    count_only: bool = False


def count_partial() -> PartialAggregate:
    """The COUNT(*) decomposition both dialects share: per-shard row
    counts, summed at the gather."""
    return PartialAggregate(
        fold_shard=lambda rows, params: len(rows),
        merge=lambda states, params: [{"count": sum(states)}],
        count_only=True,
    )


class OperatorStats(NamedTuple):
    """One operator's cumulative execution counters.

    ``seconds`` is cumulative wall time spent in the operator *including
    its children* (volcano execution is pull-based, so a parent's clock
    runs while its child produces rows).  It is only accumulated while
    tracing is enabled (``REPRO_TRACE=1``); otherwise it stays 0.0 and
    execution pays a single attribute check per operator call.
    """

    node: str
    table: Optional[str]
    detail: str
    calls: int
    rows_in: int
    rows_out: int
    keys_batched: int
    blocks_cached: int
    seconds: float = 0.0
    blocks_skipped: int = 0   # blocks zone maps skipped for a pushed predicate
    rows_pruned: int = 0      # rows the storage layer pruned before emitting
    cpu_seconds: float = 0.0  # CPU time companion to ``seconds``


class _Context:
    """Per-execution state threaded through the operator tree.

    ``timed`` forces per-operator timing for this execution regardless
    of the tracer gate — EXPLAIN ANALYZE sets it so actuals carry
    wall/CPU seconds even when ``REPRO_TRACE`` is off.
    """

    __slots__ = ("params", "timed")

    def __init__(self, params: Sequence, timed: bool = False) -> None:
        self.params = tuple(params)
        self.timed = timed


class PlanNode:
    """Base operator: counters, children, and the EXPLAIN contract."""

    kind = "PlanNode"
    __slots__ = ("calls", "rows_in", "rows_out", "seconds", "cpu_seconds")

    def __init__(self) -> None:
        self.calls = 0
        self.rows_in = 0
        self.rows_out = 0
        self.seconds = 0.0
        self.cpu_seconds = 0.0

    # -- execution ---------------------------------------------------------
    def run(self, params: Sequence = (), timed: bool = False) -> List[Dict[str, object]]:
        """Execute the subtree rooted here with ``params`` bound."""
        return self.rows(_Context(params, timed))

    def rows(self, ctx: _Context) -> List[Dict[str, object]]:
        """Produce this operator's row stream, timing it when tracing is
        on (or the execution asked to be timed)."""
        if not (_TRACER.enabled or ctx.timed):
            return self._execute(ctx)
        t0 = wall_clock()
        c0 = cpu_clock()
        try:
            return self._execute(ctx)
        finally:
            self.cpu_seconds += cpu_clock() - c0
            self.seconds += wall_clock() - t0

    def _execute(self, ctx: _Context) -> List[Dict[str, object]]:
        raise NotImplementedError

    # -- introspection -----------------------------------------------------
    @property
    def children(self) -> Tuple["PlanNode", ...]:
        return ()

    @property
    def table_name(self) -> Optional[str]:
        return None

    @property
    def key_desc(self) -> Optional[str]:
        return None

    def detail(self) -> str:
        return ""

    def explain(self) -> List[Dict[str, object]]:
        """One row per operator, numbered in execution (leaf-first) order.

        Operators that scatter across shards additionally render one
        ``fanout shard=<i>`` row per shard *before* their own row — the
        same vocabulary in both dialects.  Single-shard layouts render
        no fanout rows, so the historical EXPLAIN output is unchanged.
        """
        rows: List[Dict[str, object]] = []
        step = 0
        for node in self._postorder():
            for fan_detail in node._explain_fanout():
                step += 1
                rows.append(
                    {
                        "step": step,
                        "node": node.kind,
                        "table": node.table_name,
                        "key": node.key_desc,
                        "detail": fan_detail,
                    }
                )
            step += 1
            rows.append(
                {
                    "step": step,
                    "node": node.kind,
                    "table": node.table_name,
                    "key": node.key_desc,
                    "detail": node.detail(),
                }
            )
        return rows

    def _explain_fanout(self) -> Tuple[str, ...]:
        """Per-shard EXPLAIN rows this operator scatters into (default none)."""
        return ()

    def operator_stats(self) -> List[OperatorStats]:
        return [
            OperatorStats(
                node=node.kind,
                table=node.table_name,
                detail=node.detail(),
                calls=node.calls,
                rows_in=node.rows_in,
                rows_out=node.rows_out,
                keys_batched=getattr(node, "keys_batched", 0),
                blocks_cached=getattr(node, "blocks_cached", 0),
                seconds=node.seconds,
                blocks_skipped=getattr(node, "blocks_skipped", 0),
                rows_pruned=getattr(node, "rows_pruned", 0),
                cpu_seconds=node.cpu_seconds,
            )
            for node in self._postorder()
        ]

    def reset_counters(self) -> None:
        for node in self._postorder():
            node.calls = 0
            node.rows_in = 0
            node.rows_out = 0
            node.seconds = 0.0
            node.cpu_seconds = 0.0
            if hasattr(node, "keys_batched"):
                node.keys_batched = 0
                node.blocks_cached = 0
            if hasattr(node, "rows_pruned"):
                node.rows_pruned = 0
                node.blocks_skipped = 0
            if hasattr(node, "shard_rows"):
                node.shard_rows.clear()

    def _postorder(self) -> List["PlanNode"]:
        out: List[PlanNode] = []
        for child in self.children:
            out.extend(child._postorder())
        out.append(self)
        return out

    def __repr__(self) -> str:
        return f"{self.kind}({self.detail()})"


# ----------------------------------------------------------------------
# leaf access paths
# ----------------------------------------------------------------------
class _Access(PlanNode):
    """Shared shape of the storage-bound leaves.

    ``wrap`` (optional) re-shapes each fetched row before it enters the
    stream — the SQL binding uses it to namespace rows as
    ``{alias: row}`` for joins.  It is representation plumbing, not an
    operator, so it never shows up in EXPLAIN.  ``cache_probe``
    (optional) reads the storage object's block-cache hit counter so the
    leaf can attribute cache-backed block reads to itself.
    """

    __slots__ = ("table", "_table_name", "_key_desc", "wrap", "cache_probe")

    def __init__(self, table, table_name: str, key_desc: Optional[str],
                 wrap: Optional[Callable] = None,
                 cache_probe: Optional[Callable[[], int]] = None) -> None:
        super().__init__()
        self.table = table
        self._table_name = table_name
        self._key_desc = key_desc
        self.wrap = wrap
        self.cache_probe = cache_probe

    @property
    def table_name(self) -> Optional[str]:
        return self._table_name

    @property
    def key_desc(self) -> Optional[str]:
        return self._key_desc

    def _emit(self, rows: List[Dict[str, object]]) -> List[Dict[str, object]]:
        self.calls += 1
        self.rows_out += len(rows)
        if self.wrap is not None:
            wrap = self.wrap
            return [wrap(row) for row in rows]
        return rows


class PointLookup(_Access):
    """One primary-key ``get``: the ``WHERE pk = x`` access path."""

    kind = "PointLookup"
    __slots__ = ("key", "keys_batched", "blocks_cached")

    def __init__(self, table, key: Callable, table_name: str, key_desc: str,
                 wrap=None, cache_probe=None) -> None:
        super().__init__(table, table_name, key_desc, wrap, cache_probe)
        self.key = key
        self.keys_batched = 0
        self.blocks_cached = 0

    def _execute(self, ctx: _Context) -> List[Dict[str, object]]:
        before = self.cache_probe() if self.cache_probe is not None else 0
        row = self.table.get(self.key(ctx.params))
        if self.cache_probe is not None:
            self.blocks_cached += self.cache_probe() - before
        self.keys_batched += 1
        return self._emit([row] if row is not None else [])

    def detail(self) -> str:
        return "primary key"


class MultiGet(_Access):
    """One batched ``get_many`` over a runtime key list (pk ``IN``, and
    the fused fetch behind ``execute_many``/``select_many``)."""

    kind = "MultiGet"
    __slots__ = ("keys", "keep_missing", "keys_batched", "blocks_cached")

    def __init__(self, table, keys: Callable, table_name: str, key_desc: str,
                 wrap=None, cache_probe=None, keep_missing: bool = False) -> None:
        super().__init__(table, table_name, key_desc, wrap, cache_probe)
        self.keys = keys
        # keep_missing keeps a None placeholder per absent key so callers
        # that need key-aligned results (select_many) can use this node.
        self.keep_missing = keep_missing
        self.keys_batched = 0
        self.blocks_cached = 0

    def _execute(self, ctx: _Context) -> List[Dict[str, object]]:
        resolved = list(self.keys(ctx.params))
        self.keys_batched += len(resolved)
        before = self.cache_probe() if self.cache_probe is not None else 0
        fetched = list(self.table.get_many(resolved))
        if not self.keep_missing:
            fetched = [row for row in fetched if row is not None]
        if self.cache_probe is not None:
            self.blocks_cached += self.cache_probe() - before
        return self._emit(fetched)

    def _explain_fanout(self) -> Tuple[str, ...]:
        # Batched reads scatter-gather inside storage objects that route
        # point reads through the ring (``scatter_reads``); the fanout
        # rows surface that worst case — at runtime only the shards the
        # key list actually hits are walked.
        shards = _shard_count(self.table)
        if shards <= 1 or not getattr(self.table, "scatter_reads", False):
            return ()
        return tuple(f"fanout shard={i}" for i in range(shards))

    def detail(self) -> str:
        return "primary key, batched"


class IndexScan(_Access):
    """An equality probe through a secondary index — or, for relational
    composite keys, a clustered primary-key *prefix* scan.

    ``pushed`` (an optional :class:`repro.query.pushdown.PushedPredicate`)
    carries the residual conditions the storage layer can evaluate
    itself; the fetched rows arrive pre-filtered and the pruning counts
    accumulate on the node (``rows_pruned``/``blocks_skipped``).
    """

    kind = "IndexScan"
    PK_PREFIX = "pk-prefix"
    SECONDARY = "secondary-index"
    __slots__ = ("column", "value", "access", "pushed", "blocks_skipped", "rows_pruned")

    def __init__(self, table, column: str, value: Callable, table_name: str,
                 access: str = SECONDARY, wrap=None, cache_probe=None,
                 pushed=None) -> None:
        super().__init__(table, table_name, column, wrap, cache_probe)
        self.column = column
        self.value = value
        self.access = access
        self.pushed = pushed
        self.blocks_skipped = 0
        self.rows_pruned = 0

    def _execute(self, ctx: _Context) -> List[Dict[str, object]]:
        resolved = self.value(ctx.params)
        if self.pushed is not None:
            bound = self.pushed.bind(ctx.params)
            if self.access == self.PK_PREFIX:
                fetched = self.table.lookup_pk_prefix(resolved, pushed=bound)
            else:
                fetched = self.table.lookup_indexed(
                    self.column, resolved, pushed=bound
                )
            self.blocks_skipped += bound.blocks_skipped
            self.rows_pruned += bound.rows_pruned
        elif self.access == self.PK_PREFIX:
            fetched = self.table.lookup_pk_prefix(resolved)
        else:
            fetched = self.table.lookup_indexed(self.column, resolved)
        return self._emit(fetched)

    def detail(self) -> str:
        if self.pushed is not None:
            return f"{self.access}, pushed={self.pushed.describe()}"
        return self.access


class FullScan(_Access):
    """Read every live row — the path of last resort.

    With a ``pushed`` predicate the storage layer filters during the
    scan: zone-mapped columnar blocks may be skipped unread, and rows
    failing the predicate are pruned before materialization (see
    :mod:`repro.query.pushdown`).
    """

    kind = "FullScan"
    __slots__ = ("pushed", "blocks_skipped", "rows_pruned", "shard_rows")

    def __init__(self, table, table_name: str, wrap=None, pushed=None) -> None:
        super().__init__(table, table_name, None, wrap)
        self.pushed = pushed
        self.blocks_skipped = 0
        self.rows_pruned = 0
        # Cumulative rows gathered per shard id; EXPLAIN ANALYZE reads
        # this to annotate the ``fanout shard=<i>`` rows with actuals.
        self.shard_rows: Dict[int, int] = {}

    def _execute(self, ctx: _Context) -> List[Dict[str, object]]:
        if _shard_count(self.table) > 1:
            return self._emit(self._scatter_rows(ctx))
        if self.pushed is None:
            return self._emit(list(self.table.scan()))
        bound = self.pushed.bind(ctx.params)
        fetched = list(self.table.scan(pushed=bound))
        self.blocks_skipped += bound.blocks_skipped
        self.rows_pruned += bound.rows_pruned
        return self._emit(fetched)

    def _scatter_rows(self, ctx: _Context) -> List[Dict[str, object]]:
        """Morsel-parallel scan: one shard-local task per shard on the
        table's worker pool, gathered in shard order.

        Each task binds its *own* predicate (the pruning counters on a
        :class:`~repro.query.pushdown.BoundPredicate` are mutable, so
        sharing one across threads would race) and only walks its
        shard's block lists — zone-map skips stay per-shard.  The
        per-shard counters fold into this node's totals at the gather,
        and each task runs under a ``query.shard_scan`` span that
        ``Tracer.merged()`` folds across worker roots.
        """
        table, pushed, params = self.table, self.pushed, ctx.params

        def scan_one(shard_id: int):
            bound = pushed.bind(params) if pushed is not None else None
            with _TRACER.span(
                "query.shard_scan", table=self._table_name, shard=shard_id
            ):
                rows = list(table.scan_shard(shard_id, bound))
            return rows, bound

        results = _run_sharded(
            table,
            [
                (lambda shard_id=shard_id: scan_one(shard_id))
                for shard_id in range(_shard_count(table))
            ],
        )
        fetched: List[Dict[str, object]] = []
        for shard_id, (rows, bound) in enumerate(results):
            fetched.extend(rows)
            self.shard_rows[shard_id] = self.shard_rows.get(shard_id, 0) + len(rows)
            if bound is not None:
                self.blocks_skipped += bound.blocks_skipped
                self.rows_pruned += bound.rows_pruned
        return fetched

    def _explain_fanout(self) -> Tuple[str, ...]:
        shards = _shard_count(self.table)
        if shards <= 1:
            return ()
        return tuple(f"fanout shard={i}" for i in range(shards))

    def detail(self) -> str:
        if self.pushed is not None:
            return f"full scan, pushed={self.pushed.describe()}"
        return "full scan"


# ----------------------------------------------------------------------
# row-stream transforms
# ----------------------------------------------------------------------
class _Transform(PlanNode):
    __slots__ = ("child", "_detail")

    def __init__(self, child: PlanNode, detail: str) -> None:
        super().__init__()
        self.child = child
        self._detail = detail

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def detail(self) -> str:
        return self._detail

    def _account(self, rows_in: int, rows_out: int) -> None:
        self.calls += 1
        self.rows_in += rows_in
        self.rows_out += rows_out


class Filter(_Transform):
    """Keep rows satisfying a compiled ``(row, params) -> bool`` predicate."""

    kind = "Filter"
    __slots__ = ("predicate",)

    def __init__(self, child: PlanNode, predicate: Callable, detail: str) -> None:
        super().__init__(child, detail)
        self.predicate = predicate

    def _execute(self, ctx: _Context) -> List[Dict[str, object]]:
        incoming = self.child.rows(ctx)
        predicate, params = self.predicate, ctx.params
        kept = [row for row in incoming if predicate(row, params)]
        self._account(len(incoming), len(kept))
        return kept


class Project(_Transform):
    """Map each row through a compiled projection."""

    kind = "Project"
    __slots__ = ("projector",)

    def __init__(self, child: PlanNode, projector: Callable, detail: str) -> None:
        super().__init__(child, detail)
        self.projector = projector

    def _execute(self, ctx: _Context) -> List[Dict[str, object]]:
        incoming = self.child.rows(ctx)
        projector = self.projector
        out = [projector(row) for row in incoming]
        self._account(len(incoming), len(out))
        return out


class HashJoin(_Transform):
    """Inner equi-join against a probe side built per execution.

    ``probe_factory()`` returns a ``probe(key) -> rows`` callable — a
    point/index lookup for eq_ref/index joins, or a freshly built hash
    table for the general case.  ``key_of`` extracts the join key from a
    left row; ``merge`` combines a left row with a matched right row.
    """

    kind = "HashJoin"
    __slots__ = ("probe_factory", "key_of", "merge", "_table_name", "_key_desc",
                 "build_table", "build_key", "shard_rows")

    def __init__(self, child: PlanNode, probe_factory: Callable,
                 key_of: Callable, merge: Callable,
                 table_name: str, detail: str,
                 key_desc: Optional[str] = None,
                 build_table=None, build_key: Optional[str] = None) -> None:
        super().__init__(child, detail)
        self.probe_factory = probe_factory
        self.key_of = key_of
        self.merge = merge
        self._table_name = table_name
        self._key_desc = key_desc
        # Optional declarative build-side spec: when the probe side is a
        # full-relation hash build over a sharded table, the kernel can
        # build per-shard partial hash tables in parallel and merge them,
        # instead of calling the single-threaded ``probe_factory``.
        self.build_table = build_table
        self.build_key = build_key
        # Cumulative build-side rows hashed per shard id (see FullScan).
        self.shard_rows: Dict[int, int] = {}

    @property
    def table_name(self) -> Optional[str]:
        return self._table_name

    @property
    def key_desc(self) -> Optional[str]:
        return self._key_desc

    def _probe(self):
        table, key_column = self.build_table, self.build_key
        if table is None or key_column is None or _shard_count(table) <= 1:
            return self.probe_factory()

        def build_one(shard_id: int) -> Dict[object, List]:
            with _TRACER.span(
                "query.shard_scan", table=self._table_name, shard=shard_id
            ):
                partial: Dict[object, List] = {}
                for row in table.scan_shard(shard_id):
                    key = row.get(key_column)
                    if key is not None:
                        partial.setdefault(key, []).append(row)
            return partial

        partials = _run_sharded(
            table,
            [
                (lambda shard_id=shard_id: build_one(shard_id))
                for shard_id in range(_shard_count(table))
            ],
        )
        build: Dict[object, List] = {}
        for shard_id, partial in enumerate(partials):
            # shard order keeps the merge deterministic
            built = 0
            for key, rows in partial.items():
                build.setdefault(key, []).extend(rows)
                built += len(rows)
            self.shard_rows[shard_id] = self.shard_rows.get(shard_id, 0) + built
        return lambda key: build.get(key, ())

    def _explain_fanout(self) -> Tuple[str, ...]:
        table = self.build_table
        if table is None or self.build_key is None:
            return ()
        shards = _shard_count(table)
        if shards <= 1:
            return ()
        return tuple(f"fanout shard={i}" for i in range(shards))

    def _execute(self, ctx: _Context) -> List[Dict[str, object]]:
        incoming = self.child.rows(ctx)
        probe = self._probe()
        key_of, merge = self.key_of, self.merge
        joined: List[Dict[str, object]] = []
        for row in incoming:
            key = key_of(row)
            if key is None:
                continue
            for right in probe(key):
                joined.append(merge(row, right))
        self._account(len(incoming), len(joined))
        return joined


class Aggregate(_Transform):
    """Fold the child's rows into aggregate output rows.

    The fold callable ``(rows, params) -> rows`` carries the dialect's
    grouping/labelling rules, compiled by the engine front-end from the
    shared :func:`repro.query.expr.evaluate_aggregate` primitive.

    When the engine also supplies a :class:`PartialAggregate` and the
    child is a :class:`FullScan` over a sharded table, the fold
    decomposes: each shard folds its own rows to a partial state in a
    worker (``fold_shard``), and the gather merges the states
    (``merge``) — the classic two-phase parallel aggregate.  Count-only
    partials additionally skip row materialization entirely when the
    table exposes ``count_shard``.
    """

    kind = "Aggregate"
    __slots__ = ("fold", "partial")

    def __init__(self, child: PlanNode, fold: Callable, detail: str,
                 partial: Optional["PartialAggregate"] = None) -> None:
        super().__init__(child, detail)
        self.fold = fold
        self.partial = partial

    def _execute(self, ctx: _Context) -> List[Dict[str, object]]:
        if (
            self.partial is not None
            and isinstance(self.child, FullScan)
            and _shard_count(self.child.table) > 1
        ):
            return self._execute_scatter(ctx)
        incoming = self.child.rows(ctx)
        out = self.fold(incoming, ctx.params)
        self._account(len(incoming), len(out))
        return out

    def _execute_scatter(self, ctx: _Context) -> List[Dict[str, object]]:
        """Scatter ``fold_shard`` across the child scan's shards, merge
        the partial states at the gather.

        The child FullScan never materializes a full-relation row list:
        each worker folds its shard's rows to a state immediately (and
        the count-only fast path asks the table to count without
        decoding rows at all).  The child's counters are accounted here
        so EXPLAIN/stats stay truthful about rows scanned and blocks
        skipped per shard.
        """
        child, partial, params = self.child, self.partial, ctx.params
        table, pushed, wrap = child.table, child.pushed, child.wrap
        use_count = (
            partial.count_only
            and wrap is None
            and hasattr(table, "count_shard")
        )

        def fold_one(shard_id: int):
            bound = pushed.bind(params) if pushed is not None else None
            with _TRACER.span(
                "query.shard_scan", table=child.table_name, shard=shard_id
            ):
                if use_count:
                    state = table.count_shard(shard_id, bound)
                    rows_seen = state
                else:
                    rows = list(table.scan_shard(shard_id, bound))
                    if wrap is not None:
                        rows = [wrap(row) for row in rows]
                    state = partial.fold_shard(rows, params)
                    rows_seen = len(rows)
            return state, rows_seen, bound

        results = _run_sharded(
            table,
            [
                (lambda shard_id=shard_id: fold_one(shard_id))
                for shard_id in range(_shard_count(table))
            ],
        )
        states: List[object] = []
        total_rows = 0
        for shard_id, (state, rows_seen, bound) in enumerate(results):
            states.append(state)
            total_rows += rows_seen
            child.shard_rows[shard_id] = child.shard_rows.get(shard_id, 0) + rows_seen
            if bound is not None:
                child.blocks_skipped += bound.blocks_skipped
                child.rows_pruned += bound.rows_pruned
        child.calls += 1
        child.rows_out += total_rows
        out = partial.merge(states, params)
        self._account(total_rows, len(out))
        return out


class Sort(_Transform):
    """Stable sort by a compiled key (NULLs last ascending)."""

    kind = "Sort"
    __slots__ = ("key", "descending")

    def __init__(self, child: PlanNode, key: Callable, descending: bool, detail: str) -> None:
        super().__init__(child, detail)
        self.key = key
        self.descending = descending

    def _execute(self, ctx: _Context) -> List[Dict[str, object]]:
        incoming = self.child.rows(ctx)
        out = sorted(incoming, key=self.key, reverse=self.descending)
        self._account(len(incoming), len(out))
        return out

    def detail(self) -> str:
        return f"{self._detail} {'DESC' if self.descending else 'ASC'}"


class Limit(_Transform):
    """Truncate the stream to the first ``count`` rows."""

    kind = "Limit"
    __slots__ = ("count",)

    def __init__(self, child: PlanNode, count: int) -> None:
        super().__init__(child, str(count))
        self.count = count

    def _execute(self, ctx: _Context) -> List[Dict[str, object]]:
        incoming = self.child.rows(ctx)
        out = incoming[: self.count]
        self._account(len(incoming), len(out))
        return out


# ----------------------------------------------------------------------
# the executable unit
# ----------------------------------------------------------------------
class Plan:
    """An operator tree plus the validity guards the plan cache checks.

    ``guards`` are zero-argument callables that must all return True for
    a cached plan to be replayed (the engine binding closes them over
    the resolved tables and their index signatures).  ``meta`` is an
    engine-private slot for companion compile results (projection
    templates, limits) that ride along with the cached plan.
    """

    __slots__ = ("root", "guards", "meta")

    def __init__(self, root: PlanNode, guards: Sequence[Callable[[], bool]] = (),
                 meta=None) -> None:
        self.root = root
        self.guards = tuple(guards)
        self.meta = meta

    def run(self, params: Sequence = (), timed: bool = False) -> List[Dict[str, object]]:
        return self.root.run(params, timed)

    def valid(self) -> bool:
        return all(guard() for guard in self.guards)

    def explain(self) -> List[Dict[str, object]]:
        return self.root.explain()

    def operator_stats(self) -> List[OperatorStats]:
        return self.root.operator_stats()

    def reset_counters(self) -> None:
        self.root.reset_counters()

    def __repr__(self) -> str:
        chain = " <- ".join(row["node"] for row in self.explain())
        return f"Plan({chain})"
