"""Shared worker-count resolution and the process-wide query thread pool.

``REPRO_WORKERS`` historically resolved in two places — the parallel
DWARF builder and the pipeline docstring both described the same
"explicit argument > environment > CPU count" rule.  This module is the
single home of that rule (:func:`resolve_workers`) plus the lazily
created thread pool the sharded read path fans out on
(:func:`map_tasks`).

The pool is deliberately a *thread* pool: scatter-gather query tasks
touch live engine objects (memtables, SSTable block caches) that cannot
be pickled to a process pool, and each shard's task holds the GIL only
while doing real decode work.  ``REPRO_WORKERS=1`` (or a single task)
keeps execution on the calling thread — the serial path stays exactly
the pre-sharding code path.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

__all__ = ["resolve_workers", "map_tasks", "shutdown_pool"]

_POOL: Optional[ThreadPoolExecutor] = None
_POOL_SIZE = 0
_POOL_LOCK = threading.Lock()


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``REPRO_WORKERS`` > CPU count."""
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if env:
            workers = int(env)
        else:
            workers = os.cpu_count() or 1
    return max(1, int(workers))


def _get_pool(size: int) -> ThreadPoolExecutor:
    """The shared pool, recreated when the resolved size changes (tests
    flip ``REPRO_WORKERS`` between runs; a stale pool would pin the old
    width)."""
    global _POOL, _POOL_SIZE
    with _POOL_LOCK:
        if _POOL is None or _POOL_SIZE != size:
            if _POOL is not None:
                _POOL.shutdown(wait=False)
            _POOL = ThreadPoolExecutor(
                max_workers=size, thread_name_prefix="repro-query"
            )
            _POOL_SIZE = size
        return _POOL


def shutdown_pool() -> None:
    """Tear the shared pool down (interpreter exit, tests)."""
    global _POOL, _POOL_SIZE
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
            _POOL = None
            _POOL_SIZE = 0


def map_tasks(tasks: Sequence[Callable[[], object]],
              workers: Optional[int] = None) -> List[object]:
    """Run ``tasks`` (zero-argument callables) and return their results
    in task order.

    Serial — on the calling thread, preserving today's single-thread
    semantics exactly — when the resolved worker count is 1 or there is
    at most one task; otherwise fanned out on the shared thread pool.
    The first task exception propagates to the caller either way.
    """
    resolved = resolve_workers(workers)
    if resolved <= 1 or len(tasks) <= 1:
        return [task() for task in tasks]
    pool = _get_pool(resolved)
    futures = [pool.submit(task) for task in tasks]
    return [future.result() for future in futures]
