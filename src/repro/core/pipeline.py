"""The end-to-end cube construction pipeline (paper Fig. overview, §1–4).

``CubeConstructionPipeline`` chains the whole system: harvested XML/JSON
documents → ETL (records → fact tuples) → DWARF construction → storage
through a bi-directional mapper, and back (reload a stored cube into
memory for querying).  It also exposes the incremental path the paper's
conclusion motivates: build a delta cube from a new stream window and
merge it into the standing cube.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.errors import PipelineError
from repro.core.schema import CubeSchema


class PipelineReport:
    """What one :meth:`CubeConstructionPipeline.run` did."""

    __slots__ = (
        "n_documents", "n_records", "n_facts", "n_nodes", "n_cells",
        "schema_id", "stored_mb",
    )

    def __init__(self, n_documents, n_records, n_facts, n_nodes, n_cells,
                 schema_id, stored_mb) -> None:
        self.n_documents = n_documents
        self.n_records = n_records
        self.n_facts = n_facts
        self.n_nodes = n_nodes
        self.n_cells = n_cells
        self.schema_id = schema_id
        self.stored_mb = stored_mb

    def __repr__(self) -> str:
        return (
            f"PipelineReport(docs={self.n_documents}, records={self.n_records}, "
            f"facts={self.n_facts}, nodes={self.n_nodes}, cells={self.n_cells}, "
            f"schema_id={self.schema_id}, stored_mb={self.stored_mb})"
        )


class CubeConstructionPipeline:
    """Documents in, stored DWARF cube out.

    Parameters
    ----------
    etl:
        An :class:`~repro.etl.pipeline.EtlPipeline` bound to the cube
        schema (the smart-city modules ship ready-made ones).
    mapper:
        A :class:`~repro.mapping.base.CubeMapper`; ``install()`` is called
        lazily on first use.  ``None`` keeps cubes in memory only.
    coalesce:
        Suffix coalescing toggle, passed to the DWARF builder.
    workers:
        Construction worker count for the partitioned parallel builder.
        ``None`` resolves via :func:`repro.core.workers.resolve_workers`
        (``REPRO_WORKERS`` > CPU count); ``1`` pins the classic serial
        scan.
    """

    def __init__(self, etl, mapper=None, coalesce: bool = True,
                 workers: Optional[int] = None) -> None:
        self.etl = etl
        self.mapper = mapper
        self.coalesce = coalesce
        self.workers = workers
        self._installed = False
        self.last_cube = None

    @property
    def schema(self) -> CubeSchema:
        return self.etl.mapping.schema

    # ------------------------------------------------------------------
    def build(self, documents: Iterable):
        """Documents → in-memory DWARF cube (no storage)."""
        from repro.dwarf.parallel import ParallelDwarfBuilder

        facts = self.etl.extract(documents)
        if len(facts) == 0:
            raise PipelineError("no fact tuples extracted from the documents")
        builder = ParallelDwarfBuilder(
            self.schema, coalesce=self.coalesce, workers=self.workers
        )
        cube = builder.build(facts)
        self.last_cube = cube
        return cube

    def run(self, documents: Iterable, is_cube: bool = False) -> PipelineReport:
        """The full paper pipeline: build the cube and store it."""
        cube = self.build(documents)
        schema_id = None
        stored_mb = None
        if self.mapper is not None:
            self._ensure_installed()
            schema_id = self.mapper.store(cube, is_cube=is_cube)
            stored_mb = self.mapper.info(schema_id).size_as_mb
        stats = cube.stats
        return PipelineReport(
            n_documents=self.etl.n_documents,
            n_records=self.etl.n_records,
            n_facts=cube.n_source_tuples,
            n_nodes=stats.node_count,
            n_cells=stats.cell_count,
            schema_id=schema_id,
            stored_mb=stored_mb,
        )

    def update(self, documents: Iterable):
        """Incremental maintenance: merge a delta window into the last cube.

        Builds a small DWARF over ``documents`` and merges it with
        :attr:`last_cube` (paper §7: "our current focus is on cube
        updates").  Returns the merged cube, which becomes the new
        standing cube.
        """
        from repro.dwarf.builder import DwarfBuilder, merge_cubes

        if self.last_cube is None:
            return self.build(documents)
        facts = self.etl.extract(documents)
        if len(facts) == 0:
            return self.last_cube
        delta = DwarfBuilder(self.schema, coalesce=self.coalesce).build(facts)
        self.last_cube = merge_cubes(self.last_cube, delta)
        return self.last_cube

    def reload(self, schema_id: int):
        """Rebuild a stored cube from the mapper (the reverse direction)."""
        if self.mapper is None:
            raise PipelineError("pipeline has no mapper to reload from")
        self._ensure_installed()
        return self.mapper.load(schema_id)

    def _ensure_installed(self) -> None:
        if not self._installed:
            self.mapper.install()
            self._installed = True

    def __repr__(self) -> str:
        mapper_name = self.mapper.name if self.mapper is not None else None
        return (
            f"CubeConstructionPipeline(schema={self.schema.name!r}, "
            f"mapper={mapper_name!r})"
        )
