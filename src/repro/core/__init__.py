"""Core vocabulary: schemas, fact tuples, aggregators and the pipeline."""

from repro.core.aggregators import AVG, COUNT, MAX, MIN, SUM, Aggregator
from repro.core.errors import (
    PipelineError,
    QueryError,
    ReproError,
    SchemaError,
    TupleShapeError,
)
from repro.core.schema import CubeSchema, Dimension
from repro.core.tuples import FactTuple, TupleSet

__all__ = [
    "AVG",
    "Aggregator",
    "COUNT",
    "CubeSchema",
    "Dimension",
    "FactTuple",
    "MAX",
    "MIN",
    "PipelineError",
    "QueryError",
    "ReproError",
    "SUM",
    "SchemaError",
    "TupleSet",
    "TupleShapeError",
]
