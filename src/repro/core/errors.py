"""Exception hierarchy shared by every ``repro`` subsystem.

Each substrate (the NoSQL engine, the relational engine, the DWARF core,
the ETL pipeline and the mappers) derives its own errors from
:class:`ReproError` so that callers can catch one base class at the
pipeline boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A cube schema definition is inconsistent or incomplete."""


class TupleShapeError(ReproError):
    """A fact tuple does not match the shape declared by its schema."""


class QueryError(ReproError):
    """A cube query is malformed or references unknown dimensions."""


class PipelineError(ReproError):
    """A cube-construction pipeline stage failed."""
