"""Cube schema definitions.

A :class:`CubeSchema` declares the ordered list of dimensions, the measure
and the aggregate function of a cube, mirroring the tuple shape the paper
feeds into DWARF construction::

    (dimension_1, dimension_2, ..., dimension_n, measure)

Dimension order matters in a DWARF: earlier dimensions sit nearer the root
and the paper's datasets all use 8 dimensions.  A dimension may carry an
optional ``dimension_table`` name, which the NoSQL mapper copies into the
``dimension_table_name`` column of every cell at that level (Fig. 3 of the
paper).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.aggregators import SUM, Aggregator
from repro.core.errors import SchemaError


class Dimension:
    """One dimension of a cube.

    Parameters
    ----------
    name:
        Dimension name, unique within a schema.
    dimension_table:
        Optional name of an external dimension table holding attributes of
        the members of this dimension; recorded per-cell on storage.
    hierarchy:
        Optional list of level names, coarsest first, for the hierarchical
        DWARF extension (paper §6, ref [11]).  A plain dimension has a
        single implicit level equal to its name.
    """

    __slots__ = ("name", "dimension_table", "hierarchy")

    def __init__(
        self,
        name: str,
        dimension_table: Optional[str] = None,
        hierarchy: Optional[Sequence[str]] = None,
    ) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError(f"dimension name must be a non-empty string, got {name!r}")
        self.name = name
        self.dimension_table = dimension_table
        self.hierarchy: Tuple[str, ...] = tuple(hierarchy) if hierarchy else (name,)
        if len(set(self.hierarchy)) != len(self.hierarchy):
            raise SchemaError(f"dimension {name!r}: duplicate hierarchy levels")

    def __repr__(self) -> str:
        extra = f", dimension_table={self.dimension_table!r}" if self.dimension_table else ""
        return f"Dimension({self.name!r}{extra})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Dimension)
            and self.name == other.name
            and self.dimension_table == other.dimension_table
            and self.hierarchy == other.hierarchy
        )

    def __hash__(self) -> int:
        return hash((self.name, self.dimension_table, self.hierarchy))


class CubeSchema:
    """Ordered dimensions + measure + aggregate function of one cube."""

    __slots__ = ("name", "dimensions", "measure", "aggregator", "_index")

    def __init__(
        self,
        name: str,
        dimensions: Iterable,
        measure: str = "measure",
        aggregator: Aggregator = SUM,
    ) -> None:
        if not name:
            raise SchemaError("cube schema needs a non-empty name")
        dims: List[Dimension] = []
        for dim in dimensions:
            dims.append(dim if isinstance(dim, Dimension) else Dimension(str(dim)))
        if not dims:
            raise SchemaError("cube schema needs at least one dimension")
        names = [d.name for d in dims]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate dimension names in schema {name!r}: {names}")
        if measure in set(names):
            raise SchemaError(f"measure {measure!r} collides with a dimension name")
        if isinstance(aggregator, str):
            aggregator = Aggregator.get(aggregator)
        self.name = name
        self.dimensions: Tuple[Dimension, ...] = tuple(dims)
        self.measure = measure
        self.aggregator = aggregator
        self._index = {d.name: i for i, d in enumerate(self.dimensions)}

    # -- introspection ----------------------------------------------------
    @property
    def dimension_names(self) -> Tuple[str, ...]:
        return tuple(d.name for d in self.dimensions)

    @property
    def n_dimensions(self) -> int:
        return len(self.dimensions)

    def dimension_index(self, name: str) -> int:
        """Position of dimension ``name`` (root = 0)."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no dimension {name!r}; "
                f"dimensions are {self.dimension_names}"
            ) from None

    def dimension(self, name: str) -> Dimension:
        return self.dimensions[self.dimension_index(name)]

    def __len__(self) -> int:
        return self.n_dimensions

    def __repr__(self) -> str:
        return (
            f"CubeSchema({self.name!r}, dimensions={list(self.dimension_names)}, "
            f"measure={self.measure!r}, aggregator={self.aggregator.name!r})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CubeSchema)
            and self.name == other.name
            and self.dimensions == other.dimensions
            and self.measure == other.measure
            and self.aggregator.name == other.aggregator.name
        )

    def __hash__(self) -> int:
        return hash((self.name, self.dimensions, self.measure, self.aggregator.name))
