"""Aggregate functions applied to DWARF cube measures.

A DWARF cube stores one aggregate per cell.  The classic DWARF paper (and
the EDBT'16 system reproduced here) uses SUM; the registry below also
provides the other distributive/algebraic functions commonly required by
smart-city dashboards so that cubes can be built over any of them.

An aggregator must be *decomposable*: ``merge`` combines two already
aggregated states, which is what SuffixCoalesce relies on when it merges
sub-dwarfs to build ALL cells.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple, Union

from repro.core.errors import SchemaError

Number = Union[int, float]


class Aggregator:
    """A named, decomposable aggregate function.

    The aggregator operates on *states*.  For SUM/COUNT/MIN/MAX the state
    is the running number itself; for AVG the state is a ``(total, n)``
    pair and :meth:`finalize` turns the state into the reported value.
    """

    #: Registry of named aggregators, populated at import time.
    _registry: Dict[str, "Aggregator"] = {}

    def __init__(self, name: str) -> None:
        self.name = name

    # -- state protocol -------------------------------------------------
    def lift(self, measure: Number):
        """Turn one raw measure into an aggregation state."""
        raise NotImplementedError

    def merge(self, left, right):
        """Combine two aggregation states."""
        raise NotImplementedError

    def finalize(self, state) -> Number:
        """Turn a state into the value reported to query clients."""
        return state

    # -- conveniences ----------------------------------------------------
    def aggregate(self, measures: Iterable[Number]) -> Number:
        """Aggregate raw measures directly (used by tests as an oracle)."""
        state = None
        for measure in measures:
            lifted = self.lift(measure)
            state = lifted if state is None else self.merge(state, lifted)
        if state is None:
            raise SchemaError(f"{self.name}: cannot aggregate zero measures")
        return self.finalize(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Aggregator({self.name!r})"

    # -- registry --------------------------------------------------------
    @classmethod
    def register(cls, aggregator: "Aggregator") -> "Aggregator":
        cls._registry[aggregator.name] = aggregator
        return aggregator

    @classmethod
    def get(cls, name: str) -> "Aggregator":
        try:
            return cls._registry[name.lower()]
        except KeyError:
            known = ", ".join(sorted(cls._registry))
            raise SchemaError(f"unknown aggregator {name!r} (known: {known})") from None

    @classmethod
    def names(cls) -> Tuple[str, ...]:
        return tuple(sorted(cls._registry))


class _Sum(Aggregator):
    def lift(self, measure: Number) -> Number:
        return measure

    def merge(self, left: Number, right: Number) -> Number:
        return left + right


class _Count(Aggregator):
    def lift(self, measure: Number) -> int:
        return 1

    def merge(self, left: int, right: int) -> int:
        return left + right


class _Min(Aggregator):
    def lift(self, measure: Number) -> Number:
        return measure

    def merge(self, left: Number, right: Number) -> Number:
        return left if left <= right else right


class _Max(Aggregator):
    def lift(self, measure: Number) -> Number:
        return measure

    def merge(self, left: Number, right: Number) -> Number:
        return left if left >= right else right


class _Avg(Aggregator):
    """Algebraic mean; state is ``(total, count)``."""

    def lift(self, measure: Number) -> Tuple[Number, int]:
        return (measure, 1)

    def merge(self, left: Tuple[Number, int], right: Tuple[Number, int]):
        return (left[0] + right[0], left[1] + right[1])

    def finalize(self, state: Tuple[Number, int]) -> float:
        total, count = state
        return total / count


SUM = Aggregator.register(_Sum("sum"))
COUNT = Aggregator.register(_Count("count"))
MIN = Aggregator.register(_Min("min"))
MAX = Aggregator.register(_Max("max"))
AVG = Aggregator.register(_Avg("avg"))
