"""Fact tuples: the input format of DWARF construction.

The paper (Fig. 1) feeds the cube builder a list of tuples of the form
``(dimension_1, ..., dimension_n, measure)``.  :class:`FactTuple` is a thin
immutable wrapper over that shape and :class:`TupleSet` is a validated,
sortable collection of them bound to a :class:`~repro.core.schema.CubeSchema`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple, Union

from repro.core.errors import TupleShapeError
from repro.core.schema import CubeSchema

Number = Union[int, float]
DimensionKey = Union[str, int]


class FactTuple:
    """One fact: an ordered dimension-key vector plus a numeric measure."""

    __slots__ = ("keys", "measure")

    def __init__(self, keys: Sequence[DimensionKey], measure: Number) -> None:
        self.keys: Tuple[DimensionKey, ...] = tuple(keys)
        self.measure = measure

    @classmethod
    def from_row(cls, row: Sequence) -> "FactTuple":
        """Build from a flat ``(d1, ..., dn, measure)`` row as in Fig. 1."""
        if len(row) < 2:
            raise TupleShapeError(f"fact row needs >=1 dimension and a measure, got {row!r}")
        return cls(tuple(row[:-1]), row[-1])

    def as_row(self) -> Tuple:
        """Flatten back to the paper's ``(d1, ..., dn, measure)`` shape."""
        return self.keys + (self.measure,)

    def __len__(self) -> int:
        return len(self.keys)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FactTuple)
            and self.keys == other.keys
            and self.measure == other.measure
        )

    def __hash__(self) -> int:
        return hash((self.keys, self.measure))

    def __repr__(self) -> str:
        inner = ", ".join(repr(k) for k in self.as_row())
        return f"FactTuple({inner})"


class TupleSet:
    """A schema-validated collection of fact tuples.

    DWARF construction requires its input sorted by dimension order; the
    builder calls :meth:`sorted` rather than assuming the caller did.  Keys
    of mixed types within one dimension are ordered by ``(type name, value)``
    so that heterogeneous smart-city feeds still sort deterministically.
    """

    __slots__ = ("schema", "_tuples", "_known_sorted")

    def __init__(self, schema: CubeSchema, tuples: Iterable = ()) -> None:
        self.schema = schema
        self._tuples: List[FactTuple] = []
        # True once this set has been verified (or constructed) in sorted
        # order; reset by mutation.  Lets repeated builds over one sorted
        # set skip the O(n·d) re-verification.
        self._known_sorted = False
        self.extend(tuples)

    @classmethod
    def _from_sorted_facts(cls, schema: CubeSchema, facts: List[FactTuple]) -> "TupleSet":
        """Internal: adopt pre-validated, pre-sorted facts without copying."""
        clone = cls(schema)
        clone._tuples = facts
        clone._known_sorted = True
        return clone

    # -- mutation ----------------------------------------------------------
    def append(self, item: Union[FactTuple, Sequence]) -> None:
        fact = item if isinstance(item, FactTuple) else FactTuple.from_row(item)
        if len(fact) != self.schema.n_dimensions:
            raise TupleShapeError(
                f"schema {self.schema.name!r} expects {self.schema.n_dimensions} "
                f"dimensions, tuple has {len(fact)}: {fact!r}"
            )
        self._tuples.append(fact)
        self._known_sorted = False

    def extend(self, items: Iterable) -> None:
        for item in items:
            self.append(item)

    # -- access -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[FactTuple]:
        return iter(self._tuples)

    def __getitem__(self, index: int) -> FactTuple:
        return self._tuples[index]

    def rows(self) -> Iterator[Tuple]:
        """Iterate the flat ``(d1, ..., dn, measure)`` rows."""
        return (fact.as_row() for fact in self._tuples)

    def sorted(self) -> "TupleSet":
        """Return a new TupleSet ordered by dimension keys (root first).

        Sorting decorates each fact with memoised member keys (see
        :func:`member_sort_key`): feeds repeat the same members millions of
        times, and sharing one key tuple per distinct member makes tuple
        comparisons hit CPython's identity fast path instead of re-comparing
        equal strings.
        """
        key_of = make_member_key_memo()
        decorated = sorted(
            (tuple(map(key_of, fact.keys)), index, fact)
            for index, fact in enumerate(self._tuples)
        )
        clone = TupleSet(self.schema)
        clone._tuples = [fact for _, _, fact in decorated]
        clone._known_sorted = True
        return clone

    def is_sorted(self) -> bool:
        if self._known_sorted:
            return True
        key_of = make_member_key_memo()
        previous = None
        for fact in self._tuples:
            current = tuple(map(key_of, fact.keys))
            if previous is not None and current < previous:
                return False
            previous = current
        self._known_sorted = True
        return True

    def __repr__(self) -> str:
        return f"TupleSet(schema={self.schema.name!r}, n={len(self)})"


def member_sort_key(key) -> Tuple[str, object]:
    """Total order for dimension members of possibly mixed types.

    Members order by ``(type name, value)`` so heterogeneous feeds sort
    deterministically.  Float NaN — the one value unequal to itself —
    would otherwise poison comparison sorts, so every NaN collapses onto
    a single key that orders after all ordinary floats.
    """
    if key != key:  # NaN is the only scalar that is unequal to itself
        return (type(key).__name__ + "~nan", 0)
    return (type(key).__name__, key)


def make_member_key_memo():
    """A memoising ``member_sort_key``: one shared key tuple per member.

    The memo is two-level (type name, then value) because a flat dict
    would collapse ``1``, ``1.0`` and ``True`` onto one entry.
    """
    memos: dict = {}

    def key_of(member):
        inner = memos.get(type(member).__name__)
        if inner is None:
            inner = memos[type(member).__name__] = {}
        cached = inner.get(member)
        if cached is None:
            cached = inner[member] = member_sort_key(member)
        return cached

    return key_of


def _sort_key(keys: Sequence[DimensionKey]) -> Tuple:
    """Total order over possibly mixed-type dimension keys."""
    return tuple(member_sort_key(k) for k in keys)
