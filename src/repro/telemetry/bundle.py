"""Flight-recorder debug bundles: one JSON artifact capturing a run.

A bundle freezes everything needed to diagnose a run offline: the
metrics snapshot, merged span tree, slow-op log (with drop count), the
query log and its fingerprint profiles, plan-cache entries, cube epoch
rows, the shard layout, and every ``REPRO_*`` environment knob.

The telemetry package is a leaf (REPRO005), so engine-side state
(plan-cache entries, epoch rows, shard layout) arrives here already
serialized by the CLI layer — this module only assembles, validates and
reloads the artifact.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.telemetry.export import snapshot
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.querylog import QueryLog
from repro.telemetry.trace import Tracer

#: Bump on any backwards-incompatible change to the bundle layout.
BUNDLE_SCHEMA_VERSION = 1

# Required top-level keys and their types; ``validate_bundle`` is a
# stdlib-only structural check, not a full JSON-Schema validator.
_BUNDLE_SHAPE: Dict[str, type] = {
    "schema_version": int,
    "telemetry": dict,
    "query_log": dict,
    "plan_cache": list,
    "epochs": list,
    "shards": dict,
    "env": dict,
}

_TELEMETRY_SHAPE: Dict[str, type] = {
    "metrics": list,
    "spans": list,
    "slow_ops": list,
    "slow_ops_dropped": int,
}

_QUERY_LOG_SHAPE: Dict[str, type] = {
    "records": list,
    "profiles": list,
    "dropped": int,
    "max_records": int,
}


def collect_env() -> Dict[str, str]:
    """Every ``REPRO_*`` environment variable currently set."""
    return {
        key: value
        for key, value in sorted(os.environ.items())
        if key.startswith("REPRO_")
    }


def build_bundle(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    query_log: Optional[QueryLog] = None,
    plan_cache: Sequence[Dict[str, Any]] = (),
    epochs: Sequence[Dict[str, Any]] = (),
    shards: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a schema-versioned bundle from live telemetry state."""
    if query_log is None:
        log_section: Dict[str, Any] = {
            "records": [],
            "profiles": [],
            "dropped": 0,
            "max_records": 0,
        }
    else:
        log_section = {
            "records": query_log.as_dicts(),
            "profiles": query_log.profiles(),
            "dropped": query_log.dropped,
            "max_records": query_log.max_records,
        }
    return {
        "schema_version": BUNDLE_SCHEMA_VERSION,
        "telemetry": snapshot(registry, tracer),
        "query_log": log_section,
        "plan_cache": list(plan_cache),
        "epochs": list(epochs),
        "shards": dict(shards or {}),
        "env": collect_env(),
    }


def _check_shape(name: str, section: Any, shape: Dict[str, type]) -> List[str]:
    errors: List[str] = []
    for key, expected in shape.items():
        if key not in section:
            errors.append(f"{name}: missing key {key!r}")
        elif not isinstance(section[key], expected):
            errors.append(
                f"{name}.{key}: expected {expected.__name__}, "
                f"got {type(section[key]).__name__}"
            )
    return errors


def validate_bundle(bundle: Dict[str, Any]) -> None:
    """Raise ``ValueError`` listing every structural problem found."""
    if not isinstance(bundle, dict):
        raise ValueError(f"bundle must be a dict, got {type(bundle).__name__}")
    errors = _check_shape("bundle", bundle, _BUNDLE_SHAPE)
    version = bundle.get("schema_version")
    if isinstance(version, int) and version != BUNDLE_SCHEMA_VERSION:
        errors.append(
            f"bundle: schema_version {version} unsupported "
            f"(expected {BUNDLE_SCHEMA_VERSION})"
        )
    if isinstance(bundle.get("telemetry"), dict):
        errors.extend(_check_shape("telemetry", bundle["telemetry"], _TELEMETRY_SHAPE))
    if isinstance(bundle.get("query_log"), dict):
        errors.extend(_check_shape("query_log", bundle["query_log"], _QUERY_LOG_SHAPE))
    if errors:
        raise ValueError("invalid debug bundle: " + "; ".join(errors))


def bundle_to_json(bundle: Dict[str, Any], indent: int = 2) -> str:
    return json.dumps(bundle, indent=indent, sort_keys=False)


def from_bundle(source: Union[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Load and validate a bundle from JSON text or an already-parsed dict."""
    bundle = json.loads(source) if isinstance(source, str) else source
    validate_bundle(bundle)
    return bundle
