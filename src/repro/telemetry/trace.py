"""Hierarchical tracing: nested spans with wall/CPU time, plus a slow-op log.

A span measures one named phase (``dwarf.build``, ``nosqldb.flush``, ...)
and nests under whatever span is open on the *same thread* — each thread
keeps its own stack, so worker-pool spans become independent roots that
:meth:`Tracer.merged` folds together by name path afterwards.

When tracing is disabled (the default), :meth:`Tracer.span` returns a
shared no-op context manager after a single attribute check.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.metrics import get_registry

_DISABLED = ("", "0", "false", "no", "off")

# Slow-op entries discarded past MAX_SLOW_OPS (oldest-first truncation).
# The tracer also keeps its own always-on ``slow_ops_dropped`` count so
# the loss is visible even when metrics are gated off.
_M_SLOW_OPS_DROPPED = get_registry().counter(
    "telemetry_slow_ops_dropped_total",
    "slow-op log entries discarded by the retention cap",
)

#: Hard cap on recorded spans per tracer; past it new spans become no-ops
#: (a runaway per-row span cannot exhaust memory).
MAX_SPANS = 100_000

#: Cap on retained slow-op entries (oldest dropped first).
MAX_SLOW_OPS = 200

DEFAULT_SLOW_MS = 100.0


def _env_enabled(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in _DISABLED


def _env_slow_ms() -> float:
    raw = os.environ.get("REPRO_SLOW_MS", "").strip()
    if not raw:
        return DEFAULT_SLOW_MS
    try:
        return float(raw)
    except ValueError:
        return DEFAULT_SLOW_MS


class Span:
    """One timed phase.  Use as a context manager via :meth:`Tracer.span`."""

    __slots__ = (
        "name",
        "attrs",
        "wall_s",
        "cpu_s",
        "children",
        "_tracer",
        "_t0_wall",
        "_t0_cpu",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.children: List["Span"] = []
        self._t0_wall = 0.0
        self._t0_cpu = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute to an open span (no-op on the disabled path)."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._t0_wall = time.perf_counter()
        self._t0_cpu = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = time.perf_counter() - self._t0_wall
        self.cpu_s = time.process_time() - self._t0_cpu
        self._tracer._finish(self)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.as_dict() for child in self.children]
        return out


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, Any] = {}
    wall_s = 0.0
    cpu_s = 0.0

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Per-process span collector with thread-local nesting."""

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self.enabled = _env_enabled("REPRO_TRACE") if enabled is None else enabled
        self.slow_ms = _env_slow_ms()
        self._local = threading.local()
        self._lock = threading.Lock()
        self.roots: List[Span] = []
        self.slow_ops: List[Dict[str, Any]] = []
        self.slow_ops_dropped = 0
        self._n_spans = 0

    # -- recording ------------------------------------------------------
    def span(self, __name: str, **attrs: Any):
        """Open a nested span; returns the no-op singleton when disabled.

        The span name is positional-only so attribute keys like ``name``
        or ``schema`` never collide with it.
        """
        name = __name
        if not self.enabled:
            return _NOOP_SPAN
        with self._lock:
            if self._n_spans >= MAX_SPANS:
                return _NOOP_SPAN
            self._n_spans += 1
        span = Span(self, name, attrs)
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        # Pop down to (and including) the finished span; tolerate spans
        # closed out of order rather than corrupting the stack.
        if stack:
            while stack:
                top = stack.pop()
                if top is span:
                    break
        if span.wall_s * 1000.0 >= self.slow_ms:
            with self._lock:
                self.slow_ops.append(
                    {
                        "name": span.name,
                        "wall_ms": span.wall_s * 1000.0,
                        "cpu_ms": span.cpu_s * 1000.0,
                        "attrs": dict(span.attrs),
                    }
                )
                overflow = len(self.slow_ops) - MAX_SLOW_OPS
                if overflow > 0:
                    del self.slow_ops[:overflow]
                    self.slow_ops_dropped += overflow
                    _M_SLOW_OPS_DROPPED.inc(overflow)

    # -- inspection -----------------------------------------------------
    def span_count(self) -> int:
        return self._n_spans

    def merged(self) -> List[Dict[str, Any]]:
        """Aggregate the span forest by name path.

        Spans with the same name under the same parent path are folded
        into one node carrying ``count`` and summed wall/CPU time; this
        is what collapses per-partition worker spans and per-query spans
        into a readable tree.
        """
        with self._lock:
            roots = list(self.roots)
        merged: Dict[str, Dict[str, Any]] = {}
        order: List[str] = []

        def fold(spans: List[Span], table: Dict[str, Dict[str, Any]], order: List[str]):
            for span in spans:
                node = table.get(span.name)
                if node is None:
                    node = table[span.name] = {
                        "name": span.name,
                        "count": 0,
                        "wall_s": 0.0,
                        "cpu_s": 0.0,
                        "_children": {},
                        "_order": [],
                    }
                    order.append(span.name)
                node["count"] += 1
                node["wall_s"] += span.wall_s
                node["cpu_s"] += span.cpu_s
                fold(span.children, node["_children"], node["_order"])

        fold(roots, merged, order)

        def strip(table: Dict[str, Dict[str, Any]], order: List[str]):
            out = []
            for name in order:
                node = table[name]
                children = strip(node["_children"], node["_order"])
                clean = {
                    "name": node["name"],
                    "count": node["count"],
                    "wall_s": node["wall_s"],
                    "cpu_s": node["cpu_s"],
                }
                if children:
                    clean["children"] = children
                out.append(clean)
            return out

        return strip(merged, order)

    def reset(self) -> None:
        with self._lock:
            self.roots.clear()
            self.slow_ops.clear()
            self.slow_ops_dropped = 0
            self._n_spans = 0
        self._local = threading.local()


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer singleton (mutated in place, never swapped)."""
    return _TRACER


def enable_tracing(on: bool = True) -> None:
    _TRACER.enabled = bool(on)
