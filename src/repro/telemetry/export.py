"""Snapshot assembly and exporters (JSON, Prometheus text, terminal render).

A *snapshot* is a plain dict: ``{"metrics": [...], "spans": [...],
"slow_ops": [...]}``.  ``to_json``/``from_json`` round-trip the whole
snapshot; ``to_prometheus``/``from_prometheus`` round-trip the metrics
section only (spans have no Prometheus representation).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramChild,
    MetricsRegistry,
)
from repro.telemetry.trace import Tracer


# ---------------------------------------------------------------------------
# snapshot
# ---------------------------------------------------------------------------
def snapshot(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> Dict[str, Any]:
    """Freeze the current telemetry state into a JSON-safe dict.

    Families with no recorded samples are skipped so a snapshot taken
    with telemetry disabled is compact (metric *registration* happens at
    import time regardless of gating).
    """
    out: Dict[str, Any] = {
        "metrics": [],
        "spans": [],
        "slow_ops": [],
        "slow_ops_dropped": 0,
    }
    if registry is not None:
        for family in registry.families():
            samples: List[Dict[str, Any]] = []
            for child in family.children():
                labels = dict(zip(family.label_names, child.labels))
                if isinstance(child, HistogramChild):
                    if child.count == 0:
                        continue
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": {
                                str(b): c
                                for b, c in zip(child.buckets, child.counts)
                            },
                            "inf": child.counts[-1],
                            "sum": child.sum,
                            "count": child.count,
                        }
                    )
                else:
                    if child.value == 0.0:
                        continue
                    samples.append({"labels": labels, "value": child.value})
            if samples:
                out["metrics"].append(
                    {
                        "name": family.name,
                        "type": family.kind,
                        "help": family.help,
                        "labels": list(family.label_names),
                        "samples": samples,
                    }
                )
    if tracer is not None:
        out["spans"] = tracer.merged()
        out["slow_ops"] = list(tracer.slow_ops)
        out["slow_ops_dropped"] = tracer.slow_ops_dropped
    return out


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------
def to_json(snap: Dict[str, Any], indent: int = 2) -> str:
    return json.dumps(snap, indent=indent, sort_keys=False)


def from_json(text: str) -> Dict[str, Any]:
    snap = json.loads(text)
    for key in ("metrics", "spans", "slow_ops"):
        snap.setdefault(key, [])
    snap.setdefault("slow_ops_dropped", 0)
    return snap


# ---------------------------------------------------------------------------
# Prometheus text exposition format
# ---------------------------------------------------------------------------
def _fmt_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        '%s="%s"' % (
            k,
            str(v).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n"),
        )
        for k, v in merged.items()
    )
    return "{" + body + "}"


def _fmt_value(value: float) -> str:
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def to_prometheus(snap: Dict[str, Any]) -> str:
    """Render the metrics section in the Prometheus text format."""
    lines: List[str] = []
    for family in snap.get("metrics", []):
        name = family["name"]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['type']}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if family["type"] == "histogram":
                cumulative = 0
                for bound, count in sample["buckets"].items():
                    cumulative += count
                    lines.append(
                        f"{name}_bucket{_fmt_labels(labels, {'le': bound})} {cumulative}"
                    )
                cumulative += sample.get("inf", 0)
                lines.append(
                    f"{name}_bucket{_fmt_labels(labels, {'le': '+Inf'})} {cumulative}"
                )
                lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(sample['sum'])}")
                lines.append(f"{name}_count{_fmt_labels(labels)} {sample['count']}")
            else:
                lines.append(
                    f"{name}{_fmt_labels(labels)} {_fmt_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        key = text[i:eq].strip().lstrip(",").strip()
        assert text[eq + 1] == '"', f"malformed label set {text!r}"
        j = eq + 2
        value_chars = []
        while text[j] != '"':
            ch = text[j]
            if ch == "\\":
                j += 1
                ch = {"n": "\n"}.get(text[j], text[j])
            value_chars.append(ch)
            j += 1
        labels[key] = "".join(value_chars)
        i = j + 1
    return labels


def _split_sample_line(line: str):
    if "{" in line:
        name = line[: line.index("{")]
        rest = line[line.index("{") + 1 :]
        label_text, _, value_text = rest.rpartition("}")
        labels = _parse_labels(label_text)
    else:
        name, _, value_text = line.partition(" ")
        labels = {}
    return name, labels, float(value_text.strip())


def from_prometheus(text: str) -> List[Dict[str, Any]]:
    """Parse Prometheus text back into the snapshot's ``metrics`` list.

    Inverse of :func:`to_prometheus` for output produced by it (it is
    not a general scrape parser): ``from_prometheus(to_prometheus(s))``
    equals ``s["metrics"]``.
    """
    families: List[Dict[str, Any]] = []
    by_name: Dict[str, Dict[str, Any]] = {}
    helps: Dict[str, str] = {}
    hist_samples: Dict[str, Dict[tuple, Dict[str, Any]]] = {}

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            family = {
                "name": name,
                "type": kind.strip(),
                "help": helps.get(name, ""),
                "labels": [],
                "samples": [],
            }
            families.append(family)
            by_name[name] = family
            if kind.strip() == "histogram":
                hist_samples[name] = {}
            continue
        if line.startswith("#"):
            continue

        sample_name, labels, value = _split_sample_line(line)
        # Histogram series carry _bucket/_sum/_count suffixes.
        base = None
        for suffix in ("_bucket", "_sum", "_count"):
            candidate = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if candidate in hist_samples:
                base = candidate
                break
        if base is not None:
            bare = {k: v for k, v in labels.items() if k != "le"}
            key = tuple(sorted(bare.items()))
            cell = hist_samples[base].setdefault(
                key, {"labels": bare, "buckets": {}, "inf": 0, "sum": 0.0, "count": 0}
            )
            if sample_name.endswith("_bucket"):
                cell["buckets"][labels["le"]] = int(value)
            elif sample_name.endswith("_sum"):
                cell["sum"] = value
            else:
                cell["count"] = int(value)
            continue

        family = by_name.get(sample_name)
        if family is None:
            family = {
                "name": sample_name,
                "type": "untyped",
                "help": "",
                "labels": [],
                "samples": [],
            }
            families.append(family)
            by_name[sample_name] = family
        family["samples"].append({"labels": labels, "value": value})
        if labels and not family["labels"]:
            family["labels"] = list(labels)

    # De-cumulate histogram buckets and strip the +Inf series back out.
    for name, cells in hist_samples.items():
        family = by_name[name]
        for cell in cells.values():
            inf_cumulative = cell["buckets"].pop("+Inf", cell["count"])
            bounds = sorted(cell["buckets"], key=float)
            previous = 0
            decumulated = {}
            for bound in bounds:
                decumulated[bound] = cell["buckets"][bound] - previous
                previous = cell["buckets"][bound]
            cell["inf"] = inf_cumulative - previous
            cell["buckets"] = decumulated
            family["samples"].append(cell)
            if cell["labels"] and not family["labels"]:
                family["labels"] = list(cell["labels"])
    return families


# ---------------------------------------------------------------------------
# terminal rendering
# ---------------------------------------------------------------------------
def render_metrics_table(snap: Dict[str, Any]) -> str:
    """Fixed-width table of every non-zero metric sample."""
    rows: List[tuple] = []
    for family in snap.get("metrics", []):
        for sample in family["samples"]:
            label_text = ",".join(f"{k}={v}" for k, v in sample.get("labels", {}).items())
            if family["type"] == "histogram":
                mean = sample["sum"] / sample["count"] if sample["count"] else 0.0
                value = f"count={sample['count']} mean={mean * 1000:.3f}ms"
            else:
                value = _fmt_value(sample["value"])
            rows.append((family["name"], label_text, value))
    if not rows:
        return "(no metrics recorded)"
    name_w = max(len(r[0]) for r in rows)
    label_w = max(len(r[1]) for r in rows)
    lines = [
        f"{name:<{name_w}}  {labels:<{label_w}}  {value}"
        for name, labels, value in rows
    ]
    return "\n".join(lines)


def render_span_tree(spans: List[Dict[str, Any]], indent: int = 0) -> str:
    """ASCII tree of a merged span forest (see :meth:`Tracer.merged`)."""
    if not spans and indent == 0:
        return "(no spans recorded)"
    lines: List[str] = []
    for node in spans:
        lines.append(
            "%s%s  count=%d wall=%.3fms cpu=%.3fms"
            % (
                "  " * indent,
                node["name"],
                node["count"],
                node["wall_s"] * 1000.0,
                node["cpu_s"] * 1000.0,
            )
        )
        children = node.get("children") or []
        if children:
            lines.append(render_span_tree(children, indent + 1))
    return "\n".join(lines)
