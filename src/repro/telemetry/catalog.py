"""Central catalog of every metric and span name used in instrumentation.

Lint rule REPRO014 checks that any literal name passed to
``registry.counter/gauge/histogram`` or ``tracer.span`` appears here, so
a typo'd name fails lint instead of silently creating a new series.

Keep the tuples sorted; the frozensets are what the rule consults.
"""

from __future__ import annotations

METRIC_NAMES = frozenset(
    (
        "btree_page_splits_total",
        "btree_pages_allocated_total",
        "cube_epoch",
        "delta_merge_seconds",
        "dwarf_build_seconds",
        "dwarf_builds_total",
        "dwarf_delta_builds_total",
        "dwarf_delta_merges_total",
        "dwarf_merge_memo_hits_total",
        "dwarf_merges_total",
        "dwarf_parallel_builds_total",
        "etl_documents_total",
        "etl_facts_total",
        "etl_inferred_schemas_total",
        "etl_records_total",
        "ingest_batches_total",
        "ingest_documents_total",
        "mapper_compacted_rows_total",
        "mapper_delta_stores_total",
        "mapper_epoch_flips_total",
        "mapper_stored_queries_total",
        "nosqldb_blocks_skipped_total",
        "nosqldb_cache_evictions_total",
        "nosqldb_cache_hits_total",
        "nosqldb_cache_invalidations_total",
        "nosqldb_cache_misses_total",
        "nosqldb_commitlog_appends_total",
        "nosqldb_commitlog_bytes_total",
        "nosqldb_commitlog_replayed_total",
        "nosqldb_compactions_total",
        "nosqldb_flushed_rows_total",
        "nosqldb_memtable_flushes_total",
        "nosqldb_sstable_rows_written_total",
        "nosqldb_sstables_written_total",
        "nosqldb_writes_total",
        "query_plan_cache_hits_total",
        "query_plan_cache_invalidations_total",
        "query_plan_cache_misses_total",
        "query_pushdown_rows_pruned_total",
        "telemetry_slow_ops_dropped_total",
    )
)

SPAN_NAMES = frozenset(
    (
        "bench.cell",
        "dwarf.build",
        "dwarf.parallel.build_partitions",
        "dwarf.parallel.partition",
        "dwarf.parallel.sort",
        "dwarf.parallel.stitch",
        "dwarf.scan",
        "dwarf.sort",
        "etl.extract",
        "etl.infer",
        "etl.parse",
        "ingest.compact",
        "ingest.delta_build",
        "ingest.merge",
        "ingest.poll",
        "ingest.store_delta",
        "mapper.rebuild",
        "mapper.store",
        "mapper.transform",
        "nosqldb.commitlog.replay",
        "nosqldb.compaction",
        "nosqldb.flush",
        "query.shard_scan",
        "stored.cell_count",
        "stored.point_query",
    )
)
