"""Bounded per-statement query history with fingerprint aggregation.

Every executed statement (both dialects, stored queries, bulk helpers,
the ingest loop) appends one compact :class:`QueryRecord` to the
process-wide :class:`QueryLog` ring buffer.  Statements are keyed by a
*fingerprint* — the statement text with literals masked and
whitespace/case folded — so ``...WHERE id = 3`` and ``...WHERE id = 7``
aggregate into one profile.

Gating mirrors the metrics registry: when ``REPRO_QUERY_LOG`` is unset
or falsy the hot path pays exactly one attribute check
(``if _QUERY_LOG.enabled:``) and nothing is allocated — callers must
not even compute the fingerprint before checking the gate.
"""

from __future__ import annotations

import os
import re
import threading
from collections import deque
from typing import Any, Dict, List, NamedTuple, Optional

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    HistogramChild,
    MetricsRegistry,
)

_DISABLED = ("", "0", "false", "no", "off")

#: Default ring-buffer capacity (records, not fingerprints).
DEFAULT_MAX_RECORDS = 4096

# Literal masking: single-quoted strings first (so digits inside them
# vanish with the string), then bare numbers.  ``(?<![\w?])`` keeps
# identifiers like ``t1`` and already-masked ``?`` placeholders intact.
_STRING_RE = re.compile(r"'(?:[^']|'')*'")
_NUMBER_RE = re.compile(r"(?<![\w?])\d+(?:\.\d+)?")
_WS_RE = re.compile(r"\s+")


def _env_enabled(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in _DISABLED


def _env_max_records() -> int:
    raw = os.environ.get("REPRO_QUERY_LOG_MAX", "").strip()
    if not raw:
        return DEFAULT_MAX_RECORDS
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_MAX_RECORDS


def fingerprint(statement: str) -> str:
    """Normalize a statement for aggregation.

    String and numeric literals become ``?`` (matching the prepared-
    statement placeholder, so prepared and inline forms of the same
    query share a fingerprint), runs of whitespace collapse to one
    space, and the text is upper-cased.
    """
    masked = _STRING_RE.sub("?", statement)
    masked = _NUMBER_RE.sub("?", masked)
    return _WS_RE.sub(" ", masked).strip().upper()


def latency_bucket(seconds: float) -> float:
    """The DEFAULT_BUCKETS upper bound this latency falls into.

    Values past the last finite bound clamp to it, mirroring
    :func:`repro.telemetry.metrics.bucket_quantile`.
    """
    for bound in DEFAULT_BUCKETS:
        if seconds <= bound:
            return bound
    return DEFAULT_BUCKETS[-1]


class QueryRecord(NamedTuple):
    """One executed statement, compacted for the ring buffer."""

    fingerprint: str
    dialect: str  # "sql" | "cql" | "stored"
    seconds: float
    bucket: float  # latency_bucket(seconds)
    rows: int
    cache_hits: int
    blocks_skipped: int
    rows_pruned: int
    shards: int
    epoch: int

    def as_dict(self) -> Dict[str, Any]:
        return dict(self._asdict())


class QueryLog:
    """Bounded, thread-safe ring buffer of :class:`QueryRecord`."""

    def __init__(
        self,
        enabled: Optional[bool] = None,
        max_records: Optional[int] = None,
    ) -> None:
        self.enabled = _env_enabled("REPRO_QUERY_LOG") if enabled is None else enabled
        self.max_records = _env_max_records() if max_records is None else max_records
        self._lock = threading.Lock()
        self._records: deque = deque(maxlen=self.max_records)
        self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # -- recording ------------------------------------------------------
    def record(
        self,
        statement: str,
        dialect: str,
        seconds: float,
        rows: int = 0,
        cache_hits: int = 0,
        blocks_skipped: int = 0,
        rows_pruned: int = 0,
        shards: int = 1,
        epoch: int = 0,
    ) -> None:
        """Append one record.  Callers gate on ``self.enabled`` *before*
        computing any argument; this method assumes the gate passed."""
        rec = QueryRecord(
            fingerprint=fingerprint(statement),
            dialect=dialect,
            seconds=seconds,
            bucket=latency_bucket(seconds),
            rows=rows,
            cache_hits=cache_hits,
            blocks_skipped=blocks_skipped,
            rows_pruned=rows_pruned,
            shards=shards,
            epoch=epoch,
        )
        with self._lock:
            if len(self._records) == self._records.maxlen:
                self.dropped += 1
            self._records.append(rec)

    # -- inspection -----------------------------------------------------
    def records(self) -> List[QueryRecord]:
        with self._lock:
            return list(self._records)

    def profiles(self) -> List[Dict[str, Any]]:
        """Per-fingerprint aggregates with count/total/p50/p99.

        Quantiles come from a :class:`HistogramChild` per fingerprint
        (same fixed buckets as every latency metric), so ``repro top``
        ranks by exactly the semantics of ``Histogram.quantile``.
        """
        registry = MetricsRegistry(enabled=True)
        hists: Dict[str, HistogramChild] = {}
        rollup: Dict[str, Dict[str, Any]] = {}
        for rec in self.records():
            agg = rollup.get(rec.fingerprint)
            if agg is None:
                agg = rollup[rec.fingerprint] = {
                    "fingerprint": rec.fingerprint,
                    "dialect": rec.dialect,
                    "count": 0,
                    "total_s": 0.0,
                    "rows": 0,
                    "cache_hits": 0,
                    "blocks_skipped": 0,
                    "rows_pruned": 0,
                    "shards": rec.shards,
                    "epoch": rec.epoch,
                }
                hists[rec.fingerprint] = HistogramChild(
                    registry, (), DEFAULT_BUCKETS
                )
            agg["count"] += 1
            agg["total_s"] += rec.seconds
            agg["rows"] += rec.rows
            agg["cache_hits"] += rec.cache_hits
            agg["blocks_skipped"] += rec.blocks_skipped
            agg["rows_pruned"] += rec.rows_pruned
            agg["shards"] = max(agg["shards"], rec.shards)
            agg["epoch"] = max(agg["epoch"], rec.epoch)
            hists[rec.fingerprint].observe(rec.seconds)
        out: List[Dict[str, Any]] = []
        for fp, agg in rollup.items():
            hist = hists[fp]
            agg["p50_s"] = hist.quantile(0.5)
            agg["p99_s"] = hist.quantile(0.99)
            out.append(agg)
        out.sort(key=lambda a: a["total_s"], reverse=True)
        return out

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [rec.as_dict() for rec in self.records()]

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0


def profiles_from_records(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Rebuild fingerprint profiles from serialized records (bundle replay)."""
    log = QueryLog(enabled=True, max_records=max(1, len(records)))
    for rec in records:
        log._records.append(QueryRecord(**rec))
    return log.profiles()


_QUERY_LOG = QueryLog()


def get_query_log() -> QueryLog:
    """The process-wide query log singleton (mutated in place, never swapped)."""
    return _QUERY_LOG


def enable_query_log(on: bool = True) -> None:
    _QUERY_LOG.enabled = bool(on)
