"""Process-wide telemetry: metrics registry, hierarchical tracer, slow-op log.

This package is a stdlib-only leaf: it imports nothing from the rest of
``repro``, so every layer (storage, engines, kernel, mappers, ETL) may
report into it without violating the layering rules (REPRO005/REPRO006).

Gating
------
Two env vars control runtime cost (see :mod:`repro.telemetry.metrics` /
:mod:`repro.telemetry.trace`):

``REPRO_METRICS``
    Enables counter/gauge/histogram recording.  Disabled (the default),
    every ``inc``/``set``/``observe`` is a single attribute check.
``REPRO_TRACE``
    Enables span recording (and the slow-op log).  Disabled,
    ``tracer.span(...)`` returns a shared no-op context manager.
``REPRO_SLOW_MS``
    Wall-time threshold (milliseconds) above which a finished span is
    also recorded in the slow-op log.  Default 100.

Both gates can be flipped at runtime with :func:`enable_metrics` /
:func:`enable_tracing` (used by ``repro stats`` and the tests); the
singletons returned by :func:`get_registry` / :func:`get_tracer` are
mutated in place, never replaced, so references cached at import time in
hot paths stay valid.
"""

from __future__ import annotations

import time

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    enable_metrics,
    get_registry,
)
from repro.telemetry.trace import (
    Span,
    Tracer,
    enable_tracing,
    get_tracer,
)
from repro.telemetry.export import (
    from_json,
    from_prometheus,
    render_metrics_table,
    render_span_tree,
    snapshot,
    to_json,
    to_prometheus,
)

#: The one sanctioned monotonic clock.  Instrumented code outside this
#: package must use ``wall_clock()`` instead of ``time.perf_counter()``
#: directly (lint rule REPRO007 enforces this).
wall_clock = time.perf_counter

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "enable_metrics",
    "enable_tracing",
    "from_json",
    "from_prometheus",
    "get_registry",
    "get_tracer",
    "render_metrics_table",
    "render_span_tree",
    "snapshot",
    "to_json",
    "to_prometheus",
    "wall_clock",
]
