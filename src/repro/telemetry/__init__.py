"""Process-wide telemetry: metrics registry, hierarchical tracer, slow-op log.

This package is a stdlib-only leaf: it imports nothing from the rest of
``repro``, so every layer (storage, engines, kernel, mappers, ETL) may
report into it without violating the layering rules (REPRO005/REPRO006).

Gating
------
Two env vars control runtime cost (see :mod:`repro.telemetry.metrics` /
:mod:`repro.telemetry.trace`):

``REPRO_METRICS``
    Enables counter/gauge/histogram recording.  Disabled (the default),
    every ``inc``/``set``/``observe`` is a single attribute check.
``REPRO_TRACE``
    Enables span recording (and the slow-op log).  Disabled,
    ``tracer.span(...)`` returns a shared no-op context manager.
``REPRO_SLOW_MS``
    Wall-time threshold (milliseconds) above which a finished span is
    also recorded in the slow-op log.  Default 100.
``REPRO_QUERY_LOG``
    Enables the per-statement query history (:mod:`repro.telemetry.querylog`).
    Disabled (the default), instrumented call sites pay one attribute
    check per statement and allocate nothing.
``REPRO_QUERY_LOG_MAX``
    Ring-buffer capacity of the query history.  Default 4096.

Both gates can be flipped at runtime with :func:`enable_metrics` /
:func:`enable_tracing` (used by ``repro stats`` and the tests); the
singletons returned by :func:`get_registry` / :func:`get_tracer` are
mutated in place, never replaced, so references cached at import time in
hot paths stay valid.
"""

from __future__ import annotations

import time

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
    enable_metrics,
    get_registry,
)
from repro.telemetry.trace import (
    Span,
    Tracer,
    enable_tracing,
    get_tracer,
)
from repro.telemetry.export import (
    from_json,
    from_prometheus,
    render_metrics_table,
    render_span_tree,
    snapshot,
    to_json,
    to_prometheus,
)
from repro.telemetry.querylog import (
    QueryLog,
    QueryRecord,
    enable_query_log,
    fingerprint,
    get_query_log,
)
from repro.telemetry.bundle import (
    BUNDLE_SCHEMA_VERSION,
    build_bundle,
    bundle_to_json,
    collect_env,
    from_bundle,
    validate_bundle,
)
from repro.telemetry.catalog import METRIC_NAMES, SPAN_NAMES

#: The one sanctioned monotonic clock.  Instrumented code outside this
#: package must use ``wall_clock()`` instead of ``time.perf_counter()``
#: directly (lint rule REPRO007 enforces this).
wall_clock = time.perf_counter

#: CPU-time companion to ``wall_clock``; EXPLAIN ANALYZE uses both to
#: report per-operator wall vs. CPU seconds.
cpu_clock = time.process_time

__all__ = [
    "BUNDLE_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "METRIC_NAMES",
    "MetricsRegistry",
    "QueryLog",
    "QueryRecord",
    "SPAN_NAMES",
    "Span",
    "Tracer",
    "bucket_quantile",
    "build_bundle",
    "bundle_to_json",
    "collect_env",
    "cpu_clock",
    "enable_metrics",
    "enable_query_log",
    "enable_tracing",
    "fingerprint",
    "from_bundle",
    "from_json",
    "from_prometheus",
    "get_query_log",
    "get_registry",
    "get_tracer",
    "render_metrics_table",
    "render_span_tree",
    "snapshot",
    "to_json",
    "to_prometheus",
    "validate_bundle",
    "wall_clock",
]
