"""Labelled counters, gauges and fixed-bucket histograms.

The design follows the Prometheus client-library model: a metric is a
named family; ``metric.labels(v1, v2)`` returns a *child* bound to one
label combination, and children are cached so hot paths can bind them
once at construction time and pay only an attribute check per event
when metrics are disabled.

Registration is idempotent: asking the registry for an existing name
returns the existing family (the declared type and label names must
match, otherwise ``ValueError``).  This lets every module declare its
metrics at import time against the process-wide singleton without
coordination.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_DISABLED = ("", "0", "false", "no", "off")

#: Default histogram bucket upper bounds, in seconds.  Chosen to cover
#: everything from a cached point read (~100 us) to a full SMonth build.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)


def _env_enabled(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in _DISABLED


class _Child:
    """One (metric, label-values) pair.  Base for counter/gauge children."""

    __slots__ = ("_registry", "labels", "value")

    def __init__(self, registry: "MetricsRegistry", labels: Tuple[str, ...]) -> None:
        self._registry = registry
        self.labels = labels
        self.value = 0.0


class CounterChild(_Child):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class GaugeChild(_Child):
    __slots__ = ()

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


def bucket_quantile(
    buckets: Sequence[float], counts: Sequence[int], q: float
) -> Optional[float]:
    """Nearest-rank quantile over fixed-bucket counts.

    ``counts`` has one slot per bucket plus a trailing +Inf slot.  The
    answer is the upper bound of the bucket holding the ``ceil(q * n)``-th
    observation — *exact at bucket boundaries*: when every observation
    equals a bucket bound, ``quantile`` of any rank inside that bucket
    returns that bound, not an interpolation.  Observations past the last
    finite bound clamp to it (the Prometheus convention).  Returns None
    when no observations were recorded.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return None
    rank = max(1, math.ceil(q * total))
    cumulative = 0
    for bound, count in zip(buckets, counts):
        cumulative += count
        if cumulative >= rank:
            return bound
    return buckets[-1] if buckets else None


class HistogramChild:
    __slots__ = ("_registry", "labels", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        registry: "MetricsRegistry",
        labels: Tuple[str, ...],
        buckets: Tuple[float, ...],
    ) -> None:
        self._registry = registry
        self.labels = labels
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # trailing slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile of recorded observations (see
        :func:`bucket_quantile`); None when nothing was observed."""
        return bucket_quantile(self.buckets, self.counts, q)

    def percentiles(self, qs: Sequence[float] = (0.5, 0.9, 0.99)) -> Dict[str, float]:
        """``{"p50": ..., "p90": ..., "p99": ...}`` for the given quantiles,
        skipping entries while the histogram is empty."""
        out: Dict[str, float] = {}
        for q in qs:
            value = self.quantile(q)
            if value is not None:
                out[f"p{q * 100:g}"] = value
        return out


class _Family:
    """A named metric family holding one child per label combination."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        label_names: Tuple[str, ...],
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.label_names = label_names
        self._children: Dict[Tuple[str, ...], object] = {}
        # Label-less families get a single default child so call sites
        # can write ``metric.inc()`` without a ``labels()`` hop.
        self._default = self._make_child(()) if not label_names else None

    def _make_child(self, values: Tuple[str, ...]):
        raise NotImplementedError

    def labels(self, *values: str):
        key = tuple(str(v) for v in values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {len(key)} value(s)"
            )
        if self._default is not None:
            return self._default
        child = self._children.get(key)
        if child is None:
            with self._registry._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child(key)
                    self._children[key] = child
        return child

    def children(self) -> List[object]:
        if self._default is not None:
            return [self._default]
        return list(self._children.values())

    def reset(self) -> None:
        # Zero children in place: hot paths cache bound children at
        # construction time and must keep recording after a reset.
        for child in self.children():
            if isinstance(child, HistogramChild):
                child.counts = [0] * (len(child.buckets) + 1)
                child.sum = 0.0
                child.count = 0
            else:
                child.value = 0.0  # type: ignore[attr-defined]


class Counter(_Family):
    kind = "counter"

    def _make_child(self, values: Tuple[str, ...]) -> CounterChild:
        return CounterChild(self._registry, values)

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)  # type: ignore[union-attr]

    @property
    def value(self) -> float:
        return sum(child.value for child in self.children())  # type: ignore[attr-defined]


class Gauge(_Family):
    kind = "gauge"

    def _make_child(self, values: Tuple[str, ...]) -> GaugeChild:
        return GaugeChild(self._registry, values)

    def set(self, value: float) -> None:
        self._default.set(value)  # type: ignore[union-attr]

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)  # type: ignore[union-attr]

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)  # type: ignore[union-attr]

    @property
    def value(self) -> float:
        return sum(child.value for child in self.children())  # type: ignore[attr-defined]


class Histogram(_Family):
    kind = "histogram"

    def __init__(self, registry, name, help, label_names, buckets=DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(buckets))
        super().__init__(registry, name, help, label_names)

    def _make_child(self, values: Tuple[str, ...]) -> HistogramChild:
        return HistogramChild(self._registry, values, self.buckets)

    def observe(self, value: float) -> None:
        self._default.observe(value)  # type: ignore[union-attr]

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile across every label combination's child
        (bucket counts are summed before ranking)."""
        merged = [0] * (len(self.buckets) + 1)
        for child in self.children():
            for i, count in enumerate(child.counts):  # type: ignore[attr-defined]
                merged[i] += count
        return bucket_quantile(self.buckets, merged, q)

    def percentiles(self, qs: Sequence[float] = (0.5, 0.9, 0.99)) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for q in qs:
            value = self.quantile(q)
            if value is not None:
                out[f"p{q * 100:g}"] = value
        return out


class MetricsRegistry:
    """Process-wide collection of metric families.

    ``enabled`` is the single gate every child checks on the hot path;
    registration/snapshot take ``_lock`` but recording does not (CPython
    attribute stores are atomic enough for monotonic counters, and the
    registry is explicitly best-effort under free-threading).
    """

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self.enabled = _env_enabled("REPRO_METRICS") if enabled is None else enabled
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- registration ---------------------------------------------------
    def _register(self, cls, name: str, help: str, labels: Sequence[str], **kw):
        label_names = tuple(labels)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.label_names}"
                    )
                return existing
            family = cls(self, name, help, label_names, **kw)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labels, buckets=tuple(buckets))

    # -- inspection -----------------------------------------------------
    def families(self) -> List[_Family]:
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def get(self, name: str) -> Optional[_Family]:
        return self._families.get(name)

    def value(self, name: str, *labels: str) -> float:
        """Current value of a counter/gauge child (0.0 when never touched)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        if labels:
            child = family._children.get(tuple(str(v) for v in labels))
            return child.value if child is not None else 0.0  # type: ignore[attr-defined]
        return family.value  # type: ignore[attr-defined,union-attr]

    def reset(self) -> None:
        """Zero every family, keeping registrations (cached references stay valid)."""
        with self._lock:
            for family in self._families.values():
                family.reset()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry singleton (mutated in place, never swapped)."""
    return _REGISTRY


def enable_metrics(on: bool = True) -> None:
    _REGISTRY.enabled = bool(on)
