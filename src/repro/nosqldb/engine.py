"""The NoSQL engine entry point (a single-node "cluster")."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.nosqldb.errors import AlreadyExists, InvalidRequest
from repro.nosqldb.keyspace import Keyspace


class NoSQLEngine:
    """Holds the keyspaces and hands out CQL sessions.

    The mappers and benchmarks talk to the engine exclusively through
    :class:`~repro.nosqldb.session.Session` (CQL), mirroring how the
    paper's system drives Cassandra.
    """

    def __init__(self, data_dir=None) -> None:
        """``data_dir``: when set, SSTables are written under it on disk."""
        self._keyspaces: Dict[str, Keyspace] = {}
        self.data_dir = data_dir

    def create_keyspace(
        self,
        name: str,
        durable_writes: bool = True,
        if_not_exists: bool = False,
    ) -> Keyspace:
        """Create a keyspace.

        Raises AlreadyExists for duplicate names unless ``if_not_exists``.
        """
        lowered = name.lower()
        if lowered in self._keyspaces:
            if if_not_exists:
                return self._keyspaces[lowered]
            raise AlreadyExists(f"keyspace {name!r} already exists")
        keyspace_dir = None
        if self.data_dir is not None:
            from pathlib import Path

            keyspace_dir = Path(self.data_dir) / lowered
            keyspace_dir.mkdir(parents=True, exist_ok=True)
        keyspace = Keyspace(name, durable_writes=durable_writes, data_dir=keyspace_dir)
        self._keyspaces[lowered] = keyspace
        return keyspace

    def drop_keyspace(self, name: str) -> None:
        """Raises InvalidRequest when no such keyspace exists."""
        if name.lower() not in self._keyspaces:
            raise InvalidRequest(f"no keyspace {name!r}")
        del self._keyspaces[name.lower()]

    def keyspace(self, name: str) -> Keyspace:
        """Raises InvalidRequest when no such keyspace exists."""
        try:
            return self._keyspaces[name.lower()]
        except KeyError:
            raise InvalidRequest(f"no keyspace {name!r}") from None

    def has_keyspace(self, name: str) -> bool:
        return name.lower() in self._keyspaces

    @property
    def keyspaces(self) -> Tuple[Keyspace, ...]:
        return tuple(self._keyspaces.values())

    def connect(self, keyspace: str = ""):
        """Open a CQL session, optionally bound to a keyspace."""
        from repro.nosqldb.session import Session

        return Session(self, keyspace or None)

    def __repr__(self) -> str:
        return f"NoSQLEngine(keyspaces={sorted(self._keyspaces)})"
