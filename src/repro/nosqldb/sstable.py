"""SSTables: immutable, sorted, block-compressed row files.

A flush turns a memtable into one SSTable: rows sorted by primary key,
grouped into blocks of ~4 KiB, each block zlib-compressed (Cassandra
compresses SSTables by default — this is the mechanism behind the NoSQL
schemas' competitive sizes in Table 4).  A sparse index keeps the first
key of every block for binary-searched point reads.

Every stored block starts with a one-byte format tag: ``'R'`` for the
classic row-major entry list, ``'C'`` for the column-major layout of
:mod:`repro.nosqldb.columnar`.  Both formats stay readable forever; a
table's ``block_format`` only chooses what *new* blocks are written, so
compaction naturally rewrites row-major runs into columnar ones.
Columnar blocks additionally carry in-memory per-column zone maps that
:meth:`SSTable.scan_filtered` uses to skip whole blocks under a
pushed-down predicate (see :mod:`repro.query.pushdown`).
"""

from __future__ import annotations

import bisect
import itertools
import zlib
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.nosqldb.cache import BlockCache
from repro.nosqldb.columnar import (
    BLOCK_FORMAT_COLUMNAR,
    BLOCK_FORMAT_ROW,
    TAG_COLUMNAR,
    TAG_ROW,
    ColumnVectors,
    ColumnarCodec,
)
from repro.storage.btree import decode_key, encode_key
from repro.storage.encoding import decode_bytes, encode_bytes
from repro.storage.varint import decode_varint, encode_varint
from repro.telemetry import get_registry

_REGISTRY = get_registry()
_M_SSTABLES_WRITTEN = _REGISTRY.counter(
    "nosqldb_sstables_written_total", "SSTables built (flushes and compactions)"
)
_M_SSTABLE_ROWS = _REGISTRY.counter(
    "nosqldb_sstable_rows_written_total", "rows written into SSTables"
)
_M_BLOCKS_SKIPPED = _REGISTRY.counter(
    "nosqldb_blocks_skipped_total",
    "SSTable blocks skipped via zone maps under pushed-down predicates",
)

#: Uncompressed block size target, bytes.  Small chunks with zlib level 1
#: approximate the compression ratio of Cassandra's default LZ4 chunk
#: compressor on row data (~3:1 on these feeds); see DESIGN.md.
BLOCK_BYTES = 1024

#: Columnar blocks budget this many times more row bytes per block than
#: row-major ones (Parquet-style: column groups only amortize their
#: per-block directory/chunk overhead — and give dictionaries and zone
#: maps enough rows to bite — when a block holds tens of rows, not a
#: row-store page's handful).
COLUMNAR_BLOCK_FACTOR = 8

#: Fixed per-SSTable footer/metadata charge (stats, bloom filter stub).
SSTABLE_OVERHEAD = 96

#: zlib level used for block compression.  Level 1 approximates the
#: throughput/ratio trade-off of Cassandra's default LZ4 chunk compressor.
COMPRESSION_LEVEL = 1

#: Bloom filter sizing: bits per key and hash count (Cassandra defaults
#: target ~1% false positives with ~10 bits/key).
BLOOM_BITS_PER_KEY = 10
BLOOM_HASHES = 3

#: Backwards-compatible alias: the key decoder grew up here before the
#: columnar codec needed it too and it moved next to ``encode_key``.
_decode_key = decode_key


class BloomFilter:
    """A plain Bloom filter over row keys.

    Cassandra keeps one per SSTable so that point reads skip tables that
    cannot contain the key — this is what keeps the read-before-write of
    secondary-index maintenance affordable.
    """

    __slots__ = ("_bits", "_n_bits")

    def __init__(self, n_keys: int) -> None:
        self._n_bits = max(64, n_keys * BLOOM_BITS_PER_KEY)
        self._bits = bytearray((self._n_bits + 7) // 8)

    def _positions(self, key):
        # Double hashing h1 + i*h2 mod m, with multiplicative mixing so
        # that small integer keys (whose hash is the value itself) spread.
        mixed = (hash(key) * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        h1 = mixed >> 32
        h2 = (mixed & 0xFFFFFFFF) | 1
        for i in range(BLOOM_HASHES):
            yield (h1 + i * h2) % self._n_bits

    def add(self, key) -> None:
        for position in self._positions(key):
            self._bits[position >> 3] |= 1 << (position & 7)

    def might_contain(self, key) -> bool:
        for position in self._positions(key):
            if not self._bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    @property
    def size_bytes(self) -> int:
        return len(self._bits)


class SSTableStats(NamedTuple):
    """A read-only structural summary of one :class:`SSTable`."""

    rows: int
    blocks: int
    compressed: bool
    on_disk: bool            # blocks spilled to a data file
    tombstones: int
    data_bytes: int          # stored block payload (post-compression)
    index_bytes: int         # sparse block index
    bloom_bytes: int
    size_bytes: int          # data + index + bloom + fixed overhead
    block_format: str = BLOCK_FORMAT_ROW   # what new blocks are written as
    columnar_blocks: int = 0               # blocks actually stored columnar
    dict_chunks: int = 0                   # dictionary-encoded column chunks
    plain_chunks: int = 0                  # plain column chunks
    blocks_skipped: int = 0                # lifetime zone-map block skips

    @property
    def rows_per_block(self) -> float:
        return self.rows / self.blocks if self.blocks else 0.0

    @property
    def dict_hit_ratio(self) -> float:
        """Fraction of columnar column chunks that dictionary-encoded."""
        chunks = self.dict_chunks + self.plain_chunks
        return self.dict_chunks / chunks if chunks else 0.0


#: Process-wide SSTable id allocator: block-cache keys must survive the
#: CPython id() recycling that follows garbage collection.
_uid_counter = itertools.count(1)


class SSTable:
    """One immutable sorted run of ``(key, encoded_row)`` entries."""

    __slots__ = (
        "_block_keys", "_blocks", "_index_bytes", "_n_rows", "compressed",
        "_tombstones", "_bloom", "_path", "_offsets", "_uid", "_block_cache",
        "_handle", "_block_format", "_codec", "_zone_maps", "_block_rows",
        "_n_columnar", "_dict_chunks", "_plain_chunks", "_blocks_skipped",
    )

    def __init__(
        self,
        sorted_items: Sequence[Tuple[object, bytes]],
        compressed: bool = True,
        tombstones: frozenset = frozenset(),
        path=None,
        block_cache: Optional[BlockCache] = None,
        block_format: str = BLOCK_FORMAT_ROW,
        codec: Optional[ColumnarCodec] = None,
    ) -> None:
        """Build an SSTable; with ``path`` the data blocks live on disk.

        ``path`` is the data file to write (parent directory must
        exist); block reads then really hit the filesystem.
        ``block_cache`` (usually the owning column family's) memoises
        decoded blocks so repeated reads skip decompression; without one
        every read decodes its block from scratch.  ``block_format``
        selects the layout of newly written blocks; columnar needs a
        :class:`~repro.nosqldb.columnar.ColumnarCodec` (blocks whose
        rows the codec cannot split fall back to row-major, so a
        columnar table is always buildable).
        """
        self.compressed = compressed
        self._block_keys: List[object] = []
        self._blocks: List[bytes] = []
        self._n_rows = len(sorted_items)
        self._index_bytes = 0
        self._tombstones = tombstones
        self._path = path
        self._offsets: List[Tuple[int, int]] = []
        self._uid = next(_uid_counter)
        self._block_cache = block_cache
        self._handle = None
        self._block_format = block_format
        self._codec = codec
        self._zone_maps: List[Optional[Dict[str, tuple]]] = []
        self._block_rows: List[int] = []
        self._n_columnar = 0
        self._dict_chunks = 0
        self._plain_chunks = 0
        self._blocks_skipped = 0
        self._bloom = BloomFilter(len(sorted_items))
        for key, _ in sorted_items:
            self._bloom.add(key)
        self._build(sorted_items)
        if path is not None:
            self._spill_to_disk()
        _M_SSTABLES_WRITTEN.inc()
        _M_SSTABLE_ROWS.inc(self._n_rows)

    def _spill_to_disk(self) -> None:
        offset = 0
        with open(self._path, "wb") as handle:
            for block in self._blocks:
                handle.write(block)
                self._offsets.append((offset, len(block)))
                offset += len(block)
        self._blocks = []

    def _block_data(self, index: int) -> bytes:
        if self._path is None:
            return self._blocks[index]
        offset, length = self._offsets[index]
        # One persistent handle per table (Cassandra pools SSTable
        # readers); reopening the data file per block read dominated the
        # disk-backed read path before.
        if self._handle is None:
            self._handle = open(self._path, "rb")
        self._handle.seek(offset)
        return self._handle.read(length)

    def close(self) -> None:
        """Release the persistent file handle (reads reopen on demand)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def delete_file(self) -> None:
        """Remove the backing data file (after compaction superseded it)."""
        self.close()
        if self._block_cache is not None:
            self._block_cache.drop_table(self._uid)
        if self._path is not None:
            import os

            try:
                os.remove(self._path)
            except FileNotFoundError:
                pass

    # ------------------------------------------------------------------
    def _build(self, sorted_items: Sequence[Tuple[object, bytes]]) -> None:
        # Block boundaries are budgeted on row-entry bytes for both
        # formats; columnar blocks get a COLUMNAR_BLOCK_FACTOR-times
        # larger budget (column chunks, dictionaries and zone maps only
        # pay off across tens of rows).  Scans visit rows in the same
        # order either way — only the block grouping differs.
        columnar = (
            self._block_format == BLOCK_FORMAT_COLUMNAR and self._codec is not None
        )
        budget = BLOCK_BYTES * COLUMNAR_BLOCK_FACTOR if columnar else BLOCK_BYTES
        buffer = bytearray()
        pending: List[Tuple[object, bytes]] = []
        count = 0
        first_key: Optional[object] = None
        for key, row in sorted_items:
            if first_key is None:
                first_key = key
            entry = encode_key(key) + encode_bytes(row)
            buffer += encode_varint(len(entry)) + entry
            count += 1
            if columnar:
                pending.append((key, row))
            if len(buffer) >= budget:
                self._seal_block(first_key, bytes(buffer), count, pending or None)
                buffer.clear()
                pending = []
                count = 0
                first_key = None
        if buffer:
            self._seal_block(first_key, bytes(buffer), count, pending or None)

    def _seal_block(self, first_key, raw: bytes, n_rows: int, items=None) -> None:
        tag = TAG_ROW
        payload = raw
        zones = None
        if items is not None:
            try:
                payload, zones, dict_chunks, plain_chunks = (
                    self._codec.encode_block(items)
                )
            except Exception:
                payload, zones = raw, None  # unsplittable rows: keep row-major
            else:
                tag = TAG_COLUMNAR
                self._n_columnar += 1
                self._dict_chunks += dict_chunks
                self._plain_chunks += plain_chunks
        body = zlib.compress(payload, COMPRESSION_LEVEL) if self.compressed else payload
        self._block_keys.append(first_key)
        self._blocks.append(bytes((tag,)) + body)
        self._zone_maps.append(zones)
        self._block_rows.append(n_rows)
        self._index_bytes += len(encode_key(first_key)) + 8  # key + offset

    # ------------------------------------------------------------------
    def _block_payload(self, index: int) -> Tuple[int, bytes]:
        """Stored block ``index`` as ``(format_tag, uncompressed payload)``."""
        data = self._block_data(index)
        tag = data[0]
        payload = data[1:]
        if self.compressed:
            payload = zlib.decompress(payload)
        return tag, payload

    def _decoded_obj(self, index: int):
        """Block ``index`` in decoded form, through the block cache.

        Row-major blocks decode to ``(keys, rows)`` lists; columnar
        blocks decode to :class:`ColumnVectors` (vectors plus lazy
        byte-exact rematerialization), cached as such so one decode
        serves scans and point reads alike.
        """
        cache = self._block_cache
        if cache is not None:
            cached = cache.get(self._uid, index)
            if cached is not None:
                return cached
        tag, payload = self._block_payload(index)
        if tag == TAG_COLUMNAR:
            obj = self._codec.decode_block(payload)
            nbytes = obj.nbytes
        else:
            keys: List = []
            rows: List[bytes] = []
            for entry_key, row in _row_entries(payload):
                keys.append(entry_key)
                rows.append(row)
            obj = (keys, rows)
            nbytes = None  # BlockCache.put applies the row-block formula
        if cache is not None:
            cache.put_entry(self._uid, index, obj, nbytes)
        return obj

    def _decoded_block(self, index: int) -> Tuple[List, List]:
        """Block ``index`` decoded once into sorted ``(keys, rows)`` lists.

        Served from the block cache when possible; a miss decompresses
        and decodes the block, then caches the decoded form so the next
        read bisects instead of paying zlib again.
        """
        obj = self._decoded_obj(index)
        if isinstance(obj, ColumnVectors):
            return obj.all_rows()
        return obj

    def get(self, key) -> Optional[bytes]:
        """Encoded row for ``key`` or None (tombstoned keys return None)."""
        if key in self._tombstones:
            return None
        if not self._block_keys or not self._bloom.might_contain(key):
            return None
        index = bisect.bisect_right(self._block_keys, key) - 1
        if index < 0:
            return None
        keys, rows = self._decoded_block(index)
        position = bisect.bisect_left(keys, key)
        if position < len(keys) and keys[position] == key:
            return rows[position]
        return None

    def get_many(self, keys: Sequence) -> Dict[object, bytes]:
        """Encoded rows for every *found* key, one block decode per block.

        Keys are grouped by the block the sparse index maps them to and
        each needed block is decoded at most once — the core of the
        engine's batched multi-get.  Tombstoned and absent keys are
        simply missing from the result (call :meth:`is_deleted` to tell
        the two apart).
        """
        found: Dict[object, bytes] = {}
        if not self._block_keys:
            return found
        block_keys = self._block_keys
        tombstones = self._tombstones
        bloom = self._bloom
        by_block: Dict[int, List] = {}
        for key in keys:
            if key in tombstones or not bloom.might_contain(key):
                continue
            index = bisect.bisect_right(block_keys, key) - 1
            if index >= 0:
                by_block.setdefault(index, []).append(key)
        for index, wanted in by_block.items():
            entry_keys, entry_rows = self._decoded_block(index)
            n_entries = len(entry_keys)
            for key in wanted:
                position = bisect.bisect_left(entry_keys, key)
                if position < n_entries and entry_keys[position] == key:
                    found[key] = entry_rows[position]
        return found

    def is_deleted(self, key) -> bool:
        return key in self._tombstones

    def items(self) -> Iterator[Tuple[object, bytes]]:
        for index in range(len(self._block_keys)):
            keys, rows = self._decoded_block(index)
            yield from zip(keys, rows)

    def scan_filtered(self, bound, allow_skip: bool, decode_row):
        """Scan under a pushed-down predicate (duck-typed
        :class:`~repro.query.pushdown.BoundPredicate`).

        Yields ``(key, decoded_row_or_None)`` in key order: None marks a
        row the predicate pruned, whose *key* the caller must still
        record for LSM shadowing (a newer predicate-failing version
        hides any older version of the same key).  With ``allow_skip``
        (safe only on the oldest layer of a scan, where no skipped key
        can shadow anything) blocks whose zone maps refute the predicate
        are skipped without being read at all.  ``decode_row`` decodes
        row-major entries (columnar blocks decode themselves).
        """
        for index in range(len(self._block_keys)):
            zones = self._zone_maps[index]
            if zones is not None and not bound.block_may_match(zones):
                bound.note_pruned(self._block_rows[index])
                if allow_skip:
                    self._blocks_skipped += 1
                    _M_BLOCKS_SKIPPED.inc()
                    bound.note_skipped(1)
                    continue
                obj = self._decoded_obj(index)
                keys = obj.keys if isinstance(obj, ColumnVectors) else obj[0]
                for key in keys:
                    yield key, None
                continue
            obj = self._decoded_obj(index)
            if isinstance(obj, ColumnVectors):
                keys = obj.keys
                mask = bound.matches_vectors(obj.typed, len(keys))
                matched = [i for i, hit in enumerate(mask) if hit]
                rows = iter(obj.rows_at(matched)) if matched else iter(())
                pruned = len(keys) - len(matched)
                for i, key in enumerate(keys):
                    yield key, next(rows) if mask[i] else None
                if pruned:
                    bound.note_pruned(pruned)
            else:
                keys, rows = obj
                pruned = 0
                for key, encoded in zip(keys, rows):
                    row = decode_row(encoded)
                    if bound.matches(row):
                        yield key, row
                    else:
                        pruned += 1
                        yield key, None
                if pruned:
                    bound.note_pruned(pruned)

    def count_filtered(self, bound, decode_row) -> int:
        """Count the rows matching ``bound`` without materialising any.

        Valid only when this table is a scan's sole layer and carries no
        tombstones (the column family's ``count_shard`` fast path
        guarantees both): every key here is live, so counting needs no
        shadowing bookkeeping.  Zone-refuted blocks are skipped exactly
        as on :meth:`scan_filtered`'s oldest layer, and columnar blocks
        count predicate-mask hits without ever calling ``rows_at`` —
        matching rows are not rematerialised either, which is what makes
        the partial-aggregate COUNT path beat the row-producing scan.
        ``bound`` may be None (count everything).
        """
        if bound is None:
            return self._n_rows
        total = 0
        for index in range(len(self._block_keys)):
            zones = self._zone_maps[index]
            if zones is not None and not bound.block_may_match(zones):
                bound.note_pruned(self._block_rows[index])
                self._blocks_skipped += 1
                _M_BLOCKS_SKIPPED.inc()
                bound.note_skipped(1)
                continue
            obj = self._decoded_obj(index)
            if isinstance(obj, ColumnVectors):
                n_keys = len(obj.keys)
                mask = bound.matches_vectors(obj.typed, n_keys)
                hits = sum(1 for hit in mask if hit)
                total += hits
                if n_keys - hits:
                    bound.note_pruned(n_keys - hits)
            else:
                keys, rows = obj
                pruned = 0
                for encoded in rows:
                    if bound.matches(decode_row(encoded)):
                        total += 1
                    else:
                        pruned += 1
                if pruned:
                    bound.note_pruned(pruned)
        return total

    def __len__(self) -> int:
        return self._n_rows

    @property
    def size_bytes(self) -> int:
        if self._path is not None:
            data = sum(length for _, length in self._offsets)
        else:
            data = sum(len(b) for b in self._blocks)
        return data + self._index_bytes + self._bloom.size_bytes + SSTABLE_OVERHEAD

    @property
    def tombstones(self) -> frozenset:
        return self._tombstones

    @property
    def block_format(self) -> str:
        return self._block_format

    @property
    def blocks_skipped(self) -> int:
        return self._blocks_skipped

    def stats(self) -> SSTableStats:
        """A read-only :class:`SSTableStats` snapshot (no block reads)."""
        if self._path is not None:
            data = sum(length for _, length in self._offsets)
        else:
            data = sum(len(b) for b in self._blocks)
        return SSTableStats(
            rows=self._n_rows,
            blocks=len(self._block_keys),
            compressed=self.compressed,
            on_disk=self._path is not None,
            tombstones=len(self._tombstones),
            data_bytes=data,
            index_bytes=self._index_bytes,
            bloom_bytes=self._bloom.size_bytes,
            size_bytes=data + self._index_bytes + self._bloom.size_bytes + SSTABLE_OVERHEAD,
            block_format=self._block_format,
            columnar_blocks=self._n_columnar,
            dict_chunks=self._dict_chunks,
            plain_chunks=self._plain_chunks,
            blocks_skipped=self._blocks_skipped,
        )

    def __repr__(self) -> str:
        where = "disk" if self._path is not None else "memory"
        return (
            f"SSTable(rows={self._n_rows}, blocks={len(self._block_keys)}, "
            f"format={self._block_format}, compressed={self.compressed}, {where})"
        )


def _row_entries(payload: bytes) -> Iterator[Tuple[object, bytes]]:
    """Decode a row-major block payload (tag stripped, decompressed)."""
    offset = 0
    end = len(payload)
    while offset < end:
        entry_len, offset = decode_varint(payload, offset)
        entry_end = offset + entry_len
        key, key_end = decode_key(payload, offset)
        row, _ = decode_bytes(payload, key_end)
        yield key, row
        offset = entry_end


def compact(
    tables: Sequence[SSTable],
    compressed: bool = True,
    path=None,
    block_cache: Optional[BlockCache] = None,
    block_format: str = BLOCK_FORMAT_ROW,
    codec: Optional[ColumnarCodec] = None,
) -> SSTable:
    """Size-tiered compaction: merge runs newest-last wins, drop shadowed rows.

    Tombstones are applied (deleted keys vanish) and then discarded — the
    result is a single clean run, like a Cassandra major compaction.  The
    superseded tables' cached blocks are released (``delete_file``); the
    merged table starts cold under ``block_cache``.  The merged table is
    written in ``block_format`` regardless of what the inputs stored, so
    compacting is also how row-major history migrates to columnar.
    """
    merged = {}
    deleted = set()
    for table in tables:  # oldest first; later tables overwrite
        deleted |= set(table.tombstones)
        for key, row in table.items():
            merged[key] = row
            deleted.discard(key)
    for key in deleted:
        merged.pop(key, None)
    items = sorted(merged.items(), key=lambda item: item[0])
    result = SSTable(
        items,
        compressed=compressed,
        path=path,
        block_cache=block_cache,
        block_format=block_format,
        codec=codec,
    )
    for table in tables:
        table.delete_file()
    return result
