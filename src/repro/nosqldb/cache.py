"""Read-path caches for the columnar NoSQL engine.

Cassandra keeps point reads affordable with a layered cache hierarchy:
the *block* (chunk) cache holds decompressed SSTable chunks so a read
pays zlib/LZ4 at most once per block, and the optional *row* cache holds
whole rows so a hot key skips the storage walk entirely.  This module
reproduces both as byte-budgeted LRU caches with hit/miss/eviction
counters, which :meth:`~repro.nosqldb.columnfamily.ColumnFamily.stats`
and ``repro.dwarf.stats.describe`` surface (docs/read_path.md).

Budgets come from the environment, mirroring ``REPRO_SCALE`` /
``REPRO_CHECK`` / ``REPRO_WORKERS``:

* ``REPRO_BLOCK_CACHE_BYTES`` — decoded-block budget per column family
  (default :data:`DEFAULT_BLOCK_CACHE_BYTES`; ``0`` disables).
* ``REPRO_ROW_CACHE_BYTES`` — encoded-row budget per column family
  (default :data:`DEFAULT_ROW_CACHE_BYTES`; ``0`` disables).

Both caches are plain LRU over an ``OrderedDict``; entries are charged
their payload size plus a fixed per-entry overhead so budgets bound real
memory, not just payload bytes.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.telemetry import get_registry

# Live cache metrics (labelled by cache kind) so the warm-query pass and
# `repro stats` read traffic as it happens instead of re-snapshotting
# per-table stats tuples.  Children are bound once per cache instance.
_M_CACHE_HITS = get_registry().counter(
    "nosqldb_cache_hits_total", "cache hits", labels=("cache",)
)
_M_CACHE_MISSES = get_registry().counter(
    "nosqldb_cache_misses_total", "cache misses", labels=("cache",)
)
_M_CACHE_EVICTIONS = get_registry().counter(
    "nosqldb_cache_evictions_total", "LRU evictions", labels=("cache",)
)
_M_CACHE_INVALIDATIONS = get_registry().counter(
    "nosqldb_cache_invalidations_total", "explicit invalidations", labels=("cache",)
)

#: Default decoded-block budget per column family (bytes).
DEFAULT_BLOCK_CACHE_BYTES = 32 * 1024 * 1024

#: Default encoded-row budget per column family (bytes).
DEFAULT_ROW_CACHE_BYTES = 4 * 1024 * 1024

#: Fixed bookkeeping charge per cached entry (keys, list headers, links).
ENTRY_OVERHEAD = 64

#: Sentinel distinguishing a cached negative read ("key is absent") from
#: an uncached key; ``RowCache.get`` returns it so callers can tell the
#: two apart without a second lookup.
NEGATIVE = object()


def _env_budget(name: str, default: int) -> int:
    """Byte budget from the environment; malformed values fall back."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        return default


def block_cache_budget() -> int:
    """The configured per-table block-cache budget (0 = disabled)."""
    return _env_budget("REPRO_BLOCK_CACHE_BYTES", DEFAULT_BLOCK_CACHE_BYTES)


def row_cache_budget() -> int:
    """The configured per-table row-cache budget (0 = disabled)."""
    return _env_budget("REPRO_ROW_CACHE_BYTES", DEFAULT_ROW_CACHE_BYTES)


class CacheStats(NamedTuple):
    """Counters for one cache: sizing plus lifetime hit/miss traffic."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    entries: int
    used_bytes: int
    capacity_bytes: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from the cache (0.0 when idle)."""
        requests = self.hits + self.misses
        return self.hits / requests if requests else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe mapping including the derived ``requests``/``hit_rate``."""
        out: Dict[str, object] = dict(self._asdict())
        out["requests"] = self.requests
        out["hit_rate"] = self.hit_rate
        return out


class _LRUBytes:
    """A byte-budgeted LRU map: shared machinery of both caches."""

    KIND = "lru"

    __slots__ = (
        "_entries", "_capacity", "_used", "_hits", "_misses", "_evictions",
        "_invalidations", "_m_hits", "_m_misses", "_m_evictions",
        "_m_invalidations",
    )

    def __init__(self, capacity_bytes: int) -> None:
        self._entries: "OrderedDict[object, Tuple[object, int]]" = OrderedDict()
        self._capacity = max(0, capacity_bytes)
        self._used = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        kind = self.KIND
        self._m_hits = _M_CACHE_HITS.labels(kind)
        self._m_misses = _M_CACHE_MISSES.labels(kind)
        self._m_evictions = _M_CACHE_EVICTIONS.labels(kind)
        self._m_invalidations = _M_CACHE_INVALIDATIONS.labels(kind)

    @property
    def enabled(self) -> bool:
        return self._capacity > 0

    def _get(self, key, default=None):
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            self._m_misses.inc()
            return default
        self._entries.move_to_end(key)
        self._hits += 1
        self._m_hits.inc()
        return entry[0]

    def peek(self, key, default=None):
        """Read without touching LRU order or hit/miss counters.

        Internal probes (the write path's liveness check) use this so
        cache statistics reflect only real read traffic.
        """
        entry = self._entries.get(key)
        return default if entry is None else entry[0]

    def _put(self, key, value, nbytes: int) -> None:
        if not self._capacity:
            return
        charged = nbytes + ENTRY_OVERHEAD
        if charged > self._capacity:
            return  # larger than the whole budget: never cacheable
        previous = self._entries.pop(key, None)
        if previous is not None:
            self._used -= previous[1]
        self._entries[key] = (value, charged)
        self._used += charged
        while self._used > self._capacity:
            _, (_, evicted_bytes) = self._entries.popitem(last=False)
            self._used -= evicted_bytes
            self._evictions += 1
            self._m_evictions.inc()

    def _drop(self, key) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._used -= entry[1]
            self._invalidations += 1
            self._m_invalidations.inc()

    def clear(self) -> None:
        """Invalidate everything (counted once per dropped entry)."""
        dropped = len(self._entries)
        self._invalidations += dropped
        if dropped:
            self._m_invalidations.inc(dropped)
        self._entries.clear()
        self._used = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            invalidations=self._invalidations,
            entries=len(self._entries),
            used_bytes=self._used,
            capacity_bytes=self._capacity,
        )


class BlockCache(_LRUBytes):
    """Decoded SSTable blocks, keyed by ``(table_uid, block_index)``.

    The cached value is the block decoded *once*: row-major blocks as
    parallel sorted lists ``(keys, rows)`` so point reads bisect instead
    of rescanning, columnar blocks as
    :class:`~repro.nosqldb.columnar.ColumnVectors` so one decode serves
    vectorized predicate evaluation, lazy typed-column decode *and*
    byte-exact row rematerialization.  SSTables are immutable, so
    entries never go stale — invalidation exists only to release the
    budget of superseded tables (compaction, truncate).
    """

    KIND = "block"

    def get(self, table_uid: int, index: int):
        return self._get((table_uid, index))

    def put(
        self, table_uid: int, index: int, keys: List, rows: List[bytes]
    ) -> None:
        nbytes = sum(len(row) for row in rows) + ENTRY_OVERHEAD * len(keys)
        self._put((table_uid, index), (keys, rows), nbytes)

    def put_entry(self, table_uid: int, index: int, value, nbytes=None) -> None:
        """Cache a decoded block of either shape.  ``nbytes`` is the
        charge for non-tuple values (e.g. ``ColumnVectors.nbytes``);
        ``(keys, rows)`` tuples may pass None to use the row formula."""
        if nbytes is None:
            keys, rows = value
            nbytes = sum(len(row) for row in rows) + ENTRY_OVERHEAD * len(keys)
        self._put((table_uid, index), value, nbytes)

    def drop_table(self, table_uid: int) -> None:
        """Release every block of one (superseded) SSTable."""
        for key in [k for k in self._entries if k[0] == table_uid]:
            self._drop(key)

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"BlockCache(entries={s.entries}, used={s.used_bytes}/"
            f"{s.capacity_bytes}B, hit_rate={s.hit_rate:.2f})"
        )


class RowCache(_LRUBytes):
    """Encoded rows keyed by primary key, with negative-read caching.

    Stores the *encoded* row (the column family decodes on the way out,
    as Cassandra's row cache stores serialized partitions).  Absent keys
    are cached as :data:`NEGATIVE` so repeated misses also skip the
    storage walk.  Every mutation of a key must call :meth:`invalidate`
    — the strict-invalidation rules live in docs/read_path.md and are
    enforced by ``repro.analysis.sstable_check.columnfamily_check``.
    """

    KIND = "row"

    def get(self, key):
        """The cached encoded row, :data:`NEGATIVE`, or None (uncached)."""
        return self._get(key)

    def put(self, key, encoded: Optional[bytes]) -> None:
        """Cache an encoded row, or a negative read when ``encoded`` is None."""
        if encoded is None:
            self._put(key, NEGATIVE, 0)
        else:
            self._put(key, encoded, len(encoded))

    def invalidate(self, key) -> None:
        self._drop(key)

    def items(self):
        """Snapshot of cached ``(key, encoded_or_NEGATIVE)`` pairs (for checkers)."""
        return [(key, value) for key, (value, _) in self._entries.items()]

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"RowCache(entries={s.entries}, used={s.used_bytes}/"
            f"{s.capacity_bytes}B, hit_rate={s.hit_rate:.2f})"
        )
