"""Column-major SSTable block codec with zone maps and dictionaries.

Row-major blocks store each row as one contiguous cell list; a scan
that needs two of eight columns still decodes (and hashes, via the
row-decode memo) every cell of every row.  This module implements the
columnar alternative sketched in *Columnar Formats for Schemaless
LSM-based Document Stores*: within one block, cell values are
regrouped into per-column vectors so a pushed-down predicate touches
only the vectors it reads, whole blocks are skipped via per-column
zone maps, and surviving rows are materialized late.

The layout is exact — no information is dropped.  A columnar block
records, per row, the original cell *order* (Cassandra writes cells in
statement order, not schema order) and, per cell, the raw value bytes
and raw 8-byte timestamp.  :meth:`ColumnVectors.materialize` therefore
reproduces the original encoded row byte-for-byte, which the
``sstable.columnar-roundtrip`` invariant and the row-cache agreement
checker both rely on.

Block payload layout (before the 1-byte format tag and compression)::

    varint n_rows
    per row:    encode_key(key) · varint n_cells · n_cells x varint col_idx
    varint n_cols
    per column: encode_text(name) · flag(0=plain|1=dict)
                8-byte timestamp per present cell (row order)
                plain: encode_bytes(raw value) per present cell
                dict:  encode_bytes_vector(distinct raws, first-occurrence
                       order) · varint dictionary index per present cell

Zone maps are *not* serialized: like the sparse block index they are an
in-memory structure rebuilt whenever an SSTable is (re)built.  Each
zone entry is ``(lo, hi, distinct)`` over the block's decoded non-NULL
values; ``distinct`` is an exact frozenset when the block has at most
:data:`ZONE_DISTINCT_MAX` distinct values (else None), and a column
with *no* non-NULL value in the block gets ``(None, None, frozenset())``
so equality predicates can skip it outright.  Set-typed columns and
columns containing NaN are excluded (unordered / unorderable).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.nosqldb.types import CQLType, SetType
from repro.storage.btree import decode_key, encode_key
from repro.storage.encoding import (
    decode_bytes,
    decode_bytes_vector,
    decode_text,
    encode_bytes,
    encode_bytes_vector,
    encode_text,
)
from repro.storage.varint import decode_varint, encode_varint

BLOCK_FORMAT_ROW = "row"
BLOCK_FORMAT_COLUMNAR = "columnar"
BLOCK_FORMATS = (BLOCK_FORMAT_ROW, BLOCK_FORMAT_COLUMNAR)

#: First byte of every stored block: the format tag ('R' / 'C').  The
#: tag sits *outside* compression so readers can branch before paying
#: zlib, and so mixed-format tables (e.g. mid-migration compactions)
#: stay readable forever.
TAG_ROW = 0x52
TAG_COLUMNAR = 0x43

#: Dictionary-encode a column chunk only when it is populated enough
#: for the dictionary to amortize (>= DICT_MIN_ROWS present cells) and
#: genuinely low-cardinality (distinct <= present / DICT_MAX_RATIO).
DICT_MIN_ROWS = 8
DICT_MAX_RATIO = 2

#: Keep the exact distinct-value set in a zone map up to this many
#: values.  DWARF dimension members are low-cardinality per block, and
#: exact membership prunes equality/IN predicates that min/max ranges
#: cannot (dense key domains make lo<=v<=hi nearly always true).  Sized
#: to stay useful at columnar block granularity (tens of rows per
#: block — see ``COLUMNAR_BLOCK_FACTOR`` in the sstable module).
ZONE_DISTINCT_MAX = 64


def default_block_format() -> str:
    """Block format from ``REPRO_BLOCK_FORMAT``, default columnar."""
    raw = os.environ.get("REPRO_BLOCK_FORMAT", "").strip().lower()
    if raw in BLOCK_FORMATS:
        return raw
    return BLOCK_FORMAT_COLUMNAR


class ColumnarCodec:
    """Schema-aware block transcoder for one column family.

    Cell values in the Cassandra row codec are not self-delimiting, so
    splitting an encoded row into cells needs the column types; the
    owning column family builds one codec from its schema and shares it
    with every SSTable it flushes or compacts.
    """

    __slots__ = ("_types", "_order", "_encoded_names", "column_names")

    def __init__(self, columns: Sequence[Tuple[str, CQLType]]) -> None:
        self._types: Dict[str, CQLType] = dict(columns)
        self._order = {name: i for i, (name, _) in enumerate(columns)}
        self._encoded_names = {name: encode_text(name) for name, _ in columns}
        self.column_names: Tuple[str, ...] = tuple(name for name, _ in columns)

    # -- row codec bridge ---------------------------------------------
    def split_cells(self, encoded: bytes) -> List[Tuple[str, bytes, bytes]]:
        """Split an encoded row into ``(name, ts8, raw_value)`` cells in
        stored order.  Raises KeyError for columns outside the schema
        (the builder then falls back to a row-major block)."""
        cells = []
        count, offset = decode_varint(encoded, 0)
        for _ in range(count):
            name, offset = decode_text(encoded, offset)
            ts = bytes(encoded[offset:offset + 8])
            offset += 8
            cql_type = self._types.get(name)
            if cql_type is None:
                raise KeyError(f"cell for unknown column {name!r}")
            _, end = cql_type.decode(encoded, offset)
            cells.append((name, ts, bytes(encoded[offset:end])))
            offset = end
        return cells

    def decode_value(self, name: str, raw: bytes):
        value, _ = self._types[name].decode(raw, 0)
        return value

    def encoded_name(self, name: str) -> bytes:
        return self._encoded_names[name]

    def zone_eligible(self, name: str) -> bool:
        cql_type = self._types.get(name)
        return cql_type is not None and not isinstance(cql_type, SetType)

    # -- block encode --------------------------------------------------
    def encode_block(self, items: Sequence[Tuple[object, bytes]]):
        """Transcode sorted ``(key, encoded_row)`` entries into one
        columnar payload.

        Returns ``(payload, zones, dict_chunks, plain_chunks)`` where
        ``zones`` maps zone-eligible column names to their
        ``(lo, hi, distinct)`` entries for this block.
        """
        rows_cells = [self.split_cells(row) for _, row in items]
        present = {name for cells in rows_cells for name, _, _ in cells}
        names = sorted(present, key=lambda name: self._order[name])
        index_of = {name: i for i, name in enumerate(names)}

        parts = [encode_varint(len(items))]
        for (key, _), cells in zip(items, rows_cells):
            parts.append(encode_key(key))
            parts.append(encode_varint(len(cells)))
            for name, _, _ in cells:
                parts.append(encode_varint(index_of[name]))

        parts.append(encode_varint(len(names)))
        dict_chunks = 0
        zones: Dict[str, tuple] = {}
        for name in names:
            timestamps: List[bytes] = []
            values: List[bytes] = []
            for cells in rows_cells:
                for cell_name, ts, raw in cells:
                    if cell_name == name:
                        timestamps.append(ts)
                        values.append(raw)
                        break
            distinct_index: Dict[bytes, int] = {}
            distinct_order: List[bytes] = []
            for raw in values:
                if raw not in distinct_index:
                    distinct_index[raw] = len(distinct_order)
                    distinct_order.append(raw)
            use_dict = (
                len(values) >= DICT_MIN_ROWS
                and len(distinct_order) <= len(values) // DICT_MAX_RATIO
            )
            parts.append(encode_text(name))
            parts.append(b"\x01" if use_dict else b"\x00")
            parts.extend(timestamps)
            if use_dict:
                dict_chunks += 1
                parts.append(encode_bytes_vector(distinct_order))
                parts.extend(encode_varint(distinct_index[raw]) for raw in values)
            else:
                parts.extend(encode_bytes(raw) for raw in values)
            if self.zone_eligible(name):
                zone = self._zone_entry(name, distinct_order)
                if zone is not None:
                    zones[name] = zone
        # Columns wholly absent from the block are exactly representable
        # too: an all-NULL zone entry lets equality predicates skip it.
        for name in self.column_names:
            if name not in index_of and self.zone_eligible(name):
                zones[name] = (None, None, frozenset())
        return b"".join(parts), zones, dict_chunks, len(names) - dict_chunks

    def _zone_entry(self, name: str, distinct_raw: Sequence[bytes]):
        if not distinct_raw:
            return (None, None, frozenset())
        values = [self.decode_value(name, raw) for raw in distinct_raw]
        for value in values:
            if isinstance(value, float) and value != value:
                return None  # NaN poisons ordering: no zone map
        try:
            lo, hi = min(values), max(values)
        except TypeError:
            return None
        distinct = frozenset(values) if len(values) <= ZONE_DISTINCT_MAX else None
        return (lo, hi, distinct)

    # -- block decode --------------------------------------------------
    def decode_block(self, payload: bytes) -> "ColumnVectors":
        """Parse one columnar payload into a :class:`ColumnVectors`.

        This is the cold-scan hot path — every non-skipped block of a
        filtered scan comes through here — so the varint/key/length
        reads are inlined (one-byte fast path, the overwhelmingly common
        case for directory entries) instead of calling the shared
        decoders per value, and timestamps are left in place in the
        payload for lazy extraction (scans never look at them; only
        :meth:`ColumnVectors.materialize` does).
        """
        buf = payload
        o = 0
        # n_rows (counts are non-negative, so zigzag is value << 1)
        b = buf[o]
        o += 1
        if b < 0x80:
            n_rows = b >> 1
        else:
            u = b & 0x7F
            shift = 7
            while True:
                b = buf[o]
                o += 1
                u |= (b & 0x7F) << shift
                if b < 0x80:
                    break
                shift += 7
            n_rows = u >> 1

        keys: List[object] = []
        keys_append = keys.append
        orders: List[Tuple[int, ...]] = []
        orders_append = orders.append
        for _ in range(n_rows):
            tag = buf[o]
            o += 1
            if tag == 0x01:  # int key (the engines' usual primary key)
                b = buf[o]
                o += 1
                if b < 0x80:
                    u = b
                else:
                    u = b & 0x7F
                    shift = 7
                    while True:
                        b = buf[o]
                        o += 1
                        u |= (b & 0x7F) << shift
                        if b < 0x80:
                            break
                        shift += 7
                keys_append((u >> 1) if not u & 1 else -((u + 1) >> 1))
            elif tag == 0x02:  # text key
                b = buf[o]
                if b < 0x80:
                    length = b >> 1
                    o += 1
                else:
                    length, o = decode_varint(buf, o)
                end = o + length
                keys_append(bytes(buf[o:end]).decode("utf-8"))
                o = end
            else:
                key, o = decode_key(buf, o - 1)
                keys_append(key)
            b = buf[o]
            if b < 0x80:
                n_cells = b >> 1
                o += 1
            else:
                n_cells, o = decode_varint(buf, o)
            # column indexes are tiny: the one-byte path is effectively
            # always taken, the fallback only guards pathological widths
            order = []
            order_append = order.append
            for _ in range(n_cells):
                b = buf[o]
                if b < 0x80:
                    order_append(b >> 1)
                    o += 1
                else:
                    col_index, o = decode_varint(buf, o)
                    order_append(col_index)
            orders_append(tuple(order))

        b = buf[o]
        if b < 0x80:
            n_cols = b >> 1
            o += 1
        else:
            n_cols, o = decode_varint(buf, o)
        present_rows: List[List[int]] = [[] for _ in range(n_cols)]
        for i, order in enumerate(orders):
            for col_index in order:
                present_rows[col_index].append(i)

        names: List[str] = []
        ts_offsets: List[int] = []
        raw_cols: List[List[Optional[bytes]]] = []
        for col_index in range(n_cols):
            name, o = decode_text(buf, o)
            names.append(name)
            flag = buf[o]
            o += 1
            rows_here = present_rows[col_index]
            ts_offsets.append(o)
            o += 8 * len(rows_here)  # timestamps stay in place, read lazily
            raw_vec: List[Optional[bytes]] = [None] * n_rows
            if flag:
                distinct, o = decode_bytes_vector(buf, o)
                for i in rows_here:
                    b = buf[o]
                    if b < 0x80:
                        raw_vec[i] = distinct[b >> 1]
                        o += 1
                    else:
                        dict_idx, o = decode_varint(buf, o)
                        raw_vec[i] = distinct[dict_idx]
            else:
                for i in rows_here:
                    b = buf[o]
                    o += 1
                    if b < 0x80:
                        length = b >> 1
                    else:
                        u = b & 0x7F
                        shift = 7
                        while True:
                            b = buf[o]
                            o += 1
                            u |= (b & 0x7F) << shift
                            if b < 0x80:
                                break
                            shift += 7
                        length = u >> 1
                    end = o + length
                    raw_vec[i] = buf[o:end]
                    o = end
            raw_cols.append(raw_vec)
        return ColumnVectors(
            self, payload, keys, tuple(names), orders, present_rows,
            ts_offsets, raw_cols,
        )


class ColumnVectors:
    """One decoded columnar block: the form the block cache holds.

    Raw value bytes are kept verbatim (typed decode is lazy and
    memoized per column; per-cell timestamps stay inside the retained
    payload until :meth:`materialize` asks for them), so caching a
    block once serves both vector predicate evaluation and byte-exact
    row rematerialization.
    """

    __slots__ = (
        "codec", "keys", "names", "orders", "_payload", "_present",
        "_ts_offsets", "_ts", "_raw", "_typed", "_val_memo", "_rows",
        "nbytes",
    )

    def __init__(
        self, codec, payload, keys, names, orders, present_rows,
        ts_offsets, raw_cols,
    ) -> None:
        self.codec = codec
        self.keys = keys
        self.names = names
        self.orders = orders
        self._payload = payload
        self._present = present_rows
        self._ts_offsets = ts_offsets
        self._ts: Dict[int, List[Optional[bytes]]] = {}
        self._raw = raw_cols
        self._typed: Dict[str, List] = {}
        self._val_memo: Dict[Tuple[int, bytes], object] = {}
        self._rows: Optional[List[bytes]] = None
        self.nbytes = len(payload) + 16 * len(keys)  # payload + directory

    def __len__(self) -> int:
        return len(self.keys)

    def typed(self, name: str) -> List:
        """Column ``name`` decoded into a value vector (None where the
        row has no such cell), memoized on the cached block.  Decoding
        goes through a per-distinct-bytes memo: dictionary-encoded and
        low-cardinality chunks (DWARF keys, schema ids, flags) decode
        each distinct value once, not once per row."""
        vector = self._typed.get(name)
        if vector is None:
            try:
                col_index = self.names.index(name)
            except ValueError:
                vector = [None] * len(self.keys)
            else:
                decode = self.codec.decode_value
                memo: Dict[bytes, object] = {}
                vector = []
                append = vector.append
                for raw in self._raw[col_index]:
                    if raw is None:
                        append(None)
                        continue
                    value = memo.get(raw)
                    if value is None and raw not in memo:
                        value = decode(name, raw)
                        memo[raw] = value
                    append(value)
            self._typed[name] = vector
        return vector

    def decoded_row(self, i: int) -> Dict[str, object]:
        """Row ``i`` as the same dict ``ColumnFamily.decode_row`` would
        produce from the materialized bytes (every schema column, None
        where absent).  Decodes the row's own cells directly from the
        raw vectors — late materialization never forces whole-column
        decode of columns the predicate didn't touch."""
        row = dict.fromkeys(self.codec.column_names)
        names = self.names
        raw_cols = self._raw
        memo = self._val_memo
        decode = self.codec.decode_value
        for col_index in self.orders[i]:
            raw = raw_cols[col_index][i]
            memo_key = (col_index, raw)
            value = memo.get(memo_key)
            if value is None and memo_key not in memo:
                value = decode(names[col_index], raw)
                memo[memo_key] = value
            row[names[col_index]] = value
        return row

    def rows_at(self, indices: List[int]) -> List[Dict[str, object]]:
        """Decoded row dicts for the given row indexes (ascending).

        Sparse hits decode cell-by-cell via :meth:`decoded_row`; dense
        hits (a meaningful fraction of the block surviving a predicate)
        switch to column-at-a-time decoding through the memoized
        :meth:`typed` vectors, which pays each column's decode once per
        block instead of once per surviving row.
        """
        if len(indices) * 4 < len(self.keys):
            return [self.decoded_row(i) for i in indices]
        pairs = [(name, self.typed(name)) for name in self.codec.column_names]
        return [{name: vec[i] for name, vec in pairs} for i in indices]

    def _ts_vec(self, col_index: int) -> List[Optional[bytes]]:
        """Timestamps of column ``col_index`` sliced out of the payload
        on first use (scans never need them; materialization does)."""
        vec = self._ts.get(col_index)
        if vec is None:
            vec = [None] * len(self.keys)
            payload = self._payload
            offset = self._ts_offsets[col_index]
            for i in self._present[col_index]:
                vec[i] = payload[offset:offset + 8]
                offset += 8
            self._ts[col_index] = vec
        return vec

    def materialize(self, i: int) -> bytes:
        """Row ``i`` re-encoded byte-identically to its row-major form."""
        order = self.orders[i]
        parts = [encode_varint(len(order))]
        encoded_name = self.codec.encoded_name
        names = self.names
        for col_index in order:
            parts.append(encoded_name(names[col_index]))
            parts.append(self._ts_vec(col_index)[i])
            parts.append(self._raw[col_index][i])
        return b"".join(parts)

    def all_rows(self) -> Tuple[List, List[bytes]]:
        """The block in classic ``(keys, rows)`` form, materialized once
        and memoized — point reads through columnar blocks use this."""
        if self._rows is None:
            self._rows = [self.materialize(i) for i in range(len(self.keys))]
        return self.keys, self._rows
