"""The commit log: the durability half of Cassandra's write path.

Every mutation is appended here, fully serialised, *before* it reaches a
memtable.  After a crash the memtables are gone but the log survives;
:meth:`CommitLog.replay` re-applies every mutation recorded since the
last checkpoint.  SSTables are never in the log's scope — once a
memtable flushes, :meth:`checkpoint` discards the covered segment.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.storage.btree import encode_key
from repro.storage.encoding import decode_bytes, decode_text, encode_bytes, encode_text
from repro.nosqldb.sstable import _decode_key
from repro.telemetry import get_registry

_REGISTRY = get_registry()
_M_APPENDS = _REGISTRY.counter(
    "nosqldb_commitlog_appends_total", "mutations appended to the commit log"
)
_M_APPEND_BYTES = _REGISTRY.counter(
    "nosqldb_commitlog_bytes_total", "serialized bytes appended to the commit log"
)

#: Per-record header: segment id, position, checksum.
RECORD_HEADER_BYTES = 12


class CommitLog:
    """An append-only, replayable mutation log for one keyspace."""

    __slots__ = ("_buffer", "_n_records")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._n_records = 0

    def append(self, table_name: str, key, encoded_row: bytes) -> None:
        """Record one mutation (called before the memtable write)."""
        before = len(self._buffer)
        self._buffer += b"\x00" * RECORD_HEADER_BYTES
        self._buffer += encode_text(table_name)
        self._buffer += encode_key(key)
        self._buffer += encode_bytes(encoded_row)
        self._n_records += 1
        _M_APPENDS.inc()
        _M_APPEND_BYTES.inc(len(self._buffer) - before)

    def records(self) -> Iterator[Tuple[str, object, bytes]]:
        """Decode every logged ``(table, key, encoded_row)`` mutation."""
        buffer = self._buffer
        offset = 0
        end = len(buffer)
        while offset < end:
            offset += RECORD_HEADER_BYTES
            table_name, offset = decode_text(buffer, offset)
            key, offset = _decode_key(buffer, offset)
            encoded_row, offset = decode_bytes(buffer, offset)
            yield table_name, key, encoded_row

    def checkpoint(self) -> None:
        """Discard the log (all covered memtables flushed)."""
        del self._buffer[:]
        self._n_records = 0

    def __len__(self) -> int:
        return self._n_records

    @property
    def size_bytes(self) -> int:
        return len(self._buffer)

    # bytearray-compatible growth used by legacy callers
    def __iadd__(self, raw: bytes) -> "CommitLog":  # pragma: no cover - compat
        self._buffer += raw
        return self
