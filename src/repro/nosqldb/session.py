"""CQL sessions: the client surface of the NoSQL engine.

Mirrors the Python Cassandra driver: ``execute`` for one-off statements,
``prepare`` + bound parameters for the hot insert path, and
``execute_batch`` for the bulk loads the paper uses ("the DWARF cubes
were inserted in bulk", §5).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.nosqldb.cql import ast
from repro.nosqldb.cql.executor import ResultSet, execute, make_insert_plan
from repro.nosqldb.cql.parser import parse


class PreparedStatement:
    """A parsed statement with ``?`` bind markers, reusable across executions."""

    __slots__ = ("statement", "text", "_plan_key", "_plan")

    def __init__(self, text: str, statement: ast.Statement) -> None:
        self.text = text
        self.statement = statement
        self._plan_key = None
        self._plan = None

    def __repr__(self) -> str:
        return f"PreparedStatement({self.text!r})"


class Session:
    """A connection to the engine with an optional current keyspace."""

    def __init__(self, engine, keyspace: Optional[str] = None) -> None:
        self.engine = engine
        self.keyspace = keyspace

    # ------------------------------------------------------------------
    def execute(self, cql: str, params: Sequence = ()) -> Optional[ResultSet]:
        """Parse and run one CQL statement."""
        statement = parse(cql)
        result, new_keyspace = execute(self.engine, statement, params, self.keyspace)
        if new_keyspace is not None:
            self.keyspace = new_keyspace
        return result

    def prepare(self, cql: str) -> PreparedStatement:
        return PreparedStatement(cql, parse(cql))

    def execute_prepared(
        self, prepared: PreparedStatement, params: Sequence = ()
    ) -> Optional[ResultSet]:
        result, new_keyspace = execute(self.engine, prepared.statement, params, self.keyspace)
        if new_keyspace is not None:
            self.keyspace = new_keyspace
        return result

    def execute_batch(
        self, operations: Iterable[Tuple[PreparedStatement, Sequence]]
    ) -> int:
        """Run prepared mutations back-to-back; returns the count executed.

        This models a CQL ``BEGIN BATCH ... APPLY BATCH`` bulk load: one
        parse per statement shape, one execution plan per statement, then
        pure engine work per row.
        """
        count = 0
        for prepared, params in operations:
            plan = self._plan_for(prepared)
            if plan is not None:
                plan(params)
            else:
                execute(self.engine, prepared.statement, params, self.keyspace)
            count += 1
        return count

    def _plan_for(self, prepared: PreparedStatement):
        """Cached server-side execution plan for a prepared INSERT."""
        key = (id(self.engine), self.keyspace)
        if prepared._plan_key != key:
            prepared._plan_key = key
            prepared._plan = make_insert_plan(self.engine, prepared.statement, self.keyspace)
        return prepared._plan

    def __repr__(self) -> str:
        return f"Session(keyspace={self.keyspace!r})"
