"""CQL sessions: the client surface of the NoSQL engine.

Mirrors the Python Cassandra driver: ``execute`` for one-off statements,
``prepare`` + bound parameters for the hot insert path, and
``execute_batch`` for the bulk loads the paper uses ("the DWARF cubes
were inserted in bulk", §5).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.flags import checks_enabled
from repro.nosqldb.cql import ast
from repro.nosqldb.cql.executor import (
    ResultSet,
    build_select_plan,
    execute,
    make_insert_plan,
    make_select_many_plan,
    plan_insert_template,
)
from repro.nosqldb.cql.parser import parse
from repro.nosqldb.errors import InvalidRequest
from repro.query import (
    UNPLANNABLE,
    AnalyzedStatement,
    Plan,
    PlanCache,
    analyze_plan,
    counter_totals,
    record_query,
)
from repro.telemetry import get_query_log, wall_clock

_QUERY_LOG = get_query_log()


class CompiledInsert:
    """A fully-planned INSERT bound to one table.

    The zero-parse bulk-store fast path: the statement text is parsed and
    planned exactly once at :meth:`Session.compile_insert` time; after
    that, :meth:`execute_batch` binds parameter rows against the resolved
    column template and streams them through the column family's bulk
    write loop — no lexer, no parser, no executor dispatch, no per-row
    plan lookup.  The stored bytes are identical to what per-row prepared
    execution produces (same write-clock sequence, same cell encoding).
    """

    __slots__ = ("text", "table", "_template", "_pk_slot")

    def __init__(self, text: str, table, template, pk_slot) -> None:
        self.text = text
        self.table = table
        self._template = template
        self._pk_slot = pk_slot

    def execute(self, params: Sequence = ()) -> None:
        """Insert one parameter row."""
        self.execute_batch((params,))

    def execute_batch(self, rows: Iterable[Sequence]) -> int:
        """Insert many parameter rows; returns the count written."""
        template = self._template
        _, pk_is_bind, pk_value = self._pk_slot
        table_name = self.table.name

        def bound_rows():
            for params in rows:
                key = params[pk_value] if pk_is_bind else pk_value
                if key is None:
                    raise InvalidRequest(f"INSERT into {table_name!r} misses primary key")
                bound = []
                for column, is_bind, value in template:
                    resolved = params[value] if is_bind else value
                    if resolved is not None:
                        bound.append((column, resolved))
                yield key, bound

        count = self.table.insert_bound_many(bound_rows())
        if checks_enabled():
            # REPRO_CHECK=1 sanitizer mode: after a bulk write the column
            # family (SSTables, commit-log agreement, indexes) must be sound.
            from repro.analysis.runner import runtime_check

            runtime_check(self.table, label=f"execute_batch[{table_name}]")
        return count

    def __repr__(self) -> str:
        return f"CompiledInsert({self.text!r})"


class PreparedStatement:
    """A parsed statement with ``?`` bind markers, reusable across executions."""

    __slots__ = ("statement", "text", "_plan_key", "_plan")

    def __init__(self, text: str, statement: ast.Statement) -> None:
        self.text = text
        self.statement = statement
        self._plan_key = None
        self._plan = None

    def __repr__(self) -> str:
        return f"PreparedStatement({self.text!r})"


class Session:
    """A connection to the engine with an optional current keyspace.

    SELECTs are compiled into :mod:`repro.query` plans and memoised in
    the session's :class:`~repro.query.PlanCache`, keyed on
    ``(current keyspace, statement text)`` — a warm statement skips the
    parser and the planner entirely and goes straight to the compiled
    operator tree.  Cached plans carry guards that revalidate the
    resolved column families (identity + index signature) on every hit,
    so DDL invalidates them instead of silently replaying stale access
    paths.
    """

    def __init__(self, engine, keyspace: Optional[str] = None) -> None:
        self.engine = engine
        self.keyspace = keyspace
        self.plan_cache = PlanCache()

    # ------------------------------------------------------------------
    def execute(self, cql: str, params: Sequence = ()) -> Optional[ResultSet]:
        """Parse and run one CQL statement."""
        if _QUERY_LOG.enabled:
            return self._execute_logged(cql, params)
        key = (self.keyspace, cql)
        plan = self.plan_cache.get(key)
        if isinstance(plan, Plan):
            return ResultSet(plan.run(params))
        if isinstance(plan, AnalyzedStatement):
            return self._run_analyzed(plan, params)
        return self._dispatch(parse(cql), cql, params)

    def _execute_logged(self, cql: str, params: Sequence) -> Optional[ResultSet]:
        """The :meth:`execute` body with query-history recording.

        A separate method so the REPRO_QUERY_LOG=0 hot path above pays
        exactly one attribute check and allocates nothing extra."""
        t0 = wall_clock()
        key = (self.keyspace, cql)
        plan = self.plan_cache.get(key)
        if isinstance(plan, Plan):
            before = counter_totals(plan)
            result = ResultSet(plan.run(params))
            record_query(_QUERY_LOG, cql, "cql", wall_clock() - t0,
                         len(result), plan=plan, before=before)
            return result
        if isinstance(plan, AnalyzedStatement):
            result = self._run_analyzed(plan, params)
            record_query(_QUERY_LOG, cql, "cql", wall_clock() - t0,
                         len(result), analyzed=result.analyzed)
            return result
        result = self._dispatch(parse(cql), cql, params)
        # A cold SELECT (or EXPLAIN ANALYZE) was just compiled and cached;
        # its fresh counters are exactly this execution's actuals.  peek()
        # keeps the read out of the plan-cache hit/miss metrics.
        record_query(_QUERY_LOG, cql, "cql", wall_clock() - t0,
                     len(result) if result is not None else 0,
                     plan=self.plan_cache.peek(key),
                     analyzed=getattr(result, "analyzed", None))
        return result

    def _run_analyzed(self, entry: AnalyzedStatement, params: Sequence) -> ResultSet:
        analyzed = analyze_plan(entry.plan, params)
        result = ResultSet(analyzed.report)
        result.analyzed = analyzed
        return result

    def prepare(self, cql: str) -> PreparedStatement:
        return PreparedStatement(cql, parse(cql))

    def _dispatch(
        self, statement: ast.Statement, text: str, params: Sequence
    ) -> Optional[ResultSet]:
        """Plan-and-cache SELECTs (and analyzed EXPLAINs); everything
        else runs the generic executor."""
        if type(statement) is ast.Select:
            plan = build_select_plan(self.engine, statement, self.keyspace)
            self.plan_cache.put((self.keyspace, text), plan)
            return ResultSet(plan.run(params))
        if type(statement) is ast.Explain and statement.analyze:
            plan = build_select_plan(self.engine, statement.select, self.keyspace)
            entry = AnalyzedStatement(plan)
            self.plan_cache.put((self.keyspace, text), entry)
            return self._run_analyzed(entry, params)
        result, new_keyspace = execute(self.engine, statement, params, self.keyspace)
        if new_keyspace is not None:
            self.keyspace = new_keyspace
        return result

    def compile_insert(self, cql: str) -> CompiledInsert:
        """Plan a plain INSERT once, for zero-parse bulk execution.

        Raises :class:`~repro.nosqldb.errors.InvalidRequest` when the
        statement is anything but a simple INSERT (set literals with
        inner bind markers, missing primary key, no keyspace): those
        shapes need the generic executor.
        """
        statement = parse(cql)
        planned = plan_insert_template(self.engine, statement, self.keyspace)
        if planned is None:
            raise InvalidRequest(
                f"only plain INSERT statements can be compiled: {cql!r}"
            )
        table, template, pk_slot = planned
        return CompiledInsert(cql, table, template, pk_slot)

    def execute_prepared(
        self, prepared: PreparedStatement, params: Sequence = ()
    ) -> Optional[ResultSet]:
        if _QUERY_LOG.enabled:
            return self._execute_logged(prepared.text, params)
        key = (self.keyspace, prepared.text)
        plan = self.plan_cache.get(key)
        if isinstance(plan, Plan):
            return ResultSet(plan.run(params))
        if isinstance(plan, AnalyzedStatement):
            return self._run_analyzed(plan, params)
        return self._dispatch(prepared.statement, prepared.text, params)

    def execute_batch(
        self, operations: Iterable[Tuple[PreparedStatement, Sequence]]
    ) -> int:
        """Run prepared mutations back-to-back; returns the count executed.

        This models a CQL ``BEGIN BATCH ... APPLY BATCH`` bulk load: one
        parse per statement shape, one execution plan per statement, then
        pure engine work per row.
        """
        t0 = wall_clock() if _QUERY_LOG.enabled else 0.0
        count = 0
        per_text: dict = {}
        for prepared, params in operations:
            plan = self._plan_for(prepared)
            if plan is not None:
                plan(params)
            else:
                execute(self.engine, prepared.statement, params, self.keyspace)
            count += 1
            if _QUERY_LOG.enabled:
                per_text[prepared.text] = per_text.get(prepared.text, 0) + 1
        self._maybe_check()
        if _QUERY_LOG.enabled:
            # One record per statement shape in the batch.
            elapsed = wall_clock() - t0
            for text, rows in per_text.items():
                record_query(_QUERY_LOG, text, "cql",
                             elapsed * rows / max(1, count), rows)
        return count

    def execute_many(
        self, statement, param_rows: Iterable[Sequence]
    ) -> List[Optional[ResultSet]]:
        """Run one statement shape over many parameter rows at once.

        ``statement`` is a :class:`PreparedStatement` or a CQL string
        (parsed once).  The point-select shape
        ``SELECT ... WHERE <pk> = ?`` executes as a *single* batched
        multi-get — all keys are bound up front and resolved by
        :meth:`~repro.nosqldb.columnfamily.ColumnFamily.get_many`, which
        groups them by SSTable block so each block is decompressed at
        most once.  Every other shape falls back to per-row execution.
        """
        if isinstance(statement, str):
            statement = self.prepare(statement)
        rows_list = list(param_rows)
        fused = self._fused_plan_for(statement)
        if fused is UNPLANNABLE:
            # Per-row fallback logs per statement through execute_prepared.
            return [self.execute_prepared(statement, params) for params in rows_list]
        t0 = wall_clock() if _QUERY_LOG.enabled else 0.0
        is_bind, value = fused.key_slot
        columns, limit = fused.columns, fused.limit
        keys = [params[value] if is_bind else value for params in rows_list]
        results: List[Optional[ResultSet]] = []
        for row in fused.fetch(keys):
            rows = [row] if row is not None else []
            if limit is not None:
                rows = rows[:limit]
            if columns:
                rows = [{name: r[name] for name in columns} for r in rows]
            results.append(ResultSet(rows))
        if _QUERY_LOG.enabled:
            # One record for the fused multi-get batch.
            record_query(_QUERY_LOG, statement.text, "cql", wall_clock() - t0,
                         sum(len(r) for r in results))
        return results

    def _fused_plan_for(self, prepared: PreparedStatement):
        """Cached fused multi-get plan (UNPLANNABLE = not a point select)."""
        key = (self.keyspace, "select_many", prepared.text)
        fused = self.plan_cache.get(key)
        if fused is None:
            fused = make_select_many_plan(self.engine, prepared.statement, self.keyspace)
            if fused is None:
                fused = UNPLANNABLE
            self.plan_cache.put(key, fused)
        return fused

    def _maybe_check(self) -> None:
        """REPRO_CHECK=1 hook: verify the current keyspace after a bulk load."""
        if not checks_enabled() or self.keyspace is None:
            return
        from repro.analysis.runner import runtime_check

        if not self.engine.has_keyspace(self.keyspace):
            return
        for table in self.engine.keyspace(self.keyspace).tables:
            runtime_check(table, label=f"execute_batch[{self.keyspace}]")

    def _plan_for(self, prepared: PreparedStatement):
        """Cached server-side execution plan for a prepared INSERT."""
        key = (id(self.engine), self.keyspace)
        if prepared._plan_key != key:
            prepared._plan_key = key
            prepared._plan = make_insert_plan(self.engine, prepared.statement, self.keyspace)
        return prepared._plan

    def __repr__(self) -> str:
        return f"Session(keyspace={self.keyspace!r})"
