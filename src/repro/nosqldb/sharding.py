"""Consistent-hash sharding of column families (Cassandra's token ring).

Cassandra distributes the paper's workload by hashing each partition key
onto a token ring that virtual nodes divide into many small ranges
(``num_tokens`` in cassandra.yaml).  This module reproduces that layout
in-process: :class:`HashRing` places ``n_shards * vnodes`` points on a
64-bit ring and routes every key to the shard owning the first point at
or clockwise-after the key's token.  Virtual nodes keep the per-shard
key share balanced (a single point per shard would make shard sizes
follow the gaps between just N random points).

Tokens are ``blake2b`` digests of the *encoded* key bytes
(:func:`repro.storage.btree.encode_key`), so routing is:

* deterministic across processes and runs — Python's ``hash()`` is
  seed-randomized and unusable for a persistent layout;
* type-faithful — the same tagged encoding that orders the B-tree and
  SSTable key space distinguishes ``1`` from ``"1"`` here too;
* total — every key type the engines accept (ints, strings, tuples of
  both, ...) already encodes.

``REPRO_SHARDS`` selects the layout (:func:`resolve_shards`); the
default of 1 keeps a single shard whose on-disk format is byte-identical
to the pre-sharding engine.  See docs/parallel_query.md.
"""

from __future__ import annotations

import hashlib
import os
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Tuple

from repro.storage.btree import encode_key

__all__ = ["DEFAULT_VNODES", "HashRing", "key_token", "resolve_shards"]

#: Virtual nodes per shard — enough to keep the largest/smallest shard
#: key share within a few percent at 2-8 shards, small enough that ring
#: construction is negligible.
DEFAULT_VNODES = 16

_TOKEN_BYTES = 8  # 64-bit ring, like Murmur3Partitioner's token space


def resolve_shards(shards: Optional[int] = None) -> int:
    """Shard count: explicit argument > ``REPRO_SHARDS`` > 1.

    Mirrors :func:`repro.core.workers.resolve_workers`; malformed or
    non-positive values fall back to the single-shard layout.
    """
    if shards is None:
        env = os.environ.get("REPRO_SHARDS", "").strip()
        if env:
            try:
                shards = int(env)
            except ValueError:
                shards = 1
        else:
            shards = 1
    return max(1, int(shards))


def key_token(key) -> int:
    """The key's position on the 64-bit ring (deterministic)."""
    digest = hashlib.blake2b(encode_key(key), digest_size=_TOKEN_BYTES)
    return int.from_bytes(digest.digest(), "big")


def _vnode_token(shard: int, vnode: int) -> int:
    label = b"shard:%d:vnode:%d" % (shard, vnode)
    digest = hashlib.blake2b(label, digest_size=_TOKEN_BYTES)
    return int.from_bytes(digest.digest(), "big")


class HashRing:
    """A consistent-hash ring over ``n_shards`` shards.

    The single-shard ring short-circuits to shard 0 without hashing, so
    the default layout adds zero routing cost to today's write path.
    """

    __slots__ = ("n_shards", "vnodes", "_tokens", "_owners")

    def __init__(self, n_shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.n_shards = n_shards
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = [
            (_vnode_token(shard, vnode), shard)
            for shard in range(n_shards)
            for vnode in range(vnodes)
        ]
        points.sort()
        self._tokens = [token for token, _ in points]
        self._owners = [owner for _, owner in points]

    def shard_for(self, key) -> int:
        """The shard owning ``key`` (first vnode clockwise of its token)."""
        if self.n_shards == 1:
            return 0
        index = bisect_right(self._tokens, key_token(key))
        if index == len(self._tokens):
            index = 0  # wrap past the highest token
        return self._owners[index]

    def spread(self, keys: Iterable) -> Dict[int, int]:
        """Keys-per-shard histogram (balance diagnostics and tests)."""
        counts: Dict[int, int] = {shard: 0 for shard in range(self.n_shards)}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    def __repr__(self) -> str:
        return f"HashRing(n_shards={self.n_shards}, vnodes={self.vnodes})"
