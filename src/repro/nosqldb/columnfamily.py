"""Column families: the tables of the columnar NoSQL engine.

The write path mirrors Cassandra: commit log append, memtable insert
(rows encoded immediately), synchronous secondary-index maintenance,
memtable flush to a compressed SSTable past a threshold, size-tiered
compaction.  ``size_bytes`` flushes and reports real encoded bytes —
this is what the paper's ``size_as_mb`` probe reads (§4).

A column family is divided into **shards** by partition-key hash on a
consistent-hash ring (:mod:`repro.nosqldb.sharding`), the way Cassandra
distributes this workload across its token ring.  Each shard owns its
own memtable, sealed-memtable list, SSTable set and block-cache
partition, so shard-local reads never contend and scatter-gather
queries can fan out per shard (docs/parallel_query.md).  The default
single-shard layout (``REPRO_SHARDS`` unset) is byte-identical to the
pre-sharding engine: same file names, same flush points, same scan
order.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.workers import map_tasks
from repro.nosqldb.cache import (
    NEGATIVE,
    BlockCache,
    CacheStats,
    RowCache,
    block_cache_budget,
    row_cache_budget,
)
from repro.nosqldb.columnar import (
    BLOCK_FORMATS,
    ColumnarCodec,
    default_block_format,
)
from repro.nosqldb.errors import AlreadyExists, InvalidRequest
from repro.nosqldb.memtable import Memtable
from repro.nosqldb.sharding import HashRing, resolve_shards
from repro.nosqldb.sstable import SSTable, compact
from repro.nosqldb.types import CQLType, SetType
from repro.storage.btree import BTree
from repro.storage.encoding import decode_text, encode_text
from repro.storage.varint import decode_varint, encode_varint
from repro.telemetry import get_registry, get_tracer

_REGISTRY = get_registry()
_M_WRITES = _REGISTRY.counter(
    "nosqldb_writes_total", "rows written (insert/delete paths)", labels=("table",)
)
_M_FLUSHES = _REGISTRY.counter(
    "nosqldb_memtable_flushes_total", "memtables materialised into SSTables"
)
_M_FLUSHED_ROWS = _REGISTRY.counter(
    "nosqldb_flushed_rows_total", "rows written out by memtable flushes"
)
_M_COMPACTIONS = _REGISTRY.counter(
    "nosqldb_compactions_total", "size-tiered compactions run"
)

#: Memtable flush threshold, bytes (per shard).
FLUSH_THRESHOLD = 8 * 1024 * 1024

#: Number of SSTables (per shard) that triggers a size-tiered compaction.
COMPACTION_THRESHOLD = 4

#: Entry cap for the per-table decoded-row memo (cleared wholesale when
#: full; content-addressed, so staleness is impossible by construction).
_DECODE_MEMO_ENTRIES = 8192


class ColumnFamilyStats(NamedTuple):
    """A read-only structural + cache summary of one column family."""

    rows: int                 # live rows (memtables + SSTables, deduplicated)
    memtable_rows: int        # rows in the active memtable(s)
    pending_memtables: int    # sealed memtables awaiting the flusher
    sstables: int
    indexes: int
    n_writes: int
    row_cache: CacheStats
    block_cache: CacheStats
    block_format: str = "row"   # what newly flushed blocks are written as
    columnar_blocks: int = 0    # columnar blocks across all SSTables
    blocks_skipped: int = 0     # lifetime zone-map block skips
    dict_hit_ratio: float = 0.0  # dictionary-encoded share of column chunks
    shards: int = 1             # consistent-hash shard count


class Column:
    """A named, typed column."""

    __slots__ = ("name", "cql_type", "_encoded_name")

    def __init__(self, name: str, cql_type: CQLType) -> None:
        self.name = name
        self.cql_type = cql_type
        self._encoded_name = encode_text(name)

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.cql_type.name})"


class SecondaryIndex:
    """A synchronous index over one column.

    Entries are ``(column_value, primary_key)`` pairs in a write-through
    B-tree: every mutation re-encodes the touched index page, which is
    the cost model for Cassandra's expensive secondary indexes — the
    cause of NoSQL-Min's insertion times in Table 5 of the paper.
    """

    __slots__ = ("name", "column", "_tree")

    def __init__(self, name: str, column: str) -> None:
        self.name = name
        self.column = column
        self._tree = BTree(write_through=True)

    def add(self, value, key) -> None:
        if value is None:
            return
        self._tree.insert((value, key))

    def remove(self, value, key) -> None:
        if value is None:
            return
        self._tree.delete((value, key))

    def lookup(self, value) -> List[object]:
        """Primary keys whose indexed column equals ``value``."""
        keys = []
        for composite, _ in self._tree.items(lo=(value,)):
            if composite[0] != value:
                break
            keys.append(composite[1])
        return keys

    @property
    def size_bytes(self) -> int:
        return self._tree.size_bytes

    def __len__(self) -> int:
        return len(self._tree)


class _Shard:
    """One ring partition's private storage: memtable lineage, SSTables
    and a block-cache slice.  Only its owner column family touches it;
    scatter-gather tasks for different shards never share mutable state,
    which is what makes the fan-out thread-safe."""

    __slots__ = (
        "shard_id", "memtable", "pending", "sstables", "block_cache",
        "generation", "n_live",
    )

    def __init__(self, shard_id: int, block_cache: BlockCache) -> None:
        self.shard_id = shard_id
        self.memtable = Memtable()
        # Memtables handed to the (simulated) background flusher: sealed,
        # not yet built into SSTables.  Clients don't wait for flushes —
        # and reads search the sealed memtables directly, so a read never
        # forces materialisation as a side effect (docs/read_path.md).
        self.pending: List[Memtable] = []
        self.sstables: List[SSTable] = []
        self.block_cache = block_cache
        self.generation = 0
        # Live-row count maintained by the write path; None = unknown
        # (recomputed lazily after crash recovery dropped the memtables).
        self.n_live: Optional[int] = 0


class ColumnFamily:
    """One table: schema, sharded memtables/SSTables, secondary indexes."""

    #: Kernel duck-typing flag: point and multi-get reads route through
    #: the consistent-hash ring (EXPLAIN renders per-shard fan-out).
    scatter_reads = True

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: str,
        compression: bool = True,
        commit_log=None,
        data_dir=None,
        block_cache_bytes: Optional[int] = None,
        row_cache_bytes: Optional[int] = None,
        block_format: Optional[str] = None,
        shards: Optional[int] = None,
    ) -> None:
        """``block_cache_bytes`` / ``row_cache_bytes`` override the
        environment-configured cache budgets (0 disables a cache);
        ``block_format`` ("row" | "columnar") overrides the
        ``REPRO_BLOCK_FORMAT`` default for newly written SSTable blocks;
        ``shards`` overrides the ``REPRO_SHARDS`` consistent-hash layout
        (the block-cache budget is split evenly across shards)."""
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise InvalidRequest(f"duplicate column in {name!r}")
        if primary_key not in names:
            raise InvalidRequest(f"primary key {primary_key!r} is not a column of {name!r}")
        if block_format is not None and block_format not in BLOCK_FORMATS:
            raise InvalidRequest(
                f"unknown block_format {block_format!r}; expected one of {BLOCK_FORMATS}"
            )
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self.primary_key = primary_key
        self.compression = compression
        self.block_format = block_format or default_block_format()
        self._codec = ColumnarCodec([(c.name, c.cql_type) for c in columns])
        self._by_name: Dict[str, Column] = {c.name: c for c in self.columns}
        self._pk_index = names.index(primary_key)
        self.shard_count = resolve_shards(shards)
        self._ring = HashRing(self.shard_count)
        block_budget = (
            block_cache_budget() if block_cache_bytes is None else block_cache_bytes
        )
        per_shard_budget = block_budget // self.shard_count
        self._shards: Tuple[_Shard, ...] = tuple(
            _Shard(shard_id, BlockCache(per_shard_budget))
            for shard_id in range(self.shard_count)
        )
        self._indexes: Dict[str, SecondaryIndex] = {}
        self._commit_log = commit_log
        self._data_dir = data_dir
        self._n_writes = 0
        self._m_writes = _M_WRITES.labels(name)
        # Read-path row cache (docs/read_path.md); a zero budget disables.
        # Family-level, not per shard: it is keyed by primary key and
        # only the caller thread ever writes it.
        self._row_cache = RowCache(
            row_cache_budget() if row_cache_bytes is None else row_cache_bytes
        )
        # Content-addressed decode memo: encoded row bytes -> decoded dict.
        self._decode_memo: Dict[bytes, Dict[str, object]] = {}
        # Deterministic write clock standing in for microsecond timestamps.
        self._write_clock = 1_400_000_000_000_000

    # ------------------------------------------------------------------
    # shard layout
    # ------------------------------------------------------------------
    @property
    def shards(self) -> Tuple[_Shard, ...]:
        """The shard tuple, in ring order (checkers iterate this)."""
        return self._shards

    @property
    def ring(self) -> HashRing:
        return self._ring

    def shard_for(self, key) -> int:
        """The shard id owning ``key`` on the ring."""
        return self._ring.shard_for(key)

    def run_sharded(self, tasks) -> List[object]:
        """Run shard-local tasks on the ``REPRO_WORKERS`` pool, results
        in task order.  The query kernel duck-types this hook (it cannot
        import :mod:`repro.core` itself): each task must only touch one
        shard's state, which the per-shard scan/count methods guarantee.
        """
        return map_tasks(tasks)

    def _shard_of(self, key) -> _Shard:
        if self.shard_count == 1:
            return self._shards[0]
        return self._shards[self._ring.shard_for(key)]

    # -- single-shard compatibility views -------------------------------
    # The engine grew up single-sharded; tests and checkers reach for
    # these names.  At one shard they are exactly the old attributes.
    @property
    def _memtable(self) -> Memtable:
        return self._shards[0].memtable

    @property
    def _pending(self) -> List[Memtable]:
        if self.shard_count == 1:
            return self._shards[0].pending
        return [m for shard in self._shards for m in shard.pending]

    @property
    def _sstables(self) -> List[SSTable]:
        if self.shard_count == 1:
            return self._shards[0].sstables
        return [s for shard in self._shards for s in shard.sstables]

    @property
    def _block_cache(self) -> BlockCache:
        return self._shards[0].block_cache

    @property
    def _n_live(self) -> Optional[int]:
        total = 0
        for shard in self._shards:
            if shard.n_live is None:
                return None
            total += shard.n_live
        return total

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------
    def column(self, name: str) -> Column:
        """Raises InvalidRequest when the table has no such column."""
        try:
            return self._by_name[name]
        except KeyError:
            raise InvalidRequest(f"table {self.name!r} has no column {name!r}") from None

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def create_index(self, index_name: str, column: str) -> SecondaryIndex:
        """Create (and backfill) a secondary index on ``column``.

        Raises InvalidRequest for unindexable columns (the primary key,
        collections) and AlreadyExists for duplicate indexes.
        """
        self.column(column)
        if column == self.primary_key:
            raise InvalidRequest("cannot create a secondary index on the primary key")
        if column in self._indexes:
            raise AlreadyExists(f"index on {self.name}.{column} already exists")
        cql_type = self.column(column).cql_type
        if isinstance(cql_type, SetType):
            raise InvalidRequest("secondary indexes on collections are not supported")
        index = SecondaryIndex(index_name, column)
        # Backfill from existing data.
        for key, encoded in self._all_items():
            row = self.decode_row(encoded)
            index.add(row.get(column), key)
        self._indexes[column] = index
        return index

    @property
    def indexes(self) -> Tuple[SecondaryIndex, ...]:
        return tuple(self._indexes.values())

    @property
    def indexed_columns(self) -> Tuple[str, ...]:
        """Names of the columns carrying a secondary index.

        The query planner snapshots this as part of a cached plan's
        validity signature: a CREATE INDEX changes it and invalidates
        plans compiled before the index existed.
        """
        return tuple(self._indexes)

    @property
    def block_cache_hits(self) -> int:
        """Cumulative block-cache hit count across shards (cheap reads).

        The query kernel probes this around each batched read to
        attribute cache-backed block fetches to the plan's access node.
        """
        return sum(shard.block_cache.stats().hits for shard in self._shards)

    # ------------------------------------------------------------------
    # row codec (Cassandra 2.x storage format)
    # ------------------------------------------------------------------
    # Pre-3.0 Cassandra stored every cell as a (column name, timestamp,
    # value) triple — the column name bytes and an 8-byte write timestamp
    # repeat in every row.  Reproducing that format matters: it is why the
    # paper's Cassandra sizes are comparable to MySQL's despite varint
    # values and block compression.
    def encode_row(self, row: Dict[str, object], timestamp: int = 0) -> bytes:
        """Cassandra 2.x format: cell count, then (name, ts, value) triples."""
        parts: List[bytes] = []
        count = 0
        ts_bytes = timestamp.to_bytes(8, "little", signed=False)
        for column in self.columns:
            value = row.get(column.name)
            if value is None:
                continue
            count += 1
            parts.append(column._encoded_name)
            parts.append(ts_bytes)
            parts.append(column.cql_type.encode(value))
        return encode_varint(count) + b"".join(parts)

    def decode_row(self, encoded: bytes) -> Dict[str, object]:
        """Raises InvalidRequest when a stored cell names an unknown column.

        Decoding is deterministic in ``encoded``, so repeated reads of the
        same bytes are served from a content-addressed memo (never stale —
        the key IS the input) while the row cache is enabled.  Callers get
        a fresh shallow copy each time; cell values are immutable scalars.
        """
        if self._row_cache.enabled:
            memo = self._decode_memo
            row = memo.get(encoded)
            if row is None:
                row = self._decode_row_fresh(encoded)
                if len(memo) >= _DECODE_MEMO_ENTRIES:
                    memo.clear()
                memo[encoded] = row
            return dict(row)
        return self._decode_row_fresh(encoded)

    def _decode_row_fresh(self, encoded: bytes) -> Dict[str, object]:
        row: Dict[str, object] = {column.name: None for column in self.columns}
        count, offset = decode_varint(encoded, 0)
        for _ in range(count):
            name, offset = decode_text(encoded, offset)
            offset += 8  # write timestamp
            column = self._by_name.get(name)
            if column is None:
                raise InvalidRequest(f"stored row names unknown column {name!r}")
            value, offset = column.cql_type.decode(encoded, offset)
            row[name] = value
        return row

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def insert(self, row: Dict[str, object]) -> None:
        """Upsert one row (CQL INSERT semantics).

        Raises InvalidRequest for unknown columns or a missing primary key.
        """
        key = row.get(self.primary_key)
        if key is None:
            raise InvalidRequest(f"INSERT into {self.name!r} misses primary key")
        by_name = self._by_name
        bound = []
        for name, value in row.items():
            column = by_name.get(name)
            if column is None:
                raise InvalidRequest(f"table {self.name!r} has no column {name!r}")
            if value is not None:
                bound.append((column, value))
        self.insert_bound(key, bound)

    def insert_bound(self, key, bound) -> None:
        """The prepared-statement write path: columns already resolved.

        ``bound`` is a list of ``(Column, non-None value)`` pairs; this is
        what a server executes after binding parameters to a prepared
        INSERT's column metadata.
        """
        self._write_clock += 1
        ts_bytes = self._write_clock.to_bytes(8, "little")
        parts: List[bytes] = [encode_varint(len(bound))]
        for column, value in bound:
            parts.append(column._encoded_name)
            parts.append(ts_bytes)
            parts.append(column.cql_type.validate_encode(value))
        encoded = b"".join(parts)
        if self._commit_log is not None:
            self._commit_log.append(self.name, key, encoded)
        shard = self._shard_of(key)
        if self._indexes:
            previous = self._read_encoded(key)
            if previous is not None:
                old_row = self.decode_row(previous)
                for column_name, index in self._indexes.items():
                    index.remove(old_row.get(column_name), key)
            new_values = {column.name: value for column, value in bound}
            for column_name, index in self._indexes.items():
                index.add(new_values.get(column_name), key)
            was_live = previous is not None
        elif shard.n_live is not None:
            was_live = self._is_live_in(shard, key)
        else:
            was_live = True  # counter dirty; the value is unused
        shard.memtable.put(key, encoded)
        self._row_cache.invalidate(key)
        if shard.n_live is not None and not was_live:
            shard.n_live += 1
        self._n_writes += 1
        self._m_writes.inc()
        if shard.memtable.approximate_bytes >= FLUSH_THRESHOLD:
            self._seal_shard(shard)

    def insert_bound_many(self, items) -> int:
        """Bulk write path: many ``(key, bound)`` rows in one tight loop.

        Byte-identical to calling :meth:`insert_bound` per row — same
        write-clock sequence, cell encoding, commit-log records, index
        maintenance and flush points — but with the per-row interpreter
        overhead (plan lookups, closure dispatch, attribute walks) hoisted
        out of the loop.  This is what a compiled statement's
        ``execute_batch`` feeds.
        """
        commit_log = self._commit_log
        indexes = self._indexes
        row_cache = self._row_cache
        shard_of = self._shard_of
        count = 0
        for key, bound in items:
            self._write_clock += 1
            ts_bytes = self._write_clock.to_bytes(8, "little")
            parts: List[bytes] = [encode_varint(len(bound))]
            for column, value in bound:
                parts.append(column._encoded_name)
                parts.append(ts_bytes)
                parts.append(column.cql_type.validate_encode(value))
            encoded = b"".join(parts)
            if commit_log is not None:
                commit_log.append(self.name, key, encoded)
            shard = shard_of(key)
            if indexes:
                previous = self._read_encoded(key)
                if previous is not None:
                    old_row = self.decode_row(previous)
                    for column_name, index in indexes.items():
                        index.remove(old_row.get(column_name), key)
                new_values = {column.name: value for column, value in bound}
                for column_name, index in indexes.items():
                    index.add(new_values.get(column_name), key)
                was_live = previous is not None
            elif shard.n_live is not None:
                was_live = self._is_live_in(shard, key)
            else:
                was_live = True
            shard.memtable.put(key, encoded)
            row_cache.invalidate(key)
            if shard.n_live is not None and not was_live:
                shard.n_live += 1
            self._n_writes += 1
            if shard.memtable.approximate_bytes >= FLUSH_THRESHOLD:
                self._seal_shard(shard)
            count += 1
        if count:
            # One batched increment keeps the bulk loop free of per-row
            # metric calls.
            self._m_writes.inc(count)
        return count

    def update(self, key, assignments: Dict[str, object]) -> None:
        """CQL UPDATE: read-modify-write of non-key columns.

        Raises InvalidRequest when ``assignments`` touch the primary key.
        """
        if self.primary_key in assignments:
            raise InvalidRequest("cannot update the primary key")
        current = self.get(key)
        if current is None:
            current = {c.name: None for c in self.columns}
            current[self.primary_key] = key
        current.update(assignments)
        self.insert({k: v for k, v in current.items() if v is not None})

    def delete(self, key) -> None:
        shard = self._shard_of(key)
        if self._indexes:
            previous = self._read_encoded(key)
            if previous is not None:
                old_row = self.decode_row(previous)
                for column_name, index in self._indexes.items():
                    index.remove(old_row.get(column_name), key)
            was_live = previous is not None
        elif shard.n_live is not None:
            was_live = self._is_live_in(shard, key)
        else:
            was_live = False
        if self._commit_log is not None:
            # tombstones are logged as empty row payloads
            self._commit_log.append(self.name, key, b"")
        shard.memtable.delete(key)
        self._row_cache.invalidate(key)
        if shard.n_live is not None and was_live:
            shard.n_live -= 1

    def _seal_shard(self, shard: _Shard) -> None:
        if len(shard.memtable) == 0 and not shard.memtable.tombstones:
            return
        shard.pending.append(shard.memtable)
        shard.memtable = Memtable()

    def seal_memtable(self) -> None:
        """Hand every shard's active memtable to the background flusher."""
        for shard in self._shards:
            self._seal_shard(shard)

    def flush(self) -> None:
        """Seal the memtables and materialise all pending SSTables."""
        self.seal_memtable()
        for shard in self._shards:
            self._materialize_shard(shard)

    def _next_data_path(self, shard: _Shard):
        """File path for the shard's next SSTable generation (None =
        in-memory).  The single-shard layout keeps the historical
        ``{table}-{generation}-Data.db`` names byte-for-byte."""
        if self._data_dir is None:
            return None
        shard.generation += 1
        if self.shard_count == 1:
            return self._data_dir / f"{self.name.lower()}-{shard.generation}-Data.db"
        return self._data_dir / (
            f"{self.name.lower()}-s{shard.shard_id}-{shard.generation}-Data.db"
        )

    def _materialize_shard(self, shard: _Shard) -> None:
        """Build SSTables for the shard's sealed memtables (the
        flusher's work).

        The live key→row mapping is unchanged, so neither cache needs
        invalidating; the superseded tables of a compaction release their
        cached blocks via ``delete_file``.
        """
        if shard.pending:
            with get_tracer().span(
                "nosqldb.flush", table=self.name, memtables=len(shard.pending)
            ) as span:
                flushed_rows = 0
                for memtable in shard.pending:
                    flushed_rows += len(memtable)
                    shard.sstables.append(
                        SSTable(
                            memtable.sorted_items(),
                            compressed=self.compression,
                            tombstones=memtable.tombstones,
                            path=self._next_data_path(shard),
                            block_cache=shard.block_cache,
                            block_format=self.block_format,
                            codec=self._codec,
                        )
                    )
                _M_FLUSHES.inc(len(shard.pending))
                _M_FLUSHED_ROWS.inc(flushed_rows)
                span.set("rows", flushed_rows)
                if self.shard_count > 1:
                    span.set("shard", shard.shard_id)
                shard.pending.clear()
        if len(shard.sstables) >= COMPACTION_THRESHOLD:
            self._compact_shard(shard)

    def _compact_shard(self, shard: _Shard) -> None:
        if len(shard.sstables) <= 1:
            return
        with get_tracer().span(
            "nosqldb.compaction", table=self.name, inputs=len(shard.sstables)
        ):
            shard.sstables = [
                compact(
                    shard.sstables,
                    compressed=self.compression,
                    path=self._next_data_path(shard),
                    block_cache=shard.block_cache,
                    block_format=self.block_format,
                    codec=self._codec,
                )
            ]
            _M_COMPACTIONS.inc()

    def compact(self) -> None:
        """Flush, then major-compact every shard down to one SSTable.

        Size-tiered compaction normally waits for ``COMPACTION_THRESHOLD``
        tables; this forces the steady state a long-lived stored cube
        reaches anyway — one compacted table per shard, which is also the
        shape :meth:`count_shard` needs for its no-materialize fast path.
        """
        self.flush()
        for shard in self._shards:
            self._compact_shard(shard)

    def truncate(self) -> None:
        for shard in self._shards:
            shard.memtable = Memtable()
            shard.pending = []
            for sstable in shard.sstables:
                sstable.delete_file()
            shard.sstables = []
            shard.n_live = 0
        self._row_cache.clear()
        self._decode_memo.clear()
        for column_name in list(self._indexes):
            index = self._indexes[column_name]
            self._indexes[column_name] = SecondaryIndex(index.name, index.column)

    # ------------------------------------------------------------------
    # crash recovery support
    # ------------------------------------------------------------------
    def drop_volatile_state(self) -> None:
        """Lose everything a crash loses: memtables, not SSTables.

        The row cache dies with the process, and the live-row counters
        are marked unknown — ``__len__`` recounts lazily after replay.
        """
        for shard in self._shards:
            shard.memtable = Memtable()
            shard.pending = []
            shard.n_live = None
        self._row_cache.clear()
        self._decode_memo.clear()

    def apply_replayed(self, key, encoded_row: bytes) -> None:
        """Re-apply one commit-log mutation (empty payload = tombstone)."""
        shard = self._shard_of(key)
        was_live = (
            self._is_live_in(shard, key) if shard.n_live is not None else False
        )
        if encoded_row:
            shard.memtable.put(key, encoded_row)
            if shard.n_live is not None and not was_live:
                shard.n_live += 1
        else:
            shard.memtable.delete(key)
            if shard.n_live is not None and was_live:
                shard.n_live -= 1
        self._row_cache.invalidate(key)

    def rebuild_indexes(self) -> None:
        """Rebuild every secondary index from the recovered data.

        One decode per row feeds every index; previously each index
        re-decoded (and re-decompressed) the whole table for itself.
        """
        if not self._indexes:
            return
        fresh = {
            column_name: SecondaryIndex(old.name, old.column)
            for column_name, old in self._indexes.items()
        }
        for key, encoded in self._all_items():
            row = self.decode_row(encoded)
            for column_name, index in fresh.items():
                index.add(row.get(column_name), key)
        self._indexes = fresh

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def _read_encoded(self, key) -> Optional[bytes]:
        cached = self._row_cache.get(key)
        if cached is not None:
            return None if cached is NEGATIVE else cached
        encoded = self._read_encoded_uncached(key)
        self._row_cache.put(key, encoded)
        return encoded

    def _read_encoded_uncached(self, key) -> Optional[bytes]:
        """Walk the owning shard's active memtable → sealed memtables →
        SSTables, newest first.  Sealed memtables are searched in place —
        a read never forces the flusher's work as a side effect."""
        shard = self._shard_of(key)
        encoded = shard.memtable.get(key)
        if encoded is not None:
            return encoded
        if shard.memtable.is_deleted(key):
            return None
        for memtable in reversed(shard.pending):
            encoded = memtable.get(key)
            if encoded is not None:
                return encoded
            if memtable.is_deleted(key):
                return None
        for sstable in reversed(shard.sstables):
            if sstable.is_deleted(key):
                return None
            encoded = sstable.get(key)
            if encoded is not None:
                return encoded
        return None

    def _is_live_in(self, shard: _Shard, key) -> bool:
        """Whether ``key`` currently has a live row in its owning shard —
        the write path's cheap probe for maintaining the live-row
        counter.  Uses ``RowCache.peek`` so these internal probes leave
        the hit/miss statistics to real read traffic."""
        cached = self._row_cache.peek(key)
        if cached is not None:
            return cached is not NEGATIVE
        if key in shard.memtable:
            return True
        if shard.memtable.is_deleted(key):
            return False
        for memtable in reversed(shard.pending):
            if key in memtable:
                return True
            if memtable.is_deleted(key):
                return False
        for sstable in reversed(shard.sstables):
            if sstable.is_deleted(key):
                return False
            if sstable.get(key) is not None:
                return True
        return False

    def _is_live(self, key) -> bool:
        return self._is_live_in(self._shard_of(key), key)

    def get(self, key) -> Optional[Dict[str, object]]:
        encoded = self._read_encoded(key)
        return self.decode_row(encoded) if encoded is not None else None

    def get_many_encoded(self, keys: Sequence) -> List[Optional[bytes]]:
        """Encoded rows for ``keys`` (None for absent), order-preserving.

        Equivalent to ``[self._read_encoded(k) for k in keys]`` but keys
        that miss the row cache are resolved in one batched walk per
        shard: a single :meth:`SSTable.get_many` per SSTable groups them
        by block, so each block is decompressed at most once per call.
        With several shards involved, the shard walks scatter onto the
        ``REPRO_WORKERS`` pool and the row cache is written only after
        the gather, on the calling thread.
        """
        results: List[Optional[bytes]] = [None] * len(keys)
        positions: Dict[object, List[int]] = {}
        for position, key in enumerate(keys):
            cached = self._row_cache.get(key)
            if cached is not None:
                results[position] = None if cached is NEGATIVE else cached
            else:
                positions.setdefault(key, []).append(position)
        if not positions:
            return results
        by_shard: Dict[int, List[object]] = {}
        for key in positions:
            by_shard.setdefault(self._ring.shard_for(key), []).append(key)
        shard_ids = sorted(by_shard)
        if len(shard_ids) == 1:
            shard_id = shard_ids[0]
            gathered = [self._resolve_shard_keys(shard_id, by_shard[shard_id])]
        else:
            gathered = self.run_sharded([
                (lambda sid=shard_id: self._resolve_shard_keys(sid, by_shard[sid]))
                for shard_id in shard_ids
            ])
        for resolved in gathered:
            for key, encoded in resolved.items():
                self._row_cache.put(key, encoded)
                for position in positions[key]:
                    results[position] = encoded
        return results

    def _resolve_shard_keys(self, shard_id: int, keys: List) -> Dict[object, Optional[bytes]]:
        """Batched layered walk of one shard for ``keys`` (shard-local:
        safe as a scatter task)."""
        shard = self._shards[shard_id]
        resolved: Dict[object, Optional[bytes]] = {}
        unresolved = set(keys)
        for memtable in (shard.memtable, *reversed(shard.pending)):
            if not unresolved:
                break
            for key in list(unresolved):
                encoded = memtable.get(key)
                if encoded is not None:
                    resolved[key] = encoded
                    unresolved.discard(key)
                elif memtable.is_deleted(key):
                    resolved[key] = None
                    unresolved.discard(key)
        for sstable in reversed(shard.sstables):
            if not unresolved:
                break
            for key in [k for k in unresolved if sstable.is_deleted(k)]:
                resolved[key] = None
                unresolved.discard(key)
            for key, encoded in sstable.get_many(list(unresolved)).items():
                resolved[key] = encoded
                unresolved.discard(key)
        for key in unresolved:
            resolved[key] = None
        return resolved

    def get_many(self, keys: Sequence) -> List[Optional[Dict[str, object]]]:
        """Decoded rows for ``keys``; ``get_many(ks) == [get(k) for k in ks]``."""
        decode = self.decode_row
        return [
            decode(encoded) if encoded is not None else None
            for encoded in self.get_many_encoded(keys)
        ]

    def _shard_items(self, shard: _Shard) -> Iterator[Tuple[object, bytes]]:
        """Every live ``(key, encoded_row)`` of one shard, newest version
        wins.  Sealed memtables are layered between the active memtable
        and the SSTables, so scanning never forces materialisation.  The
        ring assigns each key to exactly one shard, so per-shard
        ``seen``/``deleted`` sets implement the same LSM shadowing the
        unsharded walk did."""
        seen = set()
        deleted = set()
        for memtable in (shard.memtable, *reversed(shard.pending)):
            for key, encoded in memtable:
                if key in seen or key in deleted:
                    continue
                seen.add(key)
                yield key, encoded
            deleted |= set(memtable.tombstones)
        for sstable in reversed(shard.sstables):
            for key, encoded in sstable.items():
                if key in seen or key in deleted:
                    continue
                seen.add(key)
                yield key, encoded
            deleted |= set(sstable.tombstones)

    def _all_items(self) -> Iterator[Tuple[object, bytes]]:
        """Every live ``(key, encoded_row)`` across shards, in shard
        order (identical to the historical order at one shard)."""
        for shard in self._shards:
            yield from self._shard_items(shard)

    def scan_shard(self, shard_id: int, pushed=None) -> Iterator[Dict[str, object]]:
        """Every live row of one shard; with ``pushed`` (a bound
        predicate from :mod:`repro.query.pushdown`) only the rows
        satisfying it.

        The pushed path mirrors :meth:`_shard_items` layer for layer —
        same visit order, same LSM shadowing — but filters *inside* each
        layer: memtable rows are tested after decode, SSTables evaluate
        the predicate on column vectors (columnar blocks) or row-wise,
        and the shard's oldest SSTable layer may skip whole blocks via
        zone maps (only there is a skipped key guaranteed not to shadow
        an older version; shards are disjoint, so other shards' layers
        never matter).  Predicate-failing keys in newer layers still
        enter ``seen`` — an older, predicate-passing version of the same
        key must stay hidden.

        Shard-local by construction: the kernel fans these out as
        scatter tasks, one per shard.
        """
        shard = self._shards[shard_id]
        if pushed is None:
            for _, encoded in self._shard_items(shard):
                yield self.decode_row(encoded)
            return
        seen = set()
        deleted = set()
        for memtable in (shard.memtable, *reversed(shard.pending)):
            for key, encoded in memtable:
                if key in seen or key in deleted:
                    continue
                seen.add(key)
                row = self.decode_row(encoded)
                if pushed.matches(row):
                    yield row
                else:
                    pushed.note_pruned(1)
            deleted |= set(memtable.tombstones)
        layers = list(reversed(shard.sstables))
        for position, sstable in enumerate(layers):
            allow_skip = position == len(layers) - 1
            for key, row in sstable.scan_filtered(
                pushed, allow_skip, self.decode_row
            ):
                if key in seen or key in deleted:
                    continue
                seen.add(key)
                if row is not None:
                    yield row
            deleted |= set(sstable.tombstones)

    def scan(self, pushed=None) -> Iterator[Dict[str, object]]:
        """Every live row; with ``pushed`` only the rows satisfying it.

        Shards are visited in ring order, each with the full layered
        walk of :meth:`scan_shard` — at one shard this is exactly the
        historical scan, order included.
        """
        for shard in self._shards:
            yield from self.scan_shard(shard.shard_id, pushed)

    def count_shard(self, shard_id: int, pushed=None) -> int:
        """Number of live rows in one shard satisfying ``pushed``.

        When the shard is fully materialised into a single compacted
        SSTable with no tombstones (the steady state of a stored cube),
        counting never touches row bytes: :meth:`SSTable.count_filtered`
        skips zone-refuted blocks and counts predicate masks without
        materialising a single row.  Any unflushed or layered state
        falls back to the scan, which is always correct.
        """
        shard = self._shards[shard_id]
        if (
            len(shard.memtable) == 0
            and not shard.memtable.tombstones
            and not shard.pending
            and len(shard.sstables) == 1
            and not shard.sstables[0].tombstones
        ):
            return shard.sstables[0].count_filtered(pushed, self.decode_row)
        return sum(1 for _ in self.scan_shard(shard_id, pushed))

    def lookup_indexed(self, column: str, value, pushed=None) -> List[Dict[str, object]]:
        """Raises InvalidRequest when ``column`` has no secondary index.

        ``pushed`` filters the fetched rows inside the storage layer
        (index probes are point reads, so there is no block skipping —
        just pruning before the rows reach the kernel)."""
        index = self._indexes.get(column)
        if index is None:
            raise InvalidRequest(
                f"no secondary index on {self.name}.{column}; "
                "use ALLOW FILTERING for a full scan"
            )
        rows = [row for row in self.get_many(index.lookup(value)) if row is not None]
        if pushed is None:
            return rows
        kept = []
        for row in rows:
            if pushed.matches(row):
                kept.append(row)
            else:
                pushed.note_pruned(1)
        return kept

    def has_index(self, column: str) -> bool:
        return column in self._indexes

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        total = 0
        for shard in self._shards:
            if shard.n_live is None:
                shard.n_live = sum(1 for _ in self._shard_items(shard))
            total += shard.n_live
        return total

    @property
    def n_writes(self) -> int:
        return self._n_writes

    @property
    def size_bytes(self) -> int:
        """On-disk footprint: SSTables + secondary indexes (post-flush)."""
        self.flush()
        total = sum(s.size_bytes for s in self._sstables)
        total += sum(ix.size_bytes for ix in self._indexes.values())
        return total

    def _merged_block_cache_stats(self) -> CacheStats:
        merged = [0] * 7
        for shard in self._shards:
            stats = shard.block_cache.stats()
            for index, value in enumerate(stats):
                merged[index] += value
        return CacheStats(*merged)

    def stats(self) -> ColumnFamilyStats:
        """A read-only structural + cache snapshot (no block reads)."""
        columnar_blocks = 0
        blocks_skipped = 0
        dict_chunks = 0
        plain_chunks = 0
        for sstable in self._sstables:
            table_stats = sstable.stats()
            columnar_blocks += table_stats.columnar_blocks
            blocks_skipped += table_stats.blocks_skipped
            dict_chunks += table_stats.dict_chunks
            plain_chunks += table_stats.plain_chunks
        chunks = dict_chunks + plain_chunks
        return ColumnFamilyStats(
            rows=len(self),
            memtable_rows=sum(len(shard.memtable) for shard in self._shards),
            pending_memtables=sum(len(shard.pending) for shard in self._shards),
            sstables=sum(len(shard.sstables) for shard in self._shards),
            indexes=len(self._indexes),
            n_writes=self._n_writes,
            row_cache=self._row_cache.stats(),
            block_cache=self._merged_block_cache_stats(),
            block_format=self.block_format,
            columnar_blocks=columnar_blocks,
            blocks_skipped=blocks_skipped,
            dict_hit_ratio=dict_chunks / chunks if chunks else 0.0,
            shards=self.shard_count,
        )

    def __repr__(self) -> str:
        return (
            f"ColumnFamily({self.name!r}, pk={self.primary_key!r}, "
            f"columns={list(self.column_names)})"
        )
