"""Errors raised by the columnar NoSQL engine."""

from __future__ import annotations

from repro.core.errors import ReproError


class NoSQLError(ReproError):
    """Base class for NoSQL engine errors."""


class CQLSyntaxError(NoSQLError):
    """The CQL text could not be tokenised or parsed."""


class InvalidRequest(NoSQLError):
    """A well-formed statement is invalid against the current schema.

    Mirrors Cassandra's ``InvalidRequest`` (unknown table, type mismatch,
    filtering without an index, ...).
    """


class AlreadyExists(NoSQLError):
    """CREATE of a keyspace/table/index that already exists."""
