"""CQL execution against a :class:`~repro.nosqldb.engine.NoSQLEngine`."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.nosqldb.columnfamily import Column, ColumnFamily
from repro.nosqldb.cql import ast
from repro.nosqldb.errors import InvalidRequest
from repro.nosqldb.types import parse_type


class ResultSet:
    """Rows returned by a SELECT (list of column-name -> value dicts)."""

    __slots__ = ("rows",)

    def __init__(self, rows: List[Dict[str, object]]) -> None:
        self.rows = rows

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def one(self) -> Optional[Dict[str, object]]:
        return self.rows[0] if self.rows else None

    def __repr__(self) -> str:
        return f"ResultSet({len(self.rows)} rows)"


def execute(
    engine,
    statement: ast.Statement,
    params: Sequence = (),
    current_keyspace: Optional[str] = None,
) -> Tuple[Optional[ResultSet], Optional[str]]:
    """Run ``statement``; returns ``(result_set, new_current_keyspace)``.

    ``new_current_keyspace`` is non-None only for USE statements.
    """
    runner = _Executor(engine, params, current_keyspace)
    return runner.run(statement)


def plan_insert_template(
    engine, statement: ast.Statement, current_keyspace: Optional[str]
):
    """Resolve a plain INSERT to ``(table, template, pk_slot)``.

    ``template`` is a list of ``(column, is_bind, index_or_constant)``
    slots; ``pk_slot`` is the template entry for the primary key.  Returns
    ``None`` when the statement cannot be planned ahead of execution
    (collection literals with inner bind markers, non-INSERT statements,
    no resolvable keyspace, no primary-key column).
    """
    if not isinstance(statement, ast.Insert):
        return None
    keyspace_name = statement.ref.keyspace or current_keyspace
    if keyspace_name is None:
        return None
    table = engine.keyspace(keyspace_name).table(statement.ref.table)
    template = []
    pk_slot = None
    for name, value in zip(statement.columns, statement.values):
        if isinstance(value, ast.SetLiteral):
            return None
        column = table.column(name)
        is_bind = isinstance(value, ast.Placeholder)
        slot = (column, is_bind, value.index if is_bind else value)
        if name == table.primary_key:
            pk_slot = slot
        template.append(slot)
    if pk_slot is None:
        return None
    return table, template, pk_slot


def plan_point_select(
    engine, statement: ast.Statement, current_keyspace: Optional[str]
):
    """Resolve ``SELECT ... WHERE <pk> = ?`` to a batched-fetch plan.

    Returns ``(table, key_slot, columns, limit)`` where ``key_slot`` is
    ``(is_bind, index_or_constant)``.  This is the shape
    :meth:`~repro.nosqldb.session.Session.execute_many` turns into one
    :meth:`~repro.nosqldb.columnfamily.ColumnFamily.get_many` call.
    Returns ``None`` for any other statement shape (those fall back to
    per-row execution through the generic executor).
    """
    if not isinstance(statement, ast.Select) or statement.count:
        return None
    keyspace_name = statement.ref.keyspace or current_keyspace
    if keyspace_name is None:
        return None
    table = engine.keyspace(keyspace_name).table(statement.ref.table)
    if len(statement.where) != 1:
        return None
    condition = statement.where[0]
    if condition.column != table.primary_key or condition.op != "=":
        return None
    value = condition.value
    if isinstance(value, ast.SetLiteral):
        return None
    is_bind = isinstance(value, ast.Placeholder)
    columns = tuple(statement.columns or ())
    for name in columns:
        table.column(name)  # validate once, not per row
    key_slot = (is_bind, value.index if is_bind else value)
    return table, key_slot, columns, statement.limit


def make_insert_plan(engine, statement: ast.Statement, current_keyspace: Optional[str]):
    """Compile a simple prepared INSERT into a per-row callable.

    This is the server-side prepared-statement plan: the table and column
    template are resolved once, so batch execution only binds parameters
    and calls the storage engine.  Returns ``None`` when the statement is
    not a plain INSERT (collection literals with inner bind markers and
    non-INSERT statements fall back to the generic executor).
    """
    planned = plan_insert_template(engine, statement, current_keyspace)
    if planned is None:
        return None
    table, template, pk_slot = planned
    insert_bound = table.insert_bound
    pk_column, pk_is_bind, pk_value = pk_slot

    def run(params: Sequence) -> None:
        key = params[pk_value] if pk_is_bind else pk_value
        if key is None:
            raise InvalidRequest(f"INSERT into {table.name!r} misses primary key")
        bound = []
        for column, is_bind, value in template:
            resolved = params[value] if is_bind else value
            if resolved is not None:
                bound.append((column, resolved))
        insert_bound(key, bound)

    return run


class _Executor:
    def __init__(self, engine, params: Sequence, current_keyspace: Optional[str]) -> None:
        self.engine = engine
        self.params = tuple(params)
        self.current_keyspace = current_keyspace

    # -- value resolution ----------------------------------------------------
    def _resolve(self, value):
        if isinstance(value, ast.Placeholder):
            if value.index >= len(self.params):
                raise InvalidRequest(
                    f"statement has bind marker ?{value.index} but only "
                    f"{len(self.params)} parameters were supplied"
                )
            return self.params[value.index]
        if isinstance(value, ast.SetLiteral):
            return {self._resolve(item) for item in value.items}
        return value

    def _table(self, ref: ast.TableRef) -> ColumnFamily:
        keyspace_name = ref.keyspace or self.current_keyspace
        if keyspace_name is None:
            raise InvalidRequest(f"no keyspace specified for table {ref.table!r}")
        return self.engine.keyspace(keyspace_name).table(ref.table)

    # -- dispatch ---------------------------------------------------------------
    def run(self, statement: ast.Statement):
        handler = {
            ast.CreateKeyspace: self._create_keyspace,
            ast.CreateTable: self._create_table,
            ast.CreateIndex: self._create_index,
            ast.DropTable: self._drop_table,
            ast.DropKeyspace: self._drop_keyspace,
            ast.Use: self._use,
            ast.Insert: self._insert,
            ast.Select: self._select,
            ast.Update: self._update,
            ast.Delete: self._delete,
            ast.Truncate: self._truncate,
            ast.Batch: self._batch,
        }.get(type(statement))
        if handler is None:
            raise InvalidRequest(f"unsupported statement {type(statement).__name__}")
        return handler(statement)

    # -- DDL ---------------------------------------------------------------------
    def _create_keyspace(self, stmt: ast.CreateKeyspace):
        self.engine.create_keyspace(
            stmt.name, durable_writes=stmt.durable_writes, if_not_exists=stmt.if_not_exists
        )
        return None, None

    def _create_table(self, stmt: ast.CreateTable):
        keyspace_name = stmt.ref.keyspace or self.current_keyspace
        if keyspace_name is None:
            raise InvalidRequest("CREATE TABLE without a keyspace")
        keyspace = self.engine.keyspace(keyspace_name)
        columns = [Column(name, parse_type(type_text)) for name, type_text in stmt.columns]
        keyspace.create_table(
            stmt.ref.table,
            columns,
            stmt.primary_key,
            compression=stmt.compression,
            if_not_exists=stmt.if_not_exists,
        )
        return None, None

    def _create_index(self, stmt: ast.CreateIndex):
        table = self._table(stmt.ref)
        index_name = stmt.name or f"{table.name}_{stmt.column}_idx"
        if stmt.if_not_exists and table.has_index(stmt.column):
            return None, None
        table.create_index(index_name, stmt.column)
        return None, None

    def _drop_table(self, stmt: ast.DropTable):
        keyspace_name = stmt.ref.keyspace or self.current_keyspace
        if keyspace_name is None:
            raise InvalidRequest("DROP TABLE without a keyspace")
        self.engine.keyspace(keyspace_name).drop_table(stmt.ref.table)
        return None, None

    def _drop_keyspace(self, stmt: ast.DropKeyspace):
        self.engine.drop_keyspace(stmt.name)
        return None, None

    def _use(self, stmt: ast.Use):
        self.engine.keyspace(stmt.name)  # validates existence
        return None, stmt.name

    # -- DML ----------------------------------------------------------------------
    def _insert(self, stmt: ast.Insert):
        table = self._table(stmt.ref)
        row = {}
        for column, value in zip(stmt.columns, stmt.values):
            resolved = self._resolve(value)
            if resolved is not None:
                row[column] = resolved
        table.insert(row)
        return None, None

    def _select(self, stmt: ast.Select):
        table = self._table(stmt.ref)
        rows = self._candidate_rows(table, stmt.where, stmt.allow_filtering)
        if stmt.limit is not None:
            rows = rows[: stmt.limit]
        if stmt.count:
            return ResultSet([{"count": len(rows)}]), None
        if stmt.columns:
            for name in stmt.columns:
                table.column(name)  # validate
            rows = [{name: row[name] for name in stmt.columns} for row in rows]
        return ResultSet(rows), None

    def _candidate_rows(
        self,
        table: ColumnFamily,
        where: List[ast.Condition],
        allow_filtering: bool,
    ) -> List[Dict[str, object]]:
        remaining = list(where)

        # 1. primary-key point or IN lookup
        pk_condition = next(
            (c for c in remaining if c.column == table.primary_key and c.op in ("=", "IN")),
            None,
        )
        if pk_condition is not None:
            remaining.remove(pk_condition)
            if pk_condition.op == "=":
                keys = [self._resolve(pk_condition.value)]
            else:
                keys = [self._resolve(v) for v in pk_condition.value]
            # IN lists go through the batched multi-get: one block decode
            # per touched SSTable block instead of one walk per key.
            rows = [row for row in table.get_many(keys) if row is not None]
            return self._filter(rows, remaining, table, allow_filtering, indexed=True)

        # 2. secondary-index equality lookup
        index_condition = next(
            (c for c in remaining if c.op == "=" and table.has_index(c.column)),
            None,
        )
        if index_condition is not None:
            remaining.remove(index_condition)
            rows = table.lookup_indexed(
                index_condition.column, self._resolve(index_condition.value)
            )
            return self._filter(rows, remaining, table, allow_filtering, indexed=True)

        # 3. full scan
        if remaining and not allow_filtering:
            raise InvalidRequest(
                "this query requires a full scan; add ALLOW FILTERING to accept the cost"
            )
        return self._filter(list(table.scan()), remaining, table, allow_filtering=True, indexed=True)

    def _filter(
        self,
        rows: List[Dict[str, object]],
        conditions: List[ast.Condition],
        table: ColumnFamily,
        allow_filtering: bool,
        indexed: bool,
    ) -> List[Dict[str, object]]:
        if conditions and not allow_filtering and not indexed:
            raise InvalidRequest("filtering requires ALLOW FILTERING")
        for condition in conditions:
            table.column(condition.column)  # validate
            rows = [row for row in rows if self._matches(row, condition)]
        return rows

    def _matches(self, row: Dict[str, object], condition: ast.Condition) -> bool:
        actual = row.get(condition.column)
        if condition.op == "IN":
            targets = [self._resolve(v) for v in condition.value]
            return actual in targets
        expected = self._resolve(condition.value)
        if actual is None:
            return False
        if condition.op == "=":
            return actual == expected
        if condition.op == "<":
            return actual < expected
        if condition.op == ">":
            return actual > expected
        if condition.op == "<=":
            return actual <= expected
        if condition.op == ">=":
            return actual >= expected
        raise InvalidRequest(f"unsupported operator {condition.op!r}")

    def _update(self, stmt: ast.Update):
        table = self._table(stmt.ref)
        key = self._pk_from_where(table, stmt.where)
        assignments = {column: self._resolve(value) for column, value in stmt.assignments}
        table.update(key, assignments)
        return None, None

    def _delete(self, stmt: ast.Delete):
        table = self._table(stmt.ref)
        key = self._pk_from_where(table, stmt.where)
        table.delete(key)
        return None, None

    def _pk_from_where(self, table: ColumnFamily, where: List[ast.Condition]):
        if len(where) != 1 or where[0].column != table.primary_key or where[0].op != "=":
            raise InvalidRequest(
                f"statement must target the primary key: WHERE {table.primary_key} = ..."
            )
        return self._resolve(where[0].value)

    def _truncate(self, stmt: ast.Truncate):
        self._table(stmt.ref).truncate()
        return None, None

    def _batch(self, stmt: ast.Batch):
        """Logged batch: apply every mutation in order."""
        for inner in stmt.statements:
            self.run(inner)
        return None, None
