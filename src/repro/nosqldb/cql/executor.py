"""CQL execution against a :class:`~repro.nosqldb.engine.NoSQLEngine`.

SELECTs are compiled into :mod:`repro.query` plans — the same operator
vocabulary the SQL engine uses (PointLookup / MultiGet / IndexScan /
FullScan / Filter / Sort / Limit / Aggregate) — so ``EXPLAIN SELECT``
reads identically in both dialects.  This module is the CQL *binding*
of the shared kernel: it compiles the dialect AST into the callables
the plan nodes carry and keeps all engine-specific error behaviour
(:class:`InvalidRequest`, the ALLOW FILTERING gate) on this side of the
boundary.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.nosqldb.columnfamily import Column, ColumnFamily
from repro.nosqldb.cql import ast
from repro.nosqldb.errors import InvalidRequest
from repro.nosqldb.types import parse_type
from repro.query import (
    ACCESS_INDEX,
    ACCESS_MULTIGET,
    ACCESS_POINT,
    Aggregate,
    Filter,
    FullScan,
    IndexScan,
    Limit,
    MultiGet,
    PUSHABLE_OPS,
    Plan,
    PointLookup,
    Project,
    PushedCondition,
    PushedPredicate,
    ResultSet as _KernelResultSet,
    Sort,
    TableMeta,
    analyze_plan,
    choose_access,
    compare,
    count_partial,
    null_safe_key,
)


class ResultSet(_KernelResultSet):
    """Rows returned by a SELECT (list of column-name -> value dicts)."""

    __slots__ = ()

    def __init__(self, rows: List[Dict[str, object]]) -> None:
        super().__init__(rows)


def execute(
    engine,
    statement: ast.Statement,
    params: Sequence = (),
    current_keyspace: Optional[str] = None,
) -> Tuple[Optional[ResultSet], Optional[str]]:
    """Run ``statement``; returns ``(result_set, new_current_keyspace)``.

    ``new_current_keyspace`` is non-None only for USE statements.
    """
    runner = _Executor(engine, params, current_keyspace)
    return runner.run(statement)


def plan_insert_template(
    engine, statement: ast.Statement, current_keyspace: Optional[str]
):
    """Resolve a plain INSERT to ``(table, template, pk_slot)``.

    ``template`` is a list of ``(column, is_bind, index_or_constant)``
    slots; ``pk_slot`` is the template entry for the primary key.  Returns
    ``None`` when the statement cannot be planned ahead of execution
    (collection literals with inner bind markers, non-INSERT statements,
    no resolvable keyspace, no primary-key column).
    """
    if not isinstance(statement, ast.Insert):
        return None
    keyspace_name = statement.ref.keyspace or current_keyspace
    if keyspace_name is None:
        return None
    table = engine.keyspace(keyspace_name).table(statement.ref.table)
    template = []
    pk_slot = None
    for name, value in zip(statement.columns, statement.values):
        if isinstance(value, ast.SetLiteral):
            return None
        column = table.column(name)
        is_bind = isinstance(value, ast.Placeholder)
        slot = (column, is_bind, value.index if is_bind else value)
        if name == table.primary_key:
            pk_slot = slot
        template.append(slot)
    if pk_slot is None:
        return None
    return table, template, pk_slot


def plan_point_select(
    engine, statement: ast.Statement, current_keyspace: Optional[str]
):
    """Resolve ``SELECT ... WHERE <pk> = ?`` to a batched-fetch shape.

    Returns ``(table, key_slot, columns, limit)`` where ``key_slot`` is
    ``(is_bind, index_or_constant)``.  This is the shape
    :meth:`~repro.nosqldb.session.Session.execute_many` fuses into one
    :class:`repro.query.MultiGet` execution.  Returns ``None`` for any
    other statement shape (those fall back to per-row execution through
    the generic executor).
    """
    if not isinstance(statement, ast.Select) or statement.count:
        return None
    if statement.order_by is not None:
        return None
    keyspace_name = statement.ref.keyspace or current_keyspace
    if keyspace_name is None:
        return None
    table = engine.keyspace(keyspace_name).table(statement.ref.table)
    if len(statement.where) != 1:
        return None
    condition = statement.where[0]
    if condition.column != table.primary_key or condition.op != "=":
        return None
    value = condition.value
    if isinstance(value, ast.SetLiteral):
        return None
    is_bind = isinstance(value, ast.Placeholder)
    columns = tuple(statement.columns or ())
    for name in columns:
        table.column(name)  # validate once, not per row
    key_slot = (is_bind, value.index if is_bind else value)
    return table, key_slot, columns, statement.limit


class FusedPointSelect:
    """execute_many's server-side shape: one :class:`MultiGet` resolves
    every bound key, key-aligned so each parameter row maps to its own
    result.  Cached in the session plan cache under the statement text;
    ``guards`` revalidate the resolved column family on every hit."""

    __slots__ = ("node", "key_slot", "columns", "limit", "guards")

    def __init__(self, node, key_slot, columns, limit, guards) -> None:
        self.node = node
        self.key_slot = key_slot
        self.columns = columns
        self.limit = limit
        self.guards = guards

    def fetch(self, keys: Sequence) -> List[Optional[Dict[str, object]]]:
        """Key-aligned rows (None per missing key) for ``keys``."""
        return self.node.run(keys)


def make_select_many_plan(
    engine, statement: ast.Statement, current_keyspace: Optional[str]
) -> Optional[FusedPointSelect]:
    """Compile the fused multi-get plan behind ``execute_many``.

    Returns ``None`` when the statement is not the point-select shape.
    """
    planned = plan_point_select(engine, statement, current_keyspace)
    if planned is None:
        return None
    table, key_slot, columns, limit = planned
    node = MultiGet(
        table,
        keys=lambda keys: keys,
        table_name=statement.ref.table,
        key_desc=table.primary_key,
        cache_probe=lambda: table.block_cache_hits,
        keep_missing=True,
    )
    keyspace_name = statement.ref.keyspace or current_keyspace
    guard = _table_guard(engine, keyspace_name, statement.ref.table, table)
    return FusedPointSelect(node, key_slot, columns, limit, (guard,))


def make_insert_plan(engine, statement: ast.Statement, current_keyspace: Optional[str]):
    """Compile a simple prepared INSERT into a per-row callable.

    This is the server-side prepared-statement plan: the table and column
    template are resolved once, so batch execution only binds parameters
    and calls the storage engine.  Returns ``None`` when the statement is
    not a plain INSERT (collection literals with inner bind markers and
    non-INSERT statements fall back to the generic executor).
    """
    planned = plan_insert_template(engine, statement, current_keyspace)
    if planned is None:
        return None
    table, template, pk_slot = planned
    insert_bound = table.insert_bound
    pk_column, pk_is_bind, pk_value = pk_slot

    def run(params: Sequence) -> None:
        key = params[pk_value] if pk_is_bind else pk_value
        if key is None:
            raise InvalidRequest(f"INSERT into {table.name!r} misses primary key")
        bound = []
        for column, is_bind, value in template:
            resolved = params[value] if is_bind else value
            if resolved is not None:
                bound.append((column, resolved))
        insert_bound(key, bound)

    return run


# ----------------------------------------------------------------------
# AST -> kernel-callable compilation helpers
# ----------------------------------------------------------------------
def _compile_value(value) -> Callable[[Sequence], object]:
    """A ``resolve(params)`` callable for one literal/placeholder/set."""
    if isinstance(value, ast.Placeholder):
        index = value.index

        def resolve(params: Sequence):
            if index >= len(params):
                raise InvalidRequest(
                    f"statement has bind marker ?{index} but only "
                    f"{len(params)} parameters were supplied"
                )
            return params[index]

        return resolve
    if isinstance(value, ast.SetLiteral):
        items = [_compile_value(item) for item in value.items]
        return lambda params: {resolve(params) for resolve in items}
    return lambda params: value


def _compile_value_list(values) -> Callable[[Sequence], List[object]]:
    resolvers = [_compile_value(v) for v in values]
    return lambda params: [resolve(params) for resolve in resolvers]


def _condition_desc(condition: ast.Condition) -> str:
    if condition.op == "IN":
        return f"{condition.column} IN ({', '.join(repr(v) for v in condition.value)})"
    return f"{condition.column} {condition.op} {condition.value!r}"


def _table_guard(engine, keyspace_name: str, table_name: str, table: ColumnFamily):
    """A plan-cache guard: same column family, same index signature."""
    indexed = frozenset(table.indexed_columns)

    def check() -> bool:
        return (
            engine.keyspace(keyspace_name).table(table_name) is table
            and frozenset(table.indexed_columns) == indexed
        )

    return check


def _table_meta(table: ColumnFamily) -> TableMeta:
    return TableMeta(
        name=table.name,
        primary_key=(table.primary_key,),
        indexed=frozenset(table.indexed_columns),
        supports_pk_prefix=False,
    )


def build_select_plan(
    engine, stmt: ast.Select, current_keyspace: Optional[str]
) -> Plan:
    """Compile a SELECT statement into an executable kernel plan.

    Statement-shape validation — unknown tables/columns and Cassandra's
    ALLOW FILTERING gate (a full scan with residual filters must be
    opted into) — happens here, at plan-build time.  Raises
    :class:`InvalidRequest` exactly where per-execution interpretation
    used to.
    """
    keyspace_name = stmt.ref.keyspace or current_keyspace
    if keyspace_name is None:
        raise InvalidRequest(f"no keyspace specified for table {stmt.ref.table!r}")
    table = engine.keyspace(keyspace_name).table(stmt.ref.table)
    guards = (_table_guard(engine, keyspace_name, stmt.ref.table, table),)

    conditions = list(stmt.where)
    access, index = choose_access(
        _table_meta(table), [(c.column, c.op) for c in conditions]
    )
    condition = conditions[index] if index is not None else None
    residual = [c for c in conditions if c is not condition]

    cache_probe = lambda: table.block_cache_hits
    if access == ACCESS_POINT:
        node = PointLookup(
            table,
            key=_compile_value(condition.value),
            table_name=table.name,
            key_desc=condition.column,
            cache_probe=cache_probe,
        )
    elif access == ACCESS_MULTIGET:
        # IN lists go through the batched multi-get: one block decode
        # per touched SSTable block instead of one walk per key.
        node = MultiGet(
            table,
            keys=_compile_value_list(condition.value),
            table_name=table.name,
            key_desc=condition.column,
            cache_probe=cache_probe,
        )
    elif access == ACCESS_INDEX:
        pushed, residual = _split_pushdown(table, residual)
        node = IndexScan(
            table,
            column=condition.column,
            value=_compile_value(condition.value),
            table_name=table.name,
            access=IndexScan.SECONDARY,
            pushed=pushed,
        )
    else:
        # The ALLOW FILTERING gate judges the statement *before* pushdown:
        # a scan with residual conditions stays an opt-in cost even when
        # the storage layer will end up evaluating them itself.
        if residual and not stmt.allow_filtering:
            raise InvalidRequest(
                "this query requires a full scan; add ALLOW FILTERING to accept the cost"
            )
        pushed, residual = _split_pushdown(table, residual)
        node = FullScan(table, table.name, pushed=pushed)

    for cond in residual:
        table.column(cond.column)  # validate
        node = Filter(node, _predicate(cond), _condition_desc(cond))

    if stmt.order_by is not None:
        table.column(stmt.order_by)  # validate
        order_name = stmt.order_by
        node = Sort(
            node,
            key=lambda row: null_safe_key(row.get(order_name)),
            descending=stmt.descending,
            detail=order_name,
        )
    if stmt.limit is not None:
        node = Limit(node, stmt.limit)
    if stmt.count:
        # CQL counts what the statement returns, so LIMIT applies first
        # (unlike SQL, where COUNT ignores it) — the Aggregate sits
        # above the Limit node.  The partial decomposition only engages
        # when the Aggregate sits directly on a sharded FullScan, so a
        # LIMIT (or any other interposed operator) keeps the serial,
        # statement-faithful order of operations.
        node = Aggregate(
            node,
            lambda rows, params: [{"count": len(rows)}],
            "count(*)",
            partial=count_partial(),
        )
    elif stmt.columns:
        names = list(stmt.columns)
        for name in names:
            table.column(name)  # validate
        node = Project(
            node,
            lambda row: {name: row[name] for name in names},
            ", ".join(names),
        )
    return Plan(node, guards=guards)


def _split_pushdown(table: ColumnFamily, residual):
    """Partition residual conditions into ``(PushedPredicate, leftover)``.

    Conditions with a pushable operator (see
    :data:`repro.query.PUSHABLE_OPS`) move into the storage layer;
    ``IS NULL`` / ``IS NOT NULL`` and anything else stay as Filter nodes
    above the access path.  Raises :class:`InvalidRequest` (via
    ``table.column``) for unknown column names, exactly as the Filter
    construction it replaces did.
    """
    pushable = []
    leftover = []
    for cond in residual:
        table.column(cond.column)  # validate
        if cond.op not in PUSHABLE_OPS:
            leftover.append(cond)
            continue
        if cond.op == "IN":
            resolve = _compile_value_list(cond.value)
        else:
            resolve = _compile_value(cond.value)
        pushable.append(
            PushedCondition(cond.column, cond.op, resolve, _condition_desc(cond))
        )
    pushed = PushedPredicate(pushable) if pushable else None
    return pushed, leftover


def _predicate(condition: ast.Condition):
    op = condition.op
    column = condition.column
    if op == "IN":
        expected = _compile_value_list(condition.value)
    else:
        expected = _compile_value(condition.value)

    def check(row, params):
        return compare(op, row.get(column), expected(params))

    return check


class _Executor:
    def __init__(self, engine, params: Sequence, current_keyspace: Optional[str]) -> None:
        self.engine = engine
        self.params = tuple(params)
        self.current_keyspace = current_keyspace

    # -- value resolution ----------------------------------------------------
    def _resolve(self, value):
        return _compile_value(value)(self.params)

    def _table(self, ref: ast.TableRef) -> ColumnFamily:
        keyspace_name = ref.keyspace or self.current_keyspace
        if keyspace_name is None:
            raise InvalidRequest(f"no keyspace specified for table {ref.table!r}")
        return self.engine.keyspace(keyspace_name).table(ref.table)

    # -- dispatch ---------------------------------------------------------------
    def run(self, statement: ast.Statement):
        handler = {
            ast.CreateKeyspace: self._create_keyspace,
            ast.CreateTable: self._create_table,
            ast.CreateIndex: self._create_index,
            ast.DropTable: self._drop_table,
            ast.DropKeyspace: self._drop_keyspace,
            ast.Use: self._use,
            ast.Insert: self._insert,
            ast.Select: self._select,
            ast.Update: self._update,
            ast.Delete: self._delete,
            ast.Truncate: self._truncate,
            ast.Batch: self._batch,
            ast.Explain: self._explain,
        }.get(type(statement))
        if handler is None:
            raise InvalidRequest(f"unsupported statement {type(statement).__name__}")
        return handler(statement)

    # -- DDL ---------------------------------------------------------------------
    def _create_keyspace(self, stmt: ast.CreateKeyspace):
        self.engine.create_keyspace(
            stmt.name, durable_writes=stmt.durable_writes, if_not_exists=stmt.if_not_exists
        )
        return None, None

    def _create_table(self, stmt: ast.CreateTable):
        keyspace_name = stmt.ref.keyspace or self.current_keyspace
        if keyspace_name is None:
            raise InvalidRequest("CREATE TABLE without a keyspace")
        keyspace = self.engine.keyspace(keyspace_name)
        columns = [Column(name, parse_type(type_text)) for name, type_text in stmt.columns]
        keyspace.create_table(
            stmt.ref.table,
            columns,
            stmt.primary_key,
            compression=stmt.compression,
            if_not_exists=stmt.if_not_exists,
        )
        return None, None

    def _create_index(self, stmt: ast.CreateIndex):
        table = self._table(stmt.ref)
        index_name = stmt.name or f"{table.name}_{stmt.column}_idx"
        if stmt.if_not_exists and table.has_index(stmt.column):
            return None, None
        table.create_index(index_name, stmt.column)
        return None, None

    def _drop_table(self, stmt: ast.DropTable):
        keyspace_name = stmt.ref.keyspace or self.current_keyspace
        if keyspace_name is None:
            raise InvalidRequest("DROP TABLE without a keyspace")
        self.engine.keyspace(keyspace_name).drop_table(stmt.ref.table)
        return None, None

    def _drop_keyspace(self, stmt: ast.DropKeyspace):
        self.engine.drop_keyspace(stmt.name)
        return None, None

    def _use(self, stmt: ast.Use):
        self.engine.keyspace(stmt.name)  # validates existence
        return None, stmt.name

    # -- DML ----------------------------------------------------------------------
    def _insert(self, stmt: ast.Insert):
        table = self._table(stmt.ref)
        row = {}
        for column, value in zip(stmt.columns, stmt.values):
            resolved = self._resolve(value)
            if resolved is not None:
                row[column] = resolved
        table.insert(row)
        return None, None

    # -- SELECT -----------------------------------------------------------------
    def _select(self, stmt: ast.Select):
        plan = build_select_plan(self.engine, stmt, self.current_keyspace)
        return ResultSet(plan.run(self.params)), None

    def _update(self, stmt: ast.Update):
        table = self._table(stmt.ref)
        key = self._pk_from_where(table, stmt.where)
        assignments = {column: self._resolve(value) for column, value in stmt.assignments}
        table.update(key, assignments)
        return None, None

    def _delete(self, stmt: ast.Delete):
        table = self._table(stmt.ref)
        key = self._pk_from_where(table, stmt.where)
        table.delete(key)
        return None, None

    def _pk_from_where(self, table: ColumnFamily, where: List[ast.Condition]):
        if len(where) != 1 or where[0].column != table.primary_key or where[0].op != "=":
            raise InvalidRequest(
                f"statement must target the primary key: WHERE {table.primary_key} = ..."
            )
        return self._resolve(where[0].value)

    def _truncate(self, stmt: ast.Truncate):
        self._table(stmt.ref).truncate()
        return None, None

    def _batch(self, stmt: ast.Batch):
        """Logged batch: apply every mutation in order."""
        for inner in stmt.statements:
            self.run(inner)
        return None, None

    # -- EXPLAIN ------------------------------------------------------------------
    def _explain(self, stmt: ast.Explain):
        """Build the plan; one row per operator.  With ANALYZE the plan
        is also executed and every row carries actual counters."""
        plan = build_select_plan(self.engine, stmt.select, self.current_keyspace)
        if not stmt.analyze:
            return ResultSet(plan.explain()), None
        analyzed = analyze_plan(plan, self.params)
        result = ResultSet(analyzed.report)
        result.analyzed = analyzed
        return result, None
