"""CQL tokeniser.

A small regex-driven scanner producing ``(kind, text, position)`` tokens.
Keywords are recognised case-insensitively at the parser level; the lexer
only distinguishes identifiers, literals and punctuation.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple

from repro.nosqldb.errors import CQLSyntaxError
from repro.query import syntax_error_message


class Token(NamedTuple):
    kind: str      # IDENT | NUMBER | STRING | OP | END
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>--[^\n]*|//[^\n]*)
  | (?P<STRING>'(?:[^']|'')*')
  | (?P<NUMBER>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<OP><=|>=|!=|[(),.=<>*?{};\[\]:])
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[Token]:
    """Scan ``text`` into tokens, ending with a single END token."""
    tokens: List[Token] = []
    position = 0
    length = len(text)
    while position < length:
        match = _TOKEN_RE.match(text, position)
        if match is None:
            snippet = text[position:position + 20]
            raise CQLSyntaxError(
                syntax_error_message("cannot tokenise CQL", text, position, snippet)
            )
        kind = match.lastgroup
        value = match.group()
        position = match.end()
        if kind in ("WS", "COMMENT"):
            continue
        tokens.append(Token(kind, value, match.start()))
    tokens.append(Token("END", "", length))
    return tokens


def unquote_string(text: str) -> str:
    """Strip quotes and collapse doubled single quotes."""
    return text[1:-1].replace("''", "'")
