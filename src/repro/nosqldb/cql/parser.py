"""Recursive-descent parser for the CQL subset."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.nosqldb.cql import ast
from repro.nosqldb.cql.lexer import Token, tokenize, unquote_string
from repro.nosqldb.errors import CQLSyntaxError
from repro.query import syntax_error_message


def parse(text: str) -> ast.Statement:
    """Parse one CQL statement (a trailing ``;`` is allowed)."""
    return _Parser(text).parse_statement()


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.position = 0
        self._n_placeholders = 0

    # -- token plumbing ---------------------------------------------------
    def _peek(self) -> Token:
        return self.tokens[self.position]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "END":
            self.position += 1
        return token

    def _error(self, message: str) -> CQLSyntaxError:
        token = self._peek()
        return CQLSyntaxError(
            syntax_error_message(message, self.text, token.position, token.text)
        )

    def _accept_keyword(self, word: str) -> bool:
        token = self._peek()
        if token.kind == "IDENT" and token.text.upper() == word:
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise self._error(f"expected {word}")

    def _accept_op(self, op: str) -> bool:
        token = self._peek()
        if token.kind == "OP" and token.text == op:
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            raise self._error(f"expected {op!r}")

    def _identifier(self) -> str:
        token = self._peek()
        if token.kind != "IDENT":
            raise self._error("expected an identifier")
        self._advance()
        return token.text

    # -- entry point --------------------------------------------------------
    def parse_statement(self) -> ast.Statement:
        statement = self._statement()
        self._accept_op(";")
        if self._peek().kind != "END":
            raise self._error("trailing input after statement")
        return statement

    def _statement(self) -> ast.Statement:
        if self._accept_keyword("EXPLAIN"):
            analyze = self._accept_keyword("ANALYZE")
            self._expect_keyword("SELECT")
            return ast.Explain(self._select(), analyze=analyze)
        if self._accept_keyword("BEGIN"):
            return self._batch()
        if self._accept_keyword("CREATE"):
            return self._create()
        if self._accept_keyword("INSERT"):
            return self._insert()
        if self._accept_keyword("SELECT"):
            return self._select()
        if self._accept_keyword("UPDATE"):
            return self._update()
        if self._accept_keyword("DELETE"):
            return self._delete()
        if self._accept_keyword("TRUNCATE"):
            return ast.Truncate(self._table_ref())
        if self._accept_keyword("DROP"):
            return self._drop()
        if self._accept_keyword("USE"):
            return ast.Use(self._identifier())
        raise self._error("unknown statement")

    def _batch(self) -> ast.Batch:
        """``BEGIN BATCH`` followed by ;-separated mutations, ``APPLY BATCH``."""
        self._expect_keyword("BATCH")
        statements: List[ast.Statement] = []
        while True:
            if self._accept_keyword("APPLY"):
                self._expect_keyword("BATCH")
                break
            if self._accept_keyword("INSERT"):
                statements.append(self._insert())
            elif self._accept_keyword("UPDATE"):
                statements.append(self._update())
            elif self._accept_keyword("DELETE"):
                statements.append(self._delete())
            else:
                raise self._error("batches may contain INSERT, UPDATE or DELETE")
            self._accept_op(";")
        if not statements:
            raise self._error("empty batch")
        return ast.Batch(statements)

    # -- DDL -----------------------------------------------------------------
    def _if_not_exists(self) -> bool:
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            return True
        return False

    def _create(self) -> ast.Statement:
        if self._accept_keyword("KEYSPACE"):
            if_not_exists = self._if_not_exists()
            name = self._identifier()
            durable = True
            if self._accept_keyword("WITH"):
                self._expect_keyword("DURABLE_WRITES")
                self._expect_op("=")
                durable = self._boolean()
            return ast.CreateKeyspace(name, if_not_exists, durable)
        if self._accept_keyword("TABLE") or self._accept_keyword("COLUMNFAMILY"):
            return self._create_table()
        if self._accept_keyword("INDEX"):
            return self._create_index()
        raise self._error("expected KEYSPACE, TABLE or INDEX")

    def _create_table(self) -> ast.CreateTable:
        if_not_exists = self._if_not_exists()
        ref = self._table_ref()
        self._expect_op("(")
        columns: List[Tuple[str, str]] = []
        primary_key: Optional[str] = None
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                self._expect_op("(")
                primary_key = self._identifier()
                self._expect_op(")")
            else:
                column = self._identifier()
                type_text = self._type_text()
                if self._accept_keyword("PRIMARY"):
                    self._expect_keyword("KEY")
                    primary_key = column
                columns.append((column, type_text))
            if self._accept_op(","):
                continue
            break
        self._expect_op(")")
        compression = True
        if self._accept_keyword("WITH"):
            self._expect_keyword("COMPRESSION")
            self._expect_op("=")
            compression = self._boolean()
        if primary_key is None:
            raise self._error("CREATE TABLE needs a PRIMARY KEY")
        return ast.CreateTable(ref, columns, primary_key, if_not_exists, compression)

    def _type_text(self) -> str:
        base = self._identifier()
        if self._accept_op("<"):
            inner = self._identifier()
            self._expect_op(">")
            return f"{base}<{inner}>"
        return base

    def _create_index(self) -> ast.CreateIndex:
        if_not_exists = self._if_not_exists()
        name: Optional[str] = None
        if not self._accept_keyword("ON"):
            name = self._identifier()
            self._expect_keyword("ON")
        ref = self._table_ref()
        self._expect_op("(")
        column = self._identifier()
        self._expect_op(")")
        return ast.CreateIndex(name, ref, column, if_not_exists)

    def _drop(self) -> ast.Statement:
        if self._accept_keyword("TABLE"):
            return ast.DropTable(self._table_ref())
        if self._accept_keyword("KEYSPACE"):
            return ast.DropKeyspace(self._identifier())
        raise self._error("expected TABLE or KEYSPACE")

    # -- DML -----------------------------------------------------------------
    def _table_ref(self) -> ast.TableRef:
        first = self._identifier()
        if self._accept_op("."):
            return ast.TableRef(first, self._identifier())
        return ast.TableRef(None, first)

    def _insert(self) -> ast.Insert:
        self._expect_keyword("INTO")
        ref = self._table_ref()
        self._expect_op("(")
        columns = [self._identifier()]
        while self._accept_op(","):
            columns.append(self._identifier())
        self._expect_op(")")
        self._expect_keyword("VALUES")
        self._expect_op("(")
        values = [self._value()]
        while self._accept_op(","):
            values.append(self._value())
        self._expect_op(")")
        if len(columns) != len(values):
            raise self._error(f"{len(columns)} columns but {len(values)} values")
        return ast.Insert(ref, columns, values)

    def _select(self) -> ast.Select:
        count = False
        columns: List[str] = []
        if self._accept_op("*"):
            pass
        elif self._accept_keyword("COUNT"):
            self._expect_op("(")
            self._expect_op("*")
            self._expect_op(")")
            count = True
        else:
            columns.append(self._identifier())
            while self._accept_op(","):
                columns.append(self._identifier())
        self._expect_keyword("FROM")
        ref = self._table_ref()
        where = self._where_clause()
        order_by: Optional[str] = None
        descending = False
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._identifier()
            if self._accept_keyword("DESC"):
                descending = True
            else:
                self._accept_keyword("ASC")
        limit: Optional[int] = None
        if self._accept_keyword("LIMIT"):
            token = self._peek()
            if token.kind != "NUMBER":
                raise self._error("expected a LIMIT count")
            self._advance()
            limit = int(token.text)
        allow_filtering = False
        if self._accept_keyword("ALLOW"):
            self._expect_keyword("FILTERING")
            allow_filtering = True
        return ast.Select(
            ref, columns, where, limit, allow_filtering, count,
            order_by=order_by, descending=descending,
        )

    def _update(self) -> ast.Update:
        ref = self._table_ref()
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._accept_op(","):
            assignments.append(self._assignment())
        where = self._where_clause()
        if not where:
            raise self._error("UPDATE requires a WHERE clause")
        return ast.Update(ref, assignments, where)

    def _assignment(self) -> Tuple[str, object]:
        column = self._identifier()
        self._expect_op("=")
        return column, self._value()

    def _delete(self) -> ast.Delete:
        self._expect_keyword("FROM")
        ref = self._table_ref()
        where = self._where_clause()
        if not where:
            raise self._error("DELETE requires a WHERE clause")
        return ast.Delete(ref, where)

    def _where_clause(self) -> List[ast.Condition]:
        conditions: List[ast.Condition] = []
        if not self._accept_keyword("WHERE"):
            return conditions
        conditions.append(self._condition())
        while self._accept_keyword("AND"):
            conditions.append(self._condition())
        return conditions

    def _condition(self) -> ast.Condition:
        column = self._identifier()
        if self._accept_keyword("IN"):
            self._expect_op("(")
            items = [self._value()]
            while self._accept_op(","):
                items.append(self._value())
            self._expect_op(")")
            return ast.Condition(column, "IN", items)
        for op in ("<=", ">=", "=", "<", ">"):
            if self._accept_op(op):
                return ast.Condition(column, op, self._value())
        raise self._error("expected a comparison operator")

    # -- literals --------------------------------------------------------------
    def _boolean(self) -> bool:
        if self._accept_keyword("TRUE"):
            return True
        if self._accept_keyword("FALSE"):
            return False
        raise self._error("expected TRUE or FALSE")

    def _value(self):
        token = self._peek()
        if token.kind == "OP" and token.text == "?":
            self._advance()
            placeholder = ast.Placeholder(self._n_placeholders)
            self._n_placeholders += 1
            return placeholder
        if token.kind == "NUMBER":
            self._advance()
            text = token.text
            if "." in text or "e" in text or "E" in text:
                return float(text)
            return int(text)
        if token.kind == "STRING":
            self._advance()
            return unquote_string(token.text)
        if token.kind == "IDENT":
            upper = token.text.upper()
            if upper == "TRUE":
                self._advance()
                return True
            if upper == "FALSE":
                self._advance()
                return False
            if upper == "NULL":
                self._advance()
                return None
        if token.kind == "OP" and token.text == "{":
            self._advance()
            items = []
            if not self._accept_op("}"):
                items.append(self._value())
                while self._accept_op(","):
                    items.append(self._value())
                self._expect_op("}")
            return ast.SetLiteral(items)
        raise self._error("expected a literal value")
