"""A CQL subset: enough of the Cassandra Query Language to drive the paper.

Supported statements: CREATE KEYSPACE / TABLE / INDEX, DROP, USE,
INSERT, SELECT (point, index, filtered and full scans, COUNT(*)),
UPDATE, DELETE, TRUNCATE — with positional ``?`` bind markers for
prepared statements.
"""

from repro.nosqldb.cql.parser import parse
from repro.nosqldb.cql.executor import execute

__all__ = ["parse", "execute"]
