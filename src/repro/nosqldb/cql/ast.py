"""CQL abstract syntax tree.

Plain ``__slots__`` value classes; the executor pattern-matches on the
statement class.  Literal values are stored as Python objects; ``?`` bind
markers become :class:`Placeholder` nodes resolved from the parameter
tuple at execution time.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class Placeholder:
    """A positional ``?`` bind marker (0-based)."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __repr__(self) -> str:
        return f"?{self.index}"


class SetLiteral:
    """A ``{a, b, c}`` collection literal (elements may be placeholders)."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence) -> None:
        self.items = tuple(items)

    def __repr__(self) -> str:
        return "{" + ", ".join(repr(i) for i in self.items) + "}"


class Condition:
    """One WHERE conjunct: ``column OP value``  (OP: = < > <= >= IN)."""

    __slots__ = ("column", "op", "value")

    def __init__(self, column: str, op: str, value) -> None:
        self.column = column
        self.op = op
        self.value = value

    def __repr__(self) -> str:
        return f"{self.column} {self.op} {self.value!r}"


class TableRef:
    """``[keyspace.]table``"""

    __slots__ = ("keyspace", "table")

    def __init__(self, keyspace: Optional[str], table: str) -> None:
        self.keyspace = keyspace
        self.table = table

    def __repr__(self) -> str:
        return f"{self.keyspace}.{self.table}" if self.keyspace else self.table


class Statement:
    """Marker base class for statements."""

    __slots__ = ()


class CreateKeyspace(Statement):
    __slots__ = ("name", "if_not_exists", "durable_writes")

    def __init__(self, name: str, if_not_exists: bool, durable_writes: bool) -> None:
        self.name = name
        self.if_not_exists = if_not_exists
        self.durable_writes = durable_writes


class CreateTable(Statement):
    __slots__ = ("ref", "columns", "primary_key", "if_not_exists", "compression")

    def __init__(
        self,
        ref: TableRef,
        columns: List[Tuple[str, str]],
        primary_key: str,
        if_not_exists: bool,
        compression: bool,
    ) -> None:
        self.ref = ref
        self.columns = columns          # [(name, type_text)]
        self.primary_key = primary_key
        self.if_not_exists = if_not_exists
        self.compression = compression


class CreateIndex(Statement):
    __slots__ = ("name", "ref", "column", "if_not_exists")

    def __init__(self, name: Optional[str], ref: TableRef, column: str, if_not_exists: bool) -> None:
        self.name = name
        self.ref = ref
        self.column = column
        self.if_not_exists = if_not_exists


class DropTable(Statement):
    __slots__ = ("ref",)

    def __init__(self, ref: TableRef) -> None:
        self.ref = ref


class DropKeyspace(Statement):
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


class Use(Statement):
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


class Insert(Statement):
    __slots__ = ("ref", "columns", "values")

    def __init__(self, ref: TableRef, columns: List[str], values: List) -> None:
        self.ref = ref
        self.columns = columns
        self.values = values


class Select(Statement):
    __slots__ = (
        "ref", "columns", "where", "limit", "allow_filtering", "count",
        "order_by", "descending",
    )

    def __init__(
        self,
        ref: TableRef,
        columns: List[str],          # empty means *
        where: List[Condition],
        limit: Optional[int],
        allow_filtering: bool,
        count: bool,
        order_by: Optional[str] = None,
        descending: bool = False,
    ) -> None:
        self.ref = ref
        self.columns = columns
        self.where = where
        self.limit = limit
        self.allow_filtering = allow_filtering
        self.count = count
        self.order_by = order_by
        self.descending = descending


class Update(Statement):
    __slots__ = ("ref", "assignments", "where")

    def __init__(self, ref: TableRef, assignments: List[Tuple[str, object]], where: List[Condition]) -> None:
        self.ref = ref
        self.assignments = assignments
        self.where = where


class Delete(Statement):
    __slots__ = ("ref", "where")

    def __init__(self, ref: TableRef, where: List[Condition]) -> None:
        self.ref = ref
        self.where = where


class Truncate(Statement):
    __slots__ = ("ref",)

    def __init__(self, ref: TableRef) -> None:
        self.ref = ref


class Batch(Statement):
    """``BEGIN BATCH <mutations...> APPLY BATCH`` (logged batch)."""

    __slots__ = ("statements",)

    def __init__(self, statements: List[Statement]) -> None:
        self.statements = statements


class Explain(Statement):
    """``EXPLAIN [ANALYZE] SELECT ...``: report the chosen plan, one row
    per operator.

    With ``analyze`` set the statement is also *executed* and every
    operator row carries actual counters (see
    :mod:`repro.query.analyze`)."""

    __slots__ = ("select", "analyze")

    def __init__(self, select: "Select", analyze: bool = False) -> None:
        self.select = select
        self.analyze = analyze
