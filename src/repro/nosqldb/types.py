"""CQL column types.

The paper's schemas (Table 1) use ``int``, ``text``, ``boolean`` and
``set<int>``.  Each type validates Python values and encodes/decodes them
to the byte format stored in memtables and SSTables.  ``set<int>`` is the
load-bearing one: a DWARF node's whole child list becomes one compact,
varint-packed value in a single row — the property §5.1 credits for
Cassandra beating MySQL on the relationship-heavy DWARF structure.
"""

from __future__ import annotations

from typing import Tuple

from repro.nosqldb.errors import InvalidRequest
from repro.storage.encoding import (
    decode_bool,
    decode_float,
    decode_text,
    encode_bool,
    encode_float,
    encode_text,
)
from repro.storage.varint import decode_varint, encode_varint


class CQLType:
    """Base class: a named value domain with a byte codec."""

    name = "?"

    def validate(self, value) -> None:
        raise NotImplementedError

    def encode(self, value) -> bytes:
        raise NotImplementedError

    def validate_encode(self, value) -> bytes:
        """Validate then encode in one call (the write hot path)."""
        self.validate(value)
        return self.encode(value)

    def decode(self, buffer, offset: int) -> Tuple[object, int]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<cql {self.name}>"

    def __eq__(self, other) -> bool:
        return isinstance(other, CQLType) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)


class IntType(CQLType):
    name = "int"

    def validate(self, value) -> None:
        """Raises InvalidRequest for values that are not integers."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise InvalidRequest(f"expected int, got {value!r}")

    def encode(self, value) -> bytes:
        return encode_varint(value)

    def validate_encode(self, value) -> bytes:
        if type(value) is not int:
            self.validate(value)
        return encode_varint(value)

    def decode(self, buffer, offset: int):
        return decode_varint(buffer, offset)


class BigIntType(IntType):
    name = "bigint"


class TextType(CQLType):
    name = "text"

    def validate(self, value) -> None:
        """Raises InvalidRequest for values that are not strings."""
        if not isinstance(value, str):
            raise InvalidRequest(f"expected text, got {value!r}")

    def encode(self, value) -> bytes:
        return encode_text(value)

    def validate_encode(self, value) -> bytes:
        if type(value) is not str:
            self.validate(value)
        return encode_text(value)

    def decode(self, buffer, offset: int):
        return decode_text(buffer, offset)


class BooleanType(CQLType):
    name = "boolean"

    def validate(self, value) -> None:
        """Raises InvalidRequest for values that are not booleans."""
        if not isinstance(value, bool):
            raise InvalidRequest(f"expected boolean, got {value!r}")

    def encode(self, value) -> bytes:
        return encode_bool(value)

    def validate_encode(self, value) -> bytes:
        if type(value) is not bool:
            self.validate(value)
        return b"\x01" if value else b"\x00"

    def decode(self, buffer, offset: int):
        return decode_bool(buffer, offset)


class DoubleType(CQLType):
    name = "double"

    def validate(self, value) -> None:
        """Raises InvalidRequest for values that are not int/float."""
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise InvalidRequest(f"expected double, got {value!r}")

    def encode(self, value) -> bytes:
        return encode_float(float(value))

    def decode(self, buffer, offset: int):
        return decode_float(buffer, offset)


class SetType(CQLType):
    """``set<T>``: stored as a sorted, varint-counted element list."""

    def __init__(self, element: CQLType) -> None:
        self.element = element
        self.name = f"set<{element.name}>"

    def validate(self, value) -> None:
        """Raises InvalidRequest for non-sets or ill-typed elements."""
        if not isinstance(value, (set, frozenset)):
            raise InvalidRequest(f"expected a set, got {value!r}")
        for item in value:
            self.element.validate(item)

    def encode(self, value) -> bytes:
        items = sorted(value)
        parts = [encode_varint(len(items))]
        parts.extend(self.element.encode(item) for item in items)
        return b"".join(parts)

    def decode(self, buffer, offset: int):
        count, offset = decode_varint(buffer, offset)
        items = set()
        for _ in range(count):
            item, offset = self.element.decode(buffer, offset)
            items.add(item)
        return items, offset


_SCALARS = {
    t.name: t
    for t in (IntType(), BigIntType(), TextType(), BooleanType(), DoubleType())
}


def parse_type(spec: str) -> CQLType:
    """Resolve a type name like ``int`` or ``set<int>``.

    Raises InvalidRequest for unknown type names and nested sets.
    """
    text = spec.strip().lower()
    if text in _SCALARS:
        return _SCALARS[text]
    if text.startswith("set<") and text.endswith(">"):
        inner = parse_type(text[4:-1])
        if isinstance(inner, SetType):
            raise InvalidRequest("nested set types are not supported")
        return SetType(inner)
    raise InvalidRequest(f"unknown CQL type {spec!r}")
