"""Keyspaces: the databases of the columnar NoSQL engine (paper §3)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.nosqldb.columnfamily import Column, ColumnFamily
from repro.nosqldb.commitlog import CommitLog
from repro.nosqldb.errors import AlreadyExists, InvalidRequest
from repro.telemetry import get_registry, get_tracer

_M_REPLAYED = get_registry().counter(
    "nosqldb_commitlog_replayed_total", "mutations re-applied by crash recovery"
)


class Keyspace:
    """A named collection of column families.

    ``durable_writes`` enables the shared commit log: every mutation is
    appended, fully serialised, before it reaches a memtable — which is
    what makes crash recovery (:meth:`replay_commit_log`) possible.
    """

    def __init__(self, name: str, durable_writes: bool = True, data_dir=None) -> None:
        self.name = name
        self.durable_writes = durable_writes
        self.data_dir = data_dir
        self._tables: Dict[str, ColumnFamily] = {}
        self._commit_log: Optional[CommitLog] = CommitLog() if durable_writes else None

    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: str,
        compression: bool = True,
        if_not_exists: bool = False,
        block_format: Optional[str] = None,
        shards: Optional[int] = None,
    ) -> ColumnFamily:
        """Create a column family.

        Raises AlreadyExists for duplicate names unless ``if_not_exists``.
        ``block_format`` ("row" | "columnar") overrides the
        ``REPRO_BLOCK_FORMAT`` default for the new table's SSTables;
        ``shards`` overrides the ``REPRO_SHARDS`` consistent-hash layout.
        """
        lowered = name.lower()
        if lowered in self._tables:
            if if_not_exists:
                return self._tables[lowered]
            raise AlreadyExists(f"table {name!r} already exists in keyspace {self.name!r}")
        table_dir = None
        if self.data_dir is not None:
            table_dir = self.data_dir / name.lower()
            table_dir.mkdir(parents=True, exist_ok=True)
        table = ColumnFamily(
            name,
            columns,
            primary_key,
            compression=compression,
            commit_log=self._commit_log,
            data_dir=table_dir,
            block_format=block_format,
            shards=shards,
        )
        self._tables[lowered] = table
        return table

    def drop_table(self, name: str) -> None:
        """Raises InvalidRequest when no such table exists."""
        if name.lower() not in self._tables:
            raise InvalidRequest(f"no table {name!r} in keyspace {self.name!r}")
        del self._tables[name.lower()]

    def table(self, name: str) -> ColumnFamily:
        """Raises InvalidRequest when no such table exists."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise InvalidRequest(f"no table {name!r} in keyspace {self.name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    @property
    def tables(self) -> Tuple[ColumnFamily, ...]:
        return tuple(self._tables.values())

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Total on-disk footprint of all column families (post-flush)."""
        return sum(table.size_bytes for table in self._tables.values())

    @property
    def commit_log_bytes(self) -> int:
        return self._commit_log.size_bytes if self._commit_log is not None else 0

    def clear_commit_log(self) -> None:
        """Discard the commit log (checkpoint after flush)."""
        if self._commit_log is not None:
            self._commit_log.checkpoint()

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def simulate_crash(self) -> None:
        """Drop every table's volatile state (memtables), keep SSTables.

        Used by failure-injection tests; pair with
        :meth:`replay_commit_log` to recover.
        """
        for table in self._tables.values():
            table.drop_volatile_state()

    def replay_commit_log(self) -> int:
        """Re-apply every logged mutation; returns the count replayed.

        Raises InvalidRequest when the keyspace has durable writes
        disabled (there is no log to replay).

        Mutations for tables that no longer exist are skipped (Cassandra
        logs a warning and moves on).  Secondary indexes are rebuilt from
        the recovered data afterwards.
        """
        if self._commit_log is None:
            raise InvalidRequest(f"keyspace {self.name!r} has durable_writes disabled")
        replayed = 0
        with get_tracer().span("nosqldb.commitlog.replay", keyspace=self.name) as span:
            for table_name, key, encoded_row in self._commit_log.records():
                lowered = table_name.lower()
                table = self._tables.get(lowered)
                if table is None:
                    continue
                table.apply_replayed(key, encoded_row)
                replayed += 1
            for table in self._tables.values():
                table.rebuild_indexes()
            span.set("replayed", replayed)
        _M_REPLAYED.inc(replayed)
        return replayed

    def __repr__(self) -> str:
        return f"Keyspace({self.name!r}, tables={sorted(self._tables)})"
