"""A columnar NoSQL storage engine (Cassandra substitute).

Keyspaces hold column families; writes go commit log -> memtable ->
compressed SSTables with size-tiered compaction; secondary indexes are
maintained synchronously in write-through B-trees.  Clients drive it
through CQL sessions (:class:`Session`), exactly how the paper's system
drives Cassandra.
"""

from repro.nosqldb.columnfamily import Column, ColumnFamily, SecondaryIndex
from repro.nosqldb.commitlog import CommitLog
from repro.nosqldb.engine import NoSQLEngine
from repro.nosqldb.errors import AlreadyExists, CQLSyntaxError, InvalidRequest, NoSQLError
from repro.nosqldb.keyspace import Keyspace
from repro.nosqldb.memtable import Memtable
from repro.nosqldb.session import PreparedStatement, Session
from repro.nosqldb.sstable import SSTable
from repro.nosqldb.types import (
    BigIntType,
    BooleanType,
    CQLType,
    DoubleType,
    IntType,
    SetType,
    TextType,
    parse_type,
)

__all__ = [
    "AlreadyExists",
    "BigIntType",
    "BooleanType",
    "CQLSyntaxError",
    "CQLType",
    "Column",
    "ColumnFamily",
    "CommitLog",
    "DoubleType",
    "IntType",
    "InvalidRequest",
    "Keyspace",
    "Memtable",
    "NoSQLEngine",
    "NoSQLError",
    "PreparedStatement",
    "SSTable",
    "SecondaryIndex",
    "Session",
    "SetType",
    "TextType",
    "parse_type",
]
