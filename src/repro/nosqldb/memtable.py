"""Memtables: the in-memory write buffer of a column family.

Writes land here first (after the commit log) already encoded to their
storage representation, so insertion time includes the real serialisation
cost.  When the memtable exceeds its flush threshold the column family
freezes it into an SSTable.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

#: Per-entry bookkeeping overhead charged against the flush threshold.
ENTRY_OVERHEAD = 32


class Memtable:
    """Sorted-on-demand map of primary key -> encoded row."""

    __slots__ = ("_rows", "_bytes", "_tombstones")

    def __init__(self) -> None:
        self._rows: Dict[object, bytes] = {}
        self._tombstones: set = set()
        self._bytes = 0

    def put(self, key, row: bytes) -> None:
        rows = self._rows
        previous = rows.get(key)
        if previous is None:
            self._bytes += ENTRY_OVERHEAD + len(row)
        else:
            self._bytes += len(row) - len(previous)
        rows[key] = row
        if self._tombstones:
            self._tombstones.discard(key)

    def delete(self, key) -> None:
        previous = self._rows.pop(key, None)
        if previous is not None:
            self._bytes -= len(previous)
        self._tombstones.add(key)

    def get(self, key) -> Optional[bytes]:
        return self._rows.get(key)

    def is_deleted(self, key) -> bool:
        return key in self._tombstones

    def __contains__(self, key) -> bool:
        return key in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def approximate_bytes(self) -> int:
        return self._bytes

    @property
    def tombstones(self) -> frozenset:
        return frozenset(self._tombstones)

    def sorted_items(self) -> List[Tuple[object, bytes]]:
        return sorted(self._rows.items(), key=lambda item: item[0])

    def __iter__(self) -> Iterator[Tuple[object, bytes]]:
        return iter(self._rows.items())
