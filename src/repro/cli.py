"""Command-line interface: ``python -m repro <command>``.

Three commands cover the common workflows:

``generate``
    Write synthetic bike-feed documents (XML or JSON) to a directory —
    useful for feeding external tools or inspecting the feed shape.
``pipeline``
    Run the full paper pipeline on a generated feed: ETL → DWARF →
    storage under a chosen schema, then print cube statistics and a few
    sample queries.
``bench``
    Run the Table 4/5 matrix for chosen datasets/schemas and print the
    paper-style comparison tables.
``ingest``
    Run the incremental-maintenance loop on a dataset's feed: tail the
    document stream in micro-batches, append delta cubes, fold them with
    background merges, compact — then prove the merged cube is
    signature-identical to a cold rebuild over the whole feed.
``check``
    The static-analysis gate: the repo-specific AST lint pass and/or the
    cross-layer invariant suite (build a dataset's cube, store it under
    every schema, and run every structural checker over the results).
``stats``
    Run one instrumented workload (ETL -> build -> store -> stored
    queries) with telemetry force-enabled and print the merged span
    tree, the metrics table, per-operator timings, the query-history
    profiles, and any slow ops — or the same snapshot as JSON /
    Prometheus text via ``--format``.  ``--bundle FILE`` re-renders a
    saved debug bundle offline instead of running a workload.
``top``
    Run the same workload (or read a saved bundle) and print the top
    query fingerprints ranked by total time or p99 latency.
``debug-bundle``
    Run the workload and write a flight-recorder JSON artifact: metrics
    snapshot, merged span tree, slow-op log, query history, plan-cache
    entries, cube epoch rows, shard layout and every ``REPRO_*`` knob.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.bench.datasets import DATASETS_BY_NAME, current_scale
from repro.bench.reporting import format_table
from repro.bench.runner import DATASET_ORDER, PAPER_TABLE4_MB, PAPER_TABLE5_MS, run_matrix
from repro.mapping.registry import MAPPER_FACTORIES, make_mapper


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Efficient cube construction for smart city data (EDBT'16 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="write synthetic bike-feed documents")
    generate.add_argument("--days", type=int, default=1)
    generate.add_argument("--records", type=int, default=7358)
    generate.add_argument("--format", choices=("xml", "json"), default="xml")
    generate.add_argument("--output", type=Path, required=True, help="output directory")
    generate.add_argument("--seed", type=int, default=20160315)

    pipeline = commands.add_parser("pipeline", help="run feed -> cube -> store -> queries")
    pipeline.add_argument("--days", type=int, default=1)
    pipeline.add_argument("--records", type=int, default=7358)
    pipeline.add_argument(
        "--schema", choices=tuple(MAPPER_FACTORIES), default="NoSQL-DWARF"
    )
    pipeline.add_argument("--seed", type=int, default=20160315)

    bench = commands.add_parser("bench", help="run the Table 4/5 matrix")
    bench.add_argument(
        "--datasets",
        default="Day,Week",
        help=f"comma-separated subset of {','.join(DATASET_ORDER)}",
    )
    bench.add_argument(
        "--schemas",
        default=",".join(MAPPER_FACTORIES),
        help="comma-separated subset of the four schema names",
    )

    ingest = commands.add_parser(
        "ingest", help="run the incremental micro-batch maintenance loop"
    )
    ingest.add_argument(
        "--dataset", default="Day",
        help="dataset name, case-insensitive (default Day)",
    )
    ingest.add_argument(
        "--schema", choices=tuple(MAPPER_FACTORIES), default="NoSQL-DWARF",
        help="storage schema maintained by the loop",
    )
    ingest.add_argument(
        "--batch", type=int, default=None, metavar="DOCS",
        help="documents per micro-batch (default REPRO_INGEST_BATCH or 64)",
    )
    ingest.add_argument(
        "--merge-every", type=int, default=None, metavar="DELTAS",
        help="fold pending deltas after this many appends "
        "(default REPRO_MERGE_DELTAS or 4)",
    )
    ingest.add_argument(
        "--no-compact", action="store_true",
        help="leave tombstoned rows in place after the final merge",
    )

    check = commands.add_parser("check", help="run the lint + invariant gate")
    check.add_argument(
        "--lint",
        action="store_true",
        help="run the AST lint pass over src/repro",
    )
    check.add_argument(
        "--invariants",
        nargs="?",
        const="Month",
        default=None,
        metavar="DATASET",
        help="run the invariant suite on DATASET (default Month when the "
        "flag is given bare; plain `repro check` uses Day)",
    )
    check.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated lint rule ids to run (e.g. REPRO008,REPRO009);"
        " default: all; unknown ids exit 2",
    )
    check.add_argument(
        "--exclude-rules", default=None, metavar="IDS",
        help="comma-separated lint rule ids to skip",
    )
    check.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="lint findings as text (default), a JSON report, or a "
        "SARIF 2.1.0 document",
    )
    check.add_argument(
        "--out", type=Path, default=None,
        help="also write the --format payload to this file",
    )
    check.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="only fail on lint findings absent from this baseline file "
        "(see analysis-baseline.json); stale entries are reported",
    )
    check.add_argument(
        "--write-baseline", type=Path, default=None, metavar="FILE",
        help="write the current lint findings to FILE as a new baseline "
        "and exit 0",
    )

    stats = commands.add_parser(
        "stats", help="run an instrumented workload and print its telemetry"
    )
    stats.add_argument(
        "--dataset", default="Month",
        help="dataset name, case-insensitive (default Month)",
    )
    stats.add_argument(
        "--schema", choices=tuple(MAPPER_FACTORIES), default="NoSQL-DWARF",
        help="storage schema for the store/query phases",
    )
    stats.add_argument(
        "--format", choices=("text", "json", "prom"), default="text",
        help="text report, JSON snapshot, or Prometheus exposition",
    )
    stats.add_argument(
        "--out", type=Path, default=None,
        help="also write the --format payload to this file",
    )
    stats.add_argument(
        "--bundle", type=Path, default=None, metavar="FILE",
        help="re-render a saved debug bundle offline instead of "
        "running a workload",
    )

    top = commands.add_parser(
        "top", help="rank query fingerprints by total time or p99 latency"
    )
    top.add_argument(
        "--dataset", default="Month",
        help="dataset name, case-insensitive (default Month)",
    )
    top.add_argument(
        "--schema", choices=tuple(MAPPER_FACTORIES), default="NoSQL-DWARF",
        help="storage schema for the workload",
    )
    top.add_argument(
        "--by", choices=("total", "p99"), default="total",
        help="ranking key: total wall time (default) or p99 latency",
    )
    top.add_argument(
        "--limit", type=int, default=10, metavar="N",
        help="show at most N fingerprints (default 10)",
    )
    top.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="text table (default) or the ranked profiles as JSON",
    )
    top.add_argument(
        "--bundle", type=Path, default=None, metavar="FILE",
        help="rank a saved debug bundle's query history instead of "
        "running a workload",
    )

    debug_bundle = commands.add_parser(
        "debug-bundle", help="write a flight-recorder JSON debug bundle"
    )
    debug_bundle.add_argument(
        "--dataset", default="Month",
        help="dataset name, case-insensitive (default Month)",
    )
    debug_bundle.add_argument(
        "--schema", choices=tuple(MAPPER_FACTORIES), default="NoSQL-DWARF",
        help="storage schema for the workload",
    )
    debug_bundle.add_argument(
        "--out", type=Path, required=True,
        help="path for the bundle JSON artifact",
    )
    return parser


def _cmd_generate(args) -> int:
    from repro.smartcity.bikes import BikeFeedGenerator
    from repro.smartcity.city import CityModel

    feed = BikeFeedGenerator(CityModel(seed=args.seed))
    documents = feed.generate_documents(
        days=args.days, total_records=args.records, content_type=args.format
    )
    args.output.mkdir(parents=True, exist_ok=True)
    for document in documents:
        path = args.output / f"snapshot_{document.sequence:05d}.{args.format}"
        path.write_text(document.content, encoding="utf-8")
    batch = documents.batch()
    print(
        f"wrote {len(documents)} {args.format} documents "
        f"({batch.size_mb:.2f} MB, {args.records} records) to {args.output}"
    )
    return 0


def _cmd_pipeline(args) -> int:
    from repro.core.pipeline import CubeConstructionPipeline
    from repro.smartcity.bikes import BikeFeedGenerator, bikes_pipeline
    from repro.smartcity.city import CityModel

    feed = BikeFeedGenerator(CityModel(seed=args.seed))
    documents = feed.generate_documents(days=args.days, total_records=args.records)
    mapper = make_mapper(args.schema)
    pipeline = CubeConstructionPipeline(bikes_pipeline(), mapper)
    report = pipeline.run(documents)
    print(
        f"{report.n_documents} documents -> {report.n_facts} facts -> "
        f"DWARF {report.n_nodes} nodes / {report.n_cells} cells -> "
        f"{args.schema} schema_id={report.schema_id} "
        f"({mapper.size_bytes() / 1048576:.2f} MB)"
    )
    cube = pipeline.reload(report.schema_id)
    print(f"grand total:        {cube.total()}")
    for dimension in ("daypart", "district", "status"):
        member = cube.members(dimension)[0]
        print(f"{dimension} = {member!r}: {cube.value(**{dimension: member})}")
    return 0


def _cmd_bench(args) -> int:
    datasets = [name.strip() for name in args.datasets.split(",") if name.strip()]
    schemas = [name.strip() for name in args.schemas.split(",") if name.strip()]
    for name in datasets:
        if name not in DATASETS_BY_NAME:
            print(f"unknown dataset {name!r}; choose from {DATASET_ORDER}", file=sys.stderr)
            return 2
    for name in schemas:
        if name not in MAPPER_FACTORIES:
            print(f"unknown schema {name!r}; choose from {tuple(MAPPER_FACTORIES)}",
                  file=sys.stderr)
            return 2

    results = run_matrix(datasets=datasets, schemas=schemas)
    size_rows = {}
    time_rows = {}
    for schema in schemas:
        paper4 = dict(zip(DATASET_ORDER, PAPER_TABLE4_MB[schema]))
        paper5 = dict(zip(DATASET_ORDER, PAPER_TABLE5_MS[schema]))
        size_rows[f"{schema} (paper)"] = [paper4[d] for d in datasets]
        time_rows[f"{schema} (paper)"] = [paper5[d] for d in datasets]
        cells = [r for r in results if r.schema == schema]
        size_rows[f"{schema} (measured)"] = [
            round(next(c.size_mb for c in cells if c.dataset == d), 2) for d in datasets
        ]
        time_rows[f"{schema} (measured)"] = [
            round(next(c.insert_ms for c in cells if c.dataset == d)) for d in datasets
        ]
    note = f"REPRO_SCALE={current_scale():g}; paper values are full-scale"
    print(format_table("Table 4: size (MB) to store a DWARF cube", datasets, size_rows, note))
    print()
    print(format_table("Table 5: time (ms) to insert a DWARF cube", datasets, time_rows, note))
    return 0


def _print_report(report) -> bool:
    print(report.summary())
    for line in report.format_lines():
        print(f"  {line}")
    return report.ok


def _sample_query_vectors(cube, limit: int = 8):
    """A few point/ALL coordinate vectors covering every dimension."""
    from repro.dwarf.cell import ALL

    names = [d.name for d in cube.schema.dimensions]
    vectors = [tuple(ALL for _ in names)]
    for index, name in enumerate(names):
        members = cube.members(name)
        if members:
            vector = [ALL] * len(names)
            vector[index] = members[0]
            vectors.append(tuple(vector))
    point = tuple(
        (cube.members(name) or [ALL])[0] for name in names
    )
    vectors.append(point)
    return vectors[:limit]


def _live_cache_counts():
    """Current process-wide cache counters from the metrics registry."""
    from repro.telemetry import get_registry

    registry = get_registry()
    return {
        (kind, metric): registry.value(f"nosqldb_cache_{metric}_total", kind)
        for kind in ("row", "block")
        for metric in ("hits", "misses")
    }


def _warm_query_pass(mapper, name: str, cube) -> bool:
    """Run sample stored queries twice and surface the cache counters.

    The second (warm) pass must return the same answers as the first and
    as the in-memory cube.  Cache traffic is read as *live* deltas from
    the telemetry registry (``nosqldb_cache_*_total``) — the same
    counters the caches increment on the hot path — so a cache bug that
    silently stops caching (hit rate 0) is visible in the gate logs.
    """
    from repro.dwarf.cell import ALL
    from repro.mapping.stored_query import stored_point_query

    schema_id = mapper.store(cube, is_cube=True)
    names = [d.name for d in cube.schema.dimensions]
    vectors = _sample_query_vectors(cube)
    expected = [
        cube.value(**{n: m for n, m in zip(names, vector) if m is not ALL})
        for vector in vectors
    ]
    before = _live_cache_counts()
    cold = [stored_point_query(mapper, schema_id, vector) for vector in vectors]
    warm = [stored_point_query(mapper, schema_id, vector) for vector in vectors]
    after = _live_cache_counts()
    ok = cold == expected and warm == expected
    status = "answers agree" if ok else f"ANSWERS DIVERGE (cube={expected}, cold={cold}, warm={warm})"
    print(f"stored-query warm pass[{name}]: {len(vectors)} queries x2, {status}")
    if hasattr(mapper, "keyspace_name"):
        for kind in ("row", "block"):
            hits = after[(kind, "hits")] - before[(kind, "hits")]
            misses = after[(kind, "misses")] - before[(kind, "misses")]
            requests = hits + misses
            rate = hits / requests if requests else 0.0
            print(
                f"  cache[{name}/{kind}]: {hits:.0f}/{requests:.0f} "
                f"hit(s) ({rate:.0%}, live registry delta)"
            )
    return ok


def _count_ingest_spans(spans) -> int:
    """Total count of ``ingest.*`` spans in a merged span forest."""
    total = 0
    for node in spans:
        if node["name"].startswith("ingest."):
            total += node["count"]
        total += _count_ingest_spans(node.get("children", ()))
    return total


def _cmd_ingest(args) -> int:
    from repro.analysis.dwarf_check import structural_signature
    from repro.bench.datasets import load_dataset
    from repro.dwarf.builder import build_cube
    from repro.etl.stream import FeedTailer, resolve_ingest_batch
    from repro.mapping.incremental import CubeMaintainer, resolve_merge_deltas
    from repro.smartcity.bikes import bikes_pipeline
    from repro.telemetry import (
        enable_metrics,
        enable_query_log,
        enable_tracing,
        get_query_log,
        get_registry,
        get_tracer,
        snapshot,
    )

    dataset = _resolve_dataset(args.dataset)
    if dataset is None:
        return 2

    enable_metrics(True)
    enable_tracing(True)
    enable_query_log(True)
    registry, tracer = get_registry(), get_tracer()
    tracer.reset()
    get_query_log().reset()

    bundle = load_dataset(dataset)
    batch_size = resolve_ingest_batch(args.batch)
    merge_every = resolve_merge_deltas(args.merge_every)
    pipeline = bikes_pipeline()
    mapper = make_mapper(args.schema)
    tailer = FeedTailer(bundle.documents, batch_size=batch_size)

    first = tailer.poll()
    if first is None:
        print(f"dataset {dataset} has no documents", file=sys.stderr)
        return 2
    # Not a file handle: CubeMaintainer.open() opens a maintenance epoch.
    maintainer = CubeMaintainer.open(  # repro: noqa[REPRO009]
        mapper, build_cube(pipeline.extract(first.documents))
    )
    n_documents, appends, merges = len(first), 0, 0
    while True:
        batch = tailer.poll()
        if batch is None:
            break
        maintainer.append(pipeline.extract(batch.documents))
        appends += 1
        n_documents += len(batch)
        if maintainer.pending_deltas >= merge_every:
            # Fold in the background — the epoch row keeps foreground
            # queries on the pre-merge overlay until the flip publishes.
            maintainer.merge_async()
            maintainer.wait()
            merges += 1
    if maintainer.pending_deltas:
        maintainer.merge()
        merges += 1
    reclaimed = 0 if args.no_compact else maintainer.compact()

    view = maintainer.view()
    merged = mapper.load(view.base_id)
    signatures_match = structural_signature(merged) == structural_signature(bundle.cube)
    ingest_spans = _count_ingest_spans(snapshot(registry, tracer)["spans"])

    print(
        f"dataset {dataset}: {n_documents} documents tailed in "
        f"{appends + 1} micro-batches of <= {batch_size} "
        f"(watermark {tailer.watermark})"
    )
    print(
        f"{args.schema} logical_id={maintainer.logical_id}: {appends} delta "
        f"append(s), {merges} merge(s) (cadence {merge_every}), final epoch "
        f"{view.epoch}, {reclaimed} tombstoned row(s) compacted"
    )
    print(
        f"merged cube over {bundle.n_tuples} facts: signature "
        + ("IDENTICAL to cold rebuild" if signatures_match
           else "DIVERGES from cold rebuild")
    )
    print(f"ingest.* spans recorded: {ingest_spans}")
    print(f"query-log records: {len(get_query_log())}")
    ok = signatures_match and ingest_spans > 0
    print("ingest: OK" if ok else "ingest: FAILED")
    return 0 if ok else 1


def _check_invariants(dataset: str) -> bool:
    """Run every structural checker over freshly built + stored cubes."""
    from repro.analysis.dwarf_check import check_build_equivalence, dwarf_check
    from repro.analysis.mapping_check import mapping_check
    from repro.analysis.runner import CheckRunner
    from repro.bench.datasets import load_dataset
    from repro.dwarf.parallel import ParallelDwarfBuilder
    from repro.smartcity.bikes import bikes_pipeline
    from repro.telemetry import enable_metrics

    # The warm-query pass reads cache traffic straight from the live
    # registry, so the gate always runs with metrics on.
    enable_metrics(True)

    if dataset not in DATASETS_BY_NAME:
        print(f"unknown dataset {dataset!r}; choose from {DATASET_ORDER}", file=sys.stderr)
        return False

    ok = True
    bundle = load_dataset(dataset)
    print(f"dataset {dataset}: {bundle.n_tuples} tuples (REPRO_SCALE={current_scale():g})")
    ok &= _print_report(dwarf_check(bundle.cube))

    facts = bikes_pipeline().extract(bundle.documents)
    parallel = ParallelDwarfBuilder(bundle.cube.schema, mode="thread").build(facts)
    ok &= _print_report(check_build_equivalence(bundle.cube, parallel))

    # The incremental-maintenance invariant: folding micro-batch deltas
    # must equal a cold rebuild, structurally and in every answer.
    from repro.analysis.delta_check import delta_check

    rows = list(facts)
    step = max(1, (len(rows) + 3) // 4)
    partitions = [rows[start : start + step] for start in range(0, len(rows), step)]
    ok &= _print_report(delta_check(bundle.cube.schema, partitions))

    runner = CheckRunner()
    for name in MAPPER_FACTORIES:
        mapper = make_mapper(name)
        ok &= _print_report(mapping_check(mapper, bundle.cube))
        ok &= _warm_query_pass(mapper, name, bundle.cube)
        if hasattr(mapper, "database_name"):
            tables = mapper.engine.database(mapper.database_name).tables
        else:
            tables = mapper.engine.keyspace(mapper.keyspace_name).tables
        ok &= _print_report(
            runner.check_all(tables, name=f"storage[{name}]")
        )
    return ok


def _operator_stat_lines(mapper):
    """Per-operator counters from every plan the session has cached."""
    lines = []
    cache = getattr(getattr(mapper, "session", None), "plan_cache", None)
    if cache is None:
        return lines
    for _key, plan in cache.entries():
        stats = getattr(plan, "operator_stats", None)
        if stats is None:
            continue
        for op in stats():
            if not op.calls:
                continue
            where = f" on {op.table}" if op.table else ""
            detail = f" [{op.detail}]" if op.detail else ""
            pushed = ""
            if op.blocks_skipped or op.rows_pruned:
                pushed = (
                    f" blocks_skipped={op.blocks_skipped}"
                    f" rows_pruned={op.rows_pruned}"
                )
            lines.append(
                f"  {op.node}{where}{detail}: calls={op.calls} "
                f"rows_out={op.rows_out} wall={op.seconds * 1000:.3f}ms{pushed}"
            )
    return lines


def _storage_stat_lines(mapper):
    """Per-column-family block-format stats for NoSQL-backed mappers."""
    lines = []
    session = getattr(mapper, "session", None)
    keyspace_name = getattr(mapper, "keyspace_name", None)
    if session is None or keyspace_name is None:
        return lines
    for table in session.engine.keyspace(keyspace_name).tables:
        stats = table.stats()
        lines.append(
            f"  {table.name}: block_format={stats.block_format} "
            f"sstables={stats.sstables} columnar_blocks={stats.columnar_blocks} "
            f"blocks_skipped={stats.blocks_skipped} "
            f"dict_hit_ratio={stats.dict_hit_ratio:.2f}"
        )
    return lines


def _resolve_dataset(raw: str) -> Optional[str]:
    """Canonical dataset name (case-insensitive), or None after an error."""
    lookup = {name.lower(): name for name in DATASETS_BY_NAME}
    dataset = lookup.get(raw.lower())
    if dataset is None:
        print(f"unknown dataset {raw!r}; choose from {DATASET_ORDER}",
              file=sys.stderr)
    return dataset


def _run_workload(dataset: str, schema: str):
    """The instrumented observability workload shared by ``stats``,
    ``top`` and ``debug-bundle``: ETL -> build -> store -> stored
    queries x2, with metrics, tracing and the query log force-enabled
    (and reset, so the report covers exactly this run).

    Returns ``(bundle, mapper, n_queries, ok)`` where ``ok`` means every
    stored answer matched the in-memory cube, cold and warm.
    """
    from repro.bench.datasets import clear_cache, load_dataset
    from repro.dwarf.cell import ALL
    from repro.mapping.stored_query import stored_point_query
    from repro.telemetry import (
        enable_metrics,
        enable_query_log,
        enable_tracing,
        get_query_log,
        get_registry,
        get_tracer,
    )

    enable_metrics(True)
    enable_tracing(True)
    enable_query_log(True)
    registry, tracer = get_registry(), get_tracer()
    registry.reset()
    tracer.reset()
    get_query_log().reset()
    clear_cache()  # force a real ETL + build pass under the tracer

    bundle = load_dataset(dataset)
    mapper = make_mapper(schema)
    with tracer.span("mapper.store", schema=mapper.name):
        schema_id = mapper.store(bundle.cube, probe_size=False)

    names = [d.name for d in bundle.cube.schema.dimensions]
    vectors = _sample_query_vectors(bundle.cube)
    expected = [
        bundle.cube.value(**{n: m for n, m in zip(names, v) if m is not ALL})
        for v in vectors
    ]
    cold = [stored_point_query(mapper, schema_id, v) for v in vectors]
    warm = [stored_point_query(mapper, schema_id, v) for v in vectors]
    ok = cold == expected and warm == expected
    return bundle, mapper, len(vectors), ok


def _query_log_lines(profiles, limit: int = 10):
    """Text lines for the top fingerprint profiles, total-time order."""
    lines = []
    for p in profiles[:limit]:
        lines.append(
            f"  {p['dialect']:<6} n={p['count']:<4} "
            f"total={p['total_s'] * 1000:8.1f}ms "
            f"p50={p['p50_s'] * 1000:7.2f}ms p99={p['p99_s'] * 1000:7.2f}ms "
            f"rows={p['rows']:<6} {p['fingerprint'][:72]}"
        )
    return lines


def _plan_cache_rows(mapper):
    """Serialized plan-cache entries (key + EXPLAIN rows) for the bundle."""
    rows = []
    cache = getattr(getattr(mapper, "session", None), "plan_cache", None)
    if cache is None:
        return rows
    for key, entry in cache.entries():
        # AnalyzedStatement wraps its SELECT plan; fused multi-get plans
        # and UNPLANNABLE sentinels have no EXPLAIN rendering.
        plan = getattr(entry, "plan", entry)
        explain = getattr(plan, "explain", None)
        rows.append(
            {
                "key": list(key) if isinstance(key, tuple) else [key],
                "plan": explain() if callable(explain) else None,
            }
        )
    return rows


def _epoch_rows(mapper):
    """Every row of the mapper's cube-epoch table (empty when absent)."""
    table = getattr(mapper, "epoch_table", None)
    session = getattr(mapper, "session", None)
    if table is None or session is None:
        return []
    try:
        result = session.execute(f"SELECT * FROM {table}")
    except Exception:  # epoch table never installed
        return []
    return [dict(row) for row in result] if result is not None else []


def _shard_layout(mapper):
    """Configured shard fanout plus the per-column-family layout."""
    from repro.nosqldb.sharding import resolve_shards

    layout = {"configured": resolve_shards()}
    session = getattr(mapper, "session", None)
    keyspace = getattr(mapper, "keyspace_name", None)
    if session is not None and keyspace is not None:
        layout["tables"] = {
            table.name: getattr(table, "shard_count", 1)
            for table in session.engine.keyspace(keyspace).tables
        }
    return layout


def _collect_bundle(mapper):
    """Assemble a validated debug bundle from the live telemetry state."""
    from repro.telemetry import (
        build_bundle,
        get_query_log,
        get_registry,
        get_tracer,
        validate_bundle,
    )

    bundle = build_bundle(
        registry=get_registry(),
        tracer=get_tracer(),
        query_log=get_query_log(),
        plan_cache=_plan_cache_rows(mapper),
        epochs=_epoch_rows(mapper),
        shards=_shard_layout(mapper),
    )
    validate_bundle(bundle)
    return bundle


def _load_bundle(path: Path):
    """Read + validate a bundle file; None (after an error) on failure."""
    from repro.telemetry import from_bundle

    try:
        return from_bundle(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"cannot load debug bundle {path}: {exc}", file=sys.stderr)
        return None


def _cmd_stats(args) -> int:
    from repro.telemetry import (
        get_query_log,
        get_registry,
        get_tracer,
        render_metrics_table,
        render_span_tree,
        snapshot,
        to_json,
        to_prometheus,
    )

    if args.bundle is not None:
        # Offline re-render: no workload, no engines — just the artifact.
        bundle = _load_bundle(args.bundle)
        if bundle is None:
            return 2
        snap = bundle["telemetry"]
        profiles = bundle["query_log"]["profiles"]
        mapper = None
        ok = True
        header = (
            f"debug bundle {args.bundle} "
            f"(schema_version {bundle['schema_version']}, "
            f"{len(bundle['query_log']['records'])} query record(s)), "
            "offline re-render"
        )
    else:
        dataset = _resolve_dataset(args.dataset)
        if dataset is None:
            return 2
        data, mapper, n_queries, ok = _run_workload(dataset, args.schema)
        snap = snapshot(get_registry(), get_tracer())
        profiles = get_query_log().profiles()
        header = (
            f"dataset {dataset}: {data.n_tuples} tuples "
            f"(REPRO_SCALE={current_scale():g}), schema {mapper.name}, "
            f"{n_queries} stored queries x2, "
            f"{'answers agree' if ok else 'ANSWERS DIVERGE'}"
        )

    if args.format == "json":
        payload = to_json(snap)
    elif args.format == "prom":
        payload = to_prometheus(snap)
    else:
        sections = [
            header,
            "",
            "spans",
            render_span_tree(snap["spans"]) or "  (none)",
            "",
            "operators",
        ]
        sections.extend(
            (_operator_stat_lines(mapper) if mapper is not None else [])
            or ["  (none)"]
        )
        storage = _storage_stat_lines(mapper) if mapper is not None else []
        if storage:
            sections += ["", "storage"] + storage
        sections += ["", "metrics", render_metrics_table(snap)]
        sections += ["", "query log"]
        sections.extend(_query_log_lines(profiles) or ["  (none)"])
        dropped = snap.get("slow_ops_dropped", 0)
        sections += ["", f"slow ops ({dropped} dropped)"]
        if snap["slow_ops"]:
            sections.extend(
                f"  {op['name']}: {op['wall_ms']:.1f} ms {op.get('attrs', {})}"
                for op in snap["slow_ops"]
            )
        else:
            sections.append("  (none)")
        payload = "\n".join(sections)

    if args.out is not None:
        args.out.write_text(payload + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    if args.format != "text" or args.out is None:
        print(payload)
    return 0 if ok else 1


def _cmd_top(args) -> int:
    from repro.telemetry import get_query_log

    if args.bundle is not None:
        bundle = _load_bundle(args.bundle)
        if bundle is None:
            return 2
        profiles = bundle["query_log"]["profiles"]
        source = f"debug bundle {args.bundle}"
        ok = True
    else:
        dataset = _resolve_dataset(args.dataset)
        if dataset is None:
            return 2
        _, _, _, ok = _run_workload(dataset, args.schema)
        profiles = get_query_log().profiles()
        source = f"dataset {dataset} ({args.schema})"

    key = "total_s" if args.by == "total" else "p99_s"
    ranked = sorted(profiles, key=lambda p: p[key], reverse=True)[: args.limit]
    if args.format == "json":
        print(json.dumps(ranked, indent=2))
    else:
        print(
            f"top {len(ranked)} of {len(profiles)} fingerprint(s) "
            f"by {args.by}, {source}"
        )
        for line in _query_log_lines(ranked, limit=len(ranked)):
            print(line)
    return 0 if ok else 1


def _cmd_debug_bundle(args) -> int:
    from repro.telemetry import bundle_to_json

    dataset = _resolve_dataset(args.dataset)
    if dataset is None:
        return 2
    _, mapper, _, ok = _run_workload(dataset, args.schema)
    bundle = _collect_bundle(mapper)
    args.out.write_text(bundle_to_json(bundle) + "\n", encoding="utf-8")
    print(
        f"wrote {args.out} (schema_version {bundle['schema_version']}, "
        f"{len(bundle['query_log']['records'])} query record(s), "
        f"{len(bundle['plan_cache'])} cached plan(s), "
        f"{len(bundle['epochs'])} epoch row(s))"
    )
    return 0 if ok else 1


def _split_ids(raw: Optional[str]) -> Optional[list]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def _lint_payload(args, report, new_ids) -> Optional[str]:
    """The ``--format`` payload for the lint report (None for text)."""
    if args.format == "sarif":
        from repro.analysis.sarif import sarif_dumps

        return sarif_dumps(report, new_ids).rstrip("\n")
    if args.format == "json":
        violations = []
        for violation in report.violations:
            entry = dict(violation._asdict())
            if new_ids is not None:
                entry["new"] = id(violation) in new_ids
            violations.append(entry)
        return json.dumps(
            {
                "name": report.name,
                "n_checks": report.n_checks,
                "ok": report.ok,
                "violations": violations,
            },
            indent=2,
        )
    return None


def _cmd_check(args) -> int:
    from repro.analysis.lint import run_lint

    # Plain `repro check` runs both passes; each flag narrows to one
    # (giving both flags is the explicit spelling of the default).
    run_lint_pass = args.lint or args.invariants is None
    dataset = args.invariants
    if dataset is None and not args.lint:
        dataset = "Day"

    ok = True
    if run_lint_pass:
        try:
            report = run_lint(rules=_split_ids(args.rules),
                              exclude_rules=_split_ids(args.exclude_rules))
        except ValueError as exc:
            print(f"check: {exc}", file=sys.stderr)
            return 2
        if args.write_baseline is not None:
            from repro.analysis.baseline import write_baseline

            write_baseline(args.write_baseline, report)
            print(f"wrote baseline {args.write_baseline} "
                  f"({len(report.violations)} finding(s))")
        new_ids = None
        if args.baseline is not None:
            from repro.analysis.baseline import BaselineError, apply_baseline, load_baseline

            try:
                baseline = load_baseline(args.baseline)
            except BaselineError as exc:
                print(f"check: {exc}", file=sys.stderr)
                return 2
            result = apply_baseline(report, baseline)
            new_ids = {id(v) for v in result.new}
            ok &= not result.new
            print(f"{report.summary()} "
                  f"[baseline: {len(result.new)} new, "
                  f"{len(result.known)} known, {len(result.stale)} stale]")
            for violation in result.new:
                print(f"  NEW {violation.format()}")
            for entry in result.stale:
                print(f"  stale baseline entry: [{entry['rule']}] "
                      f"{entry['path']}: {entry['message']}")
        else:
            ok &= report.ok
            if args.format == "text":
                _print_report(report)
        payload = _lint_payload(args, report, new_ids)
        if payload is not None:
            if args.out is not None:
                args.out.write_text(payload + "\n", encoding="utf-8")
                print(f"wrote {args.out}")
            else:
                print(payload)
        elif args.out is not None:
            args.out.write_text(
                "\n".join([report.summary()] + report.format_lines()) + "\n",
                encoding="utf-8")
            print(f"wrote {args.out}")
    if dataset is not None:
        ok &= _check_invariants(dataset)
    print("check: OK" if ok else "check: FAILED")
    return 0 if ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "generate": _cmd_generate,
        "pipeline": _cmd_pipeline,
        "bench": _cmd_bench,
        "ingest": _cmd_ingest,
        "check": _cmd_check,
        "stats": _cmd_stats,
        "top": _cmd_top,
        "debug-bundle": _cmd_debug_bundle,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
