"""An in-memory B-tree with page encoding and realistic maintenance costs.

Used as:

* the clustered primary index of the relational engine (InnoDB-style:
  rows live in the leaf pages, pages are encoded lazily on flush — the
  buffer-pool model);
* the secondary indexes of both engines.  The NoSQL engine opens its
  secondary indexes with ``write_through=True``: every insert re-encodes
  the touched leaf page immediately, modelling the synchronous index
  update path that makes Cassandra secondary indexes expensive — the
  effect behind the paper's NoSQL-Min insertion times (Table 5).

Keys must be mutually comparable (the engines compose homogeneous key
tuples).  Keys are unique; writing an existing key overwrites its value.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, NamedTuple, Optional, Tuple

from repro.storage.encoding import (
    encode_bool,
    encode_bytes,
    encode_float,
    encode_text,
)
from repro.storage.varint import encode_varint
from repro.telemetry import get_registry

_REGISTRY = get_registry()
_M_SPLITS = _REGISTRY.counter(
    "btree_page_splits_total", "B-tree page splits", labels=("kind",)
)
_M_PAGES = _REGISTRY.counter(
    "btree_pages_allocated_total", "B-tree pages allocated", labels=("kind",)
)
_M_SPLITS_LEAF = _M_SPLITS.labels("leaf")
_M_SPLITS_INTERNAL = _M_SPLITS.labels("internal")
_M_PAGES_LEAF = _M_PAGES.labels("leaf")
_M_PAGES_INTERNAL = _M_PAGES.labels("internal")

#: Maximum entries per page before a split (both leaf and internal).
DEFAULT_PAGE_CAPACITY = 64

#: Fixed per-page header: page id, type tag, entry count, next-page pointer.
PAGE_HEADER_BYTES = 16


def encode_key(key) -> bytes:
    """Tagged, self-describing encoding for index keys.

    Raises TypeError for key types no engine produces.
    """
    if key is None:
        return b"\x00"
    if isinstance(key, bool):  # must precede int
        return b"\x04" + encode_bool(key)
    if isinstance(key, int):
        return b"\x01" + encode_varint(key)
    if isinstance(key, str):
        return b"\x02" + encode_text(key)
    if isinstance(key, float):
        return b"\x03" + encode_float(key)
    if isinstance(key, bytes):
        return b"\x06" + encode_bytes(key)
    if isinstance(key, tuple):
        parts = [b"\x05", encode_varint(len(key))]
        parts.extend(encode_key(item) for item in key)
        return b"".join(parts)
    raise TypeError(f"unsupported index key type: {type(key).__name__}")


def decode_key(buffer, offset: int = 0) -> Tuple[object, int]:
    """Inverse of :func:`encode_key`; returns ``(key, end_offset)``.

    Raises ValueError for a corrupt key tag.
    """
    from repro.storage.encoding import (
        decode_bool,
        decode_bytes,
        decode_float,
        decode_text,
    )
    from repro.storage.varint import decode_varint

    tag = buffer[offset]
    offset += 1
    if tag == 0x00:
        return None, offset
    if tag == 0x01:
        return decode_varint(buffer, offset)
    if tag == 0x02:
        return decode_text(buffer, offset)
    if tag == 0x03:
        return decode_float(buffer, offset)
    if tag == 0x04:
        return decode_bool(buffer, offset)
    if tag == 0x06:
        return decode_bytes(buffer, offset)
    if tag == 0x05:
        count, offset = decode_varint(buffer, offset)
        items = []
        for _ in range(count):
            item, offset = decode_key(buffer, offset)
            items.append(item)
        return tuple(items), offset
    raise ValueError(f"corrupt key tag 0x{tag:02x}")


class _Leaf:
    __slots__ = ("keys", "values", "next", "encoded", "dirty")

    def __init__(self) -> None:
        self.keys: List = []
        self.values: List[Optional[bytes]] = []
        self.next: Optional["_Leaf"] = None
        self.encoded: bytes = b""
        self.dirty = True

    def encode(self) -> bytes:
        parts = [encode_varint(len(self.keys))]
        for key, value in zip(self.keys, self.values):
            parts.append(encode_key(key))
            parts.append(encode_bytes(value) if value is not None else b"\x00")
        self.encoded = b"".join(parts)
        self.dirty = False
        return self.encoded


class BTreeStats(NamedTuple):
    """A read-only structural summary of one :class:`BTree`.

    Gathered without flushing or encoding anything, so probing stats never
    changes what the size accounting observes afterwards.
    """

    entries: int
    depth: int           # 1 for a single-leaf tree
    leaf_pages: int
    internal_pages: int
    page_capacity: int

    @property
    def fill_ratio(self) -> float:
        """Mean entries per leaf page relative to the split capacity."""
        if not self.leaf_pages:
            return 0.0
        return self.entries / (self.leaf_pages * self.page_capacity)


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # children[i] covers keys < keys[i]; children[-1] covers the rest.
        self.keys: List = []
        self.children: List = []


class BTree:
    """B-tree map with byte-accurate page accounting.

    Parameters
    ----------
    page_capacity:
        Entries per page before splitting.
    write_through:
        Re-encode a leaf page on *every* mutation (synchronous index
        maintenance).  When False, pages are encoded lazily by
        :meth:`flush` (buffer-pool behaviour).
    """

    def __init__(
        self,
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
        write_through: bool = False,
    ) -> None:
        if page_capacity < 4:
            raise ValueError("page_capacity must be >= 4")
        self._capacity = page_capacity
        self._write_through = write_through
        self._root = _Leaf()
        self._first_leaf: _Leaf = self._root
        self._n_entries = 0
        self._n_leaves = 1
        self._n_internal = 0
        _M_PAGES_LEAF.inc()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, key, value: Optional[bytes] = None) -> None:
        """Insert or overwrite ``key``; ``value`` is an opaque payload."""
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self._n_internal += 1
            _M_PAGES_INTERNAL.inc()

    def _insert(self, node, key, value):
        if isinstance(node, _Leaf):
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
            else:
                node.keys.insert(index, key)
                node.values.insert(index, value)
                self._n_entries += 1
            node.dirty = True
            if len(node.keys) > self._capacity:
                split = self._split_leaf(node)
            else:
                split = None
            if self._write_through:
                node.encode()
                if split is not None:
                    split[1].encode()
            return split
        index = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.children) > self._capacity:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf) -> Tuple[object, _Leaf]:
        middle = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        right.next = leaf.next
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        leaf.next = right
        leaf.dirty = True
        right.dirty = True
        self._n_leaves += 1
        _M_SPLITS_LEAF.inc()
        _M_PAGES_LEAF.inc()
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> Tuple[object, _Internal]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Internal()
        right.keys = node.keys[middle + 1:]
        right.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        self._n_internal += 1
        _M_SPLITS_INTERNAL.inc()
        _M_PAGES_INTERNAL.inc()
        return separator, right

    def delete(self, key) -> bool:
        """Remove ``key``; returns True when it was present.

        Pages are allowed to underflow (no rebalancing) — deletions are
        rare in this workload and InnoDB likewise leaves sparse pages
        behind until OPTIMIZE.
        """
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        del leaf.keys[index]
        del leaf.values[index]
        leaf.dirty = True
        if self._write_through:
            leaf.encode()
        self._n_entries -= 1
        return True

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _find_leaf(self, key) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[bisect.bisect_right(node.keys, key)]
        return node

    def get(self, key, default=None):
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def __contains__(self, key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def items(self, lo=None, hi=None) -> Iterator[Tuple[object, Optional[bytes]]]:
        """Yield ``(key, value)`` in key order, optionally within [lo, hi]."""
        if lo is None:
            leaf: Optional[_Leaf] = self._first_leaf
            index = 0
        else:
            leaf = self._find_leaf(lo)
            index = bisect.bisect_left(leaf.keys, lo)
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if hi is not None and key > hi:
                    return
                yield key, leaf.values[index]
                index += 1
            leaf = leaf.next
            index = 0

    def keys(self, lo=None, hi=None) -> Iterator:
        return (key for key, _ in self.items(lo, hi))

    def __len__(self) -> int:
        return self._n_entries

    # ------------------------------------------------------------------
    # storage accounting
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Encode every dirty leaf page (buffer-pool flush)."""
        leaf: Optional[_Leaf] = self._first_leaf
        while leaf is not None:
            if leaf.dirty:
                leaf.encode()
            leaf = leaf.next

    @property
    def size_bytes(self) -> int:
        """On-disk size: encoded leaf pages + headers + internal pages.

        Internal pages are charged one encoded separator key per child
        plus the page header.
        """
        self.flush()
        total = 0
        leaf: Optional[_Leaf] = self._first_leaf
        while leaf is not None:
            total += PAGE_HEADER_BYTES + len(leaf.encoded)
            leaf = leaf.next
        total += self._internal_bytes(self._root)
        return total

    def _internal_bytes(self, node) -> int:
        if isinstance(node, _Leaf):
            return 0
        total = PAGE_HEADER_BYTES
        for key in node.keys:
            total += len(encode_key(key)) + 8  # separator + child pointer
        total += 8  # last child pointer
        for child in node.children:
            total += self._internal_bytes(child)
        return total

    @property
    def page_counts(self) -> Tuple[int, int]:
        """``(leaf_pages, internal_pages)`` currently allocated."""
        return self._n_leaves, self._n_internal

    def stats(self) -> BTreeStats:
        """A read-only :class:`BTreeStats` snapshot (no flush, no encode)."""
        depth = 1
        node = self._root
        while isinstance(node, _Internal):
            depth += 1
            node = node.children[0]
        return BTreeStats(
            entries=self._n_entries,
            depth=depth,
            leaf_pages=self._n_leaves,
            internal_pages=self._n_internal,
            page_capacity=self._capacity,
        )

    def __repr__(self) -> str:
        return (
            f"BTree(entries={self._n_entries}, depth={self.stats().depth}, "
            f"pages={self._n_leaves}+{self._n_internal})"
        )
