"""Low-level storage primitives shared by both database substrates.

The columnar NoSQL engine (:mod:`repro.nosqldb`) and the relational engine
(:mod:`repro.sqldb`) both sit on the same byte-level toolkit: variable
length integer coding, length-prefixed strings, and a B-tree with
write-through page encoding so that index maintenance has a realistic
cost and a measurable on-disk size.
"""

from repro.storage.varint import decode_varint, encode_varint, zigzag_decode, zigzag_encode
from repro.storage.encoding import (
    decode_bool,
    decode_bytes,
    decode_float,
    decode_text,
    encode_bool,
    encode_bytes,
    encode_float,
    encode_text,
)
from repro.storage.btree import BTree

__all__ = [
    "BTree",
    "decode_bool",
    "decode_bytes",
    "decode_float",
    "decode_text",
    "decode_varint",
    "encode_bool",
    "encode_bytes",
    "encode_float",
    "encode_text",
    "encode_varint",
    "zigzag_decode",
    "zigzag_encode",
]
