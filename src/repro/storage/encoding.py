"""Scalar byte encodings shared by the two storage engines.

Everything is length- or tag-prefixed so rows can be decoded without a
schema-side size table; all multi-byte numbers are little-endian.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.storage.varint import decode_varint, encode_varint

_FLOAT = struct.Struct("<d")


def encode_text(value: str) -> bytes:
    """UTF-8 with a varint byte-length prefix."""
    raw = value.encode("utf-8")
    return encode_varint(len(raw)) + raw


def decode_text(buffer, offset: int = 0) -> Tuple[str, int]:
    length, offset = decode_varint(buffer, offset)
    end = offset + length
    return bytes(buffer[offset:end]).decode("utf-8"), end


def encode_bytes(value: bytes) -> bytes:
    return encode_varint(len(value)) + value


def decode_bytes(buffer, offset: int = 0) -> Tuple[bytes, int]:
    length, offset = decode_varint(buffer, offset)
    end = offset + length
    return bytes(buffer[offset:end]), end


def encode_bytes_vector(values) -> bytes:
    """A counted vector of byte strings: varint count, then each value
    length-prefixed.  Used for columnar block dictionaries."""
    parts = [encode_varint(len(values))]
    parts.extend(encode_bytes(value) for value in values)
    return b"".join(parts)


def decode_bytes_vector(buffer, offset: int = 0) -> Tuple[list, int]:
    count, offset = decode_varint(buffer, offset)
    values = []
    for _ in range(count):
        value, offset = decode_bytes(buffer, offset)
        values.append(value)
    return values, offset


def encode_bool(value: bool) -> bytes:
    return b"\x01" if value else b"\x00"


def decode_bool(buffer, offset: int = 0) -> Tuple[bool, int]:
    return buffer[offset] != 0, offset + 1


def encode_float(value: float) -> bytes:
    return _FLOAT.pack(value)


def decode_float(buffer, offset: int = 0) -> Tuple[float, int]:
    return _FLOAT.unpack_from(buffer, offset)[0], offset + 8
