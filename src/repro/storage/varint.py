"""Variable-length integer coding (LEB128 with zigzag for signed values).

Both engines encode ids, counts and offsets as varints, which is what
makes the NoSQL ``set<int>`` columns compact — the property the paper
credits for NoSQL-DWARF beating the relational schemas on size.

The zigzag map works for arbitrary-precision Python ints:
``0, -1, 1, -2, 2, ...`` map to ``0, 1, 2, 3, 4, ...``.
"""

from __future__ import annotations

from typing import Tuple


def zigzag_encode(value: int) -> int:
    """Map a signed int to an unsigned one, small magnitudes staying small."""
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    return value >> 1 if not value & 1 else -((value + 1) >> 1)


def _encode_uvarint(encoded: int) -> bytes:
    if encoded < 0x80:
        return bytes((encoded,))
    if encoded < 0x4000:
        return bytes((encoded & 0x7F | 0x80, encoded >> 7))
    if encoded < 0x200000:
        return bytes((encoded & 0x7F | 0x80, (encoded >> 7) & 0x7F | 0x80, encoded >> 14))
    if encoded < 0x10000000:
        return bytes(
            (
                encoded & 0x7F | 0x80,
                (encoded >> 7) & 0x7F | 0x80,
                (encoded >> 14) & 0x7F | 0x80,
                encoded >> 21,
            )
        )
    out = bytearray()
    while True:
        byte = encoded & 0x7F
        encoded >>= 7
        if encoded:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


#: Cache of the two-byte-and-under encodings (zigzag values 0..16383);
#: ids, counts and measures hit this path almost always.
_CACHE_LIMIT = 1 << 14
_CACHE = [_encode_uvarint(v) for v in range(_CACHE_LIMIT)]


def encode_varint(value: int) -> bytes:
    """Encode a signed integer as zigzag LEB128 bytes."""
    encoded = value << 1 if value >= 0 else ((-value) << 1) - 1
    if encoded < _CACHE_LIMIT:
        return _CACHE[encoded]
    return _encode_uvarint(encoded)


def decode_varint(buffer, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint at ``offset``; returns ``(value, next_offset)``."""
    shift = 0
    result = 0
    while True:
        byte = buffer[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return zigzag_decode(result), offset
        shift += 7
