"""XML record extraction.

Parses a feed document with :mod:`xml.etree.ElementTree` and yields one
flat record per repeated *record element* (e.g. ``<station>``).  Child
elements and attributes become record fields; a parent-level context
(e.g. the snapshot timestamp on the feed root) can be merged into every
record via ``context_fields``.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, Iterator, Sequence

from repro.core.errors import PipelineError
from repro.etl.documents import SourceDocument


def parse_xml_records(
    document: SourceDocument,
    record_tag: str,
    context_fields: Sequence[str] = (),
) -> Iterator[Dict[str, str]]:
    """Yield one ``{field: text}`` record per ``record_tag`` element.

    ``context_fields`` names attributes or child elements of the *root*
    element copied into every record (the paper's feeds carry the
    harvest timestamp there).
    """
    if document.content_type != "xml":
        raise PipelineError(f"expected an XML document, got {document.content_type!r}")
    try:
        root = ET.fromstring(document.content)
    except ET.ParseError as exc:
        raise PipelineError(f"malformed XML from {document.source!r}: {exc}") from exc

    context: Dict[str, str] = {}
    for field in context_fields:
        value = root.get(field)
        if value is None:
            child = root.find(field)
            value = child.text if child is not None else None
        if value is not None:
            context[field] = value

    for element in root.iter(record_tag):
        record = dict(context)
        record.update(element.attrib)
        for child in element:
            if len(child) == 0:  # leaf element
                record[child.tag] = (child.text or "").strip()
        yield record


def count_xml_records(document: SourceDocument, record_tag: str) -> int:
    """Number of ``record_tag`` elements in the document."""
    return sum(1 for _ in parse_xml_records(document, record_tag))
