"""JSON record extraction.

The JSON twin of :mod:`repro.etl.xml_source`: locates the record array in
a feed object via a simple dotted path and yields flat records, merging
optional top-level context fields into each.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, Sequence

from repro.core.errors import PipelineError
from repro.etl.documents import SourceDocument


def parse_json_records(
    document: SourceDocument,
    records_path: str,
    context_fields: Sequence[str] = (),
) -> Iterator[Dict[str, object]]:
    """Yield one record dict per element of the array at ``records_path``.

    ``records_path`` is a dotted path from the document root, e.g.
    ``"data.stations"``.  Nested objects inside a record are flattened
    one level with ``parent.child`` keys.
    """
    if document.content_type != "json":
        raise PipelineError(f"expected a JSON document, got {document.content_type!r}")
    try:
        payload = json.loads(document.content)
    except json.JSONDecodeError as exc:
        raise PipelineError(f"malformed JSON from {document.source!r}: {exc}") from exc

    context: Dict[str, object] = {}
    if isinstance(payload, dict):
        for field in context_fields:
            if field in payload:
                context[field] = payload[field]

    records = payload
    if records_path:
        for part in records_path.split("."):
            if not isinstance(records, dict) or part not in records:
                raise PipelineError(
                    f"records path {records_path!r} not found in JSON from "
                    f"{document.source!r}"
                )
            records = records[part]
    if not isinstance(records, list):
        raise PipelineError(f"records path {records_path!r} is not an array")

    for entry in records:
        if not isinstance(entry, dict):
            raise PipelineError("record array elements must be objects")
        record = dict(context)
        for key, value in entry.items():
            if isinstance(value, dict):
                for inner_key, inner_value in value.items():
                    record[f"{key}.{inner_key}"] = inner_value
            else:
                record[key] = value
        yield record
