"""Data streams and windows.

The paper maintains cubes over *periods* of a stream (one day, one week,
one month, ...).  A :class:`DocumentStream` is an ordered source of
documents; :func:`window_by_count` and :func:`window_by_period` cut it
into batches that the pipeline turns into per-period cubes.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional

from repro.etl.documents import DocumentBatch, SourceDocument


class DocumentStream:
    """An ordered, replayable stream of source documents."""

    def __init__(self, documents: Iterable[SourceDocument]) -> None:
        self._documents: List[SourceDocument] = list(documents)

    def __iter__(self) -> Iterator[SourceDocument]:
        return iter(self._documents)

    def __len__(self) -> int:
        return len(self._documents)

    def batch(self) -> DocumentBatch:
        return DocumentBatch(self._documents)

    def __repr__(self) -> str:
        return f"DocumentStream({len(self)} documents)"


def window_by_count(
    stream: Iterable[SourceDocument], batch_size: int
) -> Iterator[DocumentBatch]:
    """Cut a stream into consecutive batches of ``batch_size`` documents."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    current = DocumentBatch()
    for document in stream:
        current.append(document)
        if len(current) == batch_size:
            yield current
            current = DocumentBatch()
    if len(current):
        yield current


def window_by_period(
    stream: Iterable[SourceDocument],
    period_of: Callable[[SourceDocument], object],
) -> Iterator[DocumentBatch]:
    """Cut a stream into batches sharing ``period_of(document)``.

    Documents must arrive period-ordered (true of harvested feeds); a
    change in the period value closes the current window.
    """
    current = DocumentBatch()
    current_period: Optional[object] = None
    for document in stream:
        period = period_of(document)
        if current_period is not None and period != current_period and len(current):
            yield current
            current = DocumentBatch()
        current_period = period
        current.append(document)
    if len(current):
        yield current
