"""Data streams, windows and micro-batch tailing.

The paper maintains cubes over *periods* of a stream (one day, one week,
one month, ...).  A :class:`DocumentStream` is an ordered source of
documents; :func:`window_by_count` and :func:`window_by_period` cut it
into batches that the pipeline turns into per-period cubes.

The incremental path tails the stream instead of windowing it wholesale:
a :class:`FeedTailer` consumes bounded :class:`MicroBatch` slices from a
(possibly still growing) stream, tracking a resumable **offset** (count
of documents consumed, the position a restarted tailer seeks back to)
and a **watermark** (the highest document sequence number delivered so
far, the "caught up to" point the merge scheduler reads).
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Iterator, List, Optional, Union

from repro.etl.documents import DocumentBatch, SourceDocument
from repro.telemetry import get_registry, get_tracer

_REGISTRY = get_registry()
_M_BATCHES = _REGISTRY.counter(
    "ingest_batches_total", "micro-batches delivered by feed tailers"
)
_M_TAILED = _REGISTRY.counter(
    "ingest_documents_total", "documents delivered through micro-batches"
)

#: Default micro-batch bound when ``REPRO_INGEST_BATCH`` is unset.
DEFAULT_INGEST_BATCH = 64


def resolve_ingest_batch(batch_size: Optional[int] = None) -> int:
    """Micro-batch bound: explicit argument > ``REPRO_INGEST_BATCH`` > 64.

    Mirrors :func:`repro.nosqldb.sharding.resolve_shards`; malformed or
    non-positive values fall back to the default.
    """
    if batch_size is None:
        env = os.environ.get("REPRO_INGEST_BATCH", "").strip()
        if env:
            try:
                batch_size = int(env)
            except ValueError:
                batch_size = DEFAULT_INGEST_BATCH
        else:
            batch_size = DEFAULT_INGEST_BATCH
    return max(1, int(batch_size))


class DocumentStream:
    """An ordered, replayable stream of source documents."""

    def __init__(self, documents: Iterable[SourceDocument]) -> None:
        self._documents: List[SourceDocument] = list(documents)

    def __iter__(self) -> Iterator[SourceDocument]:
        return iter(self._documents)

    def __len__(self) -> int:
        return len(self._documents)

    def batch(self) -> DocumentBatch:
        return DocumentBatch(self._documents)

    def extend(self, documents: Iterable[SourceDocument]) -> None:
        """Append newly harvested documents (models a live, growing feed)."""
        self._documents.extend(documents)

    def slice(self, start: int, stop: int) -> List[SourceDocument]:
        """Documents in ``[start, stop)`` — the tailer's read primitive."""
        return self._documents[start:stop]

    def __repr__(self) -> str:
        return f"DocumentStream({len(self)} documents)"


class MicroBatch:
    """One bounded slice of a tailed stream.

    Iterating yields the documents; ``start_offset``/``end_offset`` frame
    the slice in the stream and ``watermark`` is the highest document
    ``sequence`` in the batch (the event-time frontier it advances).
    """

    __slots__ = ("index", "start_offset", "end_offset", "watermark", "documents")

    def __init__(
        self,
        index: int,
        start_offset: int,
        end_offset: int,
        watermark: int,
        documents: List[SourceDocument],
    ) -> None:
        self.index = index
        self.start_offset = start_offset
        self.end_offset = end_offset
        self.watermark = watermark
        self.documents = documents

    def __iter__(self) -> Iterator[SourceDocument]:
        return iter(self.documents)

    def __len__(self) -> int:
        return len(self.documents)

    def __repr__(self) -> str:
        return (
            f"MicroBatch(#{self.index}, offsets "
            f"[{self.start_offset}, {self.end_offset}), "
            f"watermark={self.watermark}, {len(self.documents)} documents)"
        )


class FeedTailer:
    """Tail a :class:`DocumentStream` in bounded micro-batches.

    ``poll()`` returns the next :class:`MicroBatch` (at most
    ``batch_size`` documents) or ``None`` when the tailer has caught up
    with the stream; a stream that grows (``DocumentStream.extend``)
    makes the next ``poll()`` productive again.  The tailer is resumable:
    persist :attr:`offset` and hand it back as ``offset=`` to continue
    exactly where a previous tailer stopped.
    """

    def __init__(
        self,
        stream: Union[DocumentStream, Iterable[SourceDocument]],
        batch_size: Optional[int] = None,
        offset: int = 0,
    ) -> None:
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        if not isinstance(stream, DocumentStream):
            # Accept any ordered document container (DocumentBatch, list);
            # only a DocumentStream can grow underneath the tailer.
            stream = DocumentStream(stream)
        self.stream = stream
        self.batch_size = resolve_ingest_batch(batch_size)
        self._offset = offset
        self._watermark = -1
        self._n_batches = 0

    # ------------------------------------------------------------------
    @property
    def offset(self) -> int:
        """Documents consumed so far — persist this to resume the tail."""
        return self._offset

    @property
    def watermark(self) -> int:
        """Highest document sequence delivered (-1 before the first batch)."""
        return self._watermark

    @property
    def lag(self) -> int:
        """Documents available but not yet delivered."""
        return max(0, len(self.stream) - self._offset)

    def seek(self, offset: int) -> None:
        """Reposition the tail (resume from a persisted offset)."""
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        self._offset = offset

    # ------------------------------------------------------------------
    def poll(self) -> Optional[MicroBatch]:
        """The next bounded micro-batch, or ``None`` when caught up."""
        with get_tracer().span(
            "ingest.poll", offset=self._offset, batch_size=self.batch_size
        ):
            start = self._offset
            stop = min(start + self.batch_size, len(self.stream))
            if stop <= start:
                return None
            documents = self.stream.slice(start, stop)
            self._offset = stop
            for document in documents:
                if document.sequence > self._watermark:
                    self._watermark = document.sequence
            batch = MicroBatch(
                index=self._n_batches,
                start_offset=start,
                end_offset=stop,
                watermark=self._watermark,
                documents=documents,
            )
            self._n_batches += 1
        _M_BATCHES.inc()
        _M_TAILED.inc(len(documents))
        return batch

    def __iter__(self) -> Iterator[MicroBatch]:
        """Drain every currently available micro-batch."""
        while True:
            batch = self.poll()
            if batch is None:
                return
            yield batch

    def __repr__(self) -> str:
        return (
            f"FeedTailer(offset={self._offset}, batch_size={self.batch_size}, "
            f"lag={self.lag})"
        )


def window_by_count(
    stream: Iterable[SourceDocument], batch_size: int
) -> Iterator[DocumentBatch]:
    """Cut a stream into consecutive batches of ``batch_size`` documents."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    current = DocumentBatch()
    for document in stream:
        current.append(document)
        if len(current) == batch_size:
            yield current
            current = DocumentBatch()
    if len(current):
        yield current


def window_by_period(
    stream: Iterable[SourceDocument],
    period_of: Callable[[SourceDocument], object],
) -> Iterator[DocumentBatch]:
    """Cut a stream into batches sharing ``period_of(document)``.

    Documents must arrive period-ordered (true of harvested feeds); a
    change in the period value closes the current window.
    """
    current = DocumentBatch()
    current_period: Optional[object] = None
    for document in stream:
        period = period_of(document)
        if current_period is not None and period != current_period and len(current):
            yield current
            current = DocumentBatch()
        current_period = period
        current.append(document)
    if len(current):
        yield current
