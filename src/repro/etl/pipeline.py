"""The ETL pipeline: documents → records → fact tuples.

One :class:`EtlPipeline` bundles a record reader (XML or JSON) with a
:class:`~repro.etl.extractor.FactMapping`, producing the
:class:`~repro.core.tuples.TupleSet` that DWARF construction consumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Sequence

from repro.core.errors import PipelineError
from repro.core.tuples import TupleSet
from repro.etl.documents import SourceDocument
from repro.etl.extractor import FactMapping
from repro.etl.json_source import parse_json_records
from repro.etl.xml_source import parse_xml_records
from repro.telemetry import get_registry, get_tracer

_REGISTRY = get_registry()
_M_DOCUMENTS = _REGISTRY.counter(
    "etl_documents_total", "source documents parsed", labels=("content_type",)
)
_M_RECORDS = _REGISTRY.counter("etl_records_total", "flat records read from documents")
_M_FACTS = _REGISTRY.counter("etl_facts_total", "fact tuples extracted (post-filter)")


class EtlPipeline:
    """Extract fact tuples from a stream of XML/JSON documents.

    Parameters
    ----------
    mapping:
        How record fields feed the cube schema.
    record_tag:
        XML element name holding one record (used for XML documents).
    records_path:
        Dotted path to the record array (used for JSON documents).
    context_fields:
        Root-level fields merged into every record (e.g. the snapshot
        timestamp).
    """

    def __init__(
        self,
        mapping: FactMapping,
        record_tag: str = "record",
        records_path: str = "",
        context_fields: Sequence[str] = (),
    ) -> None:
        self.mapping = mapping
        self.record_tag = record_tag
        self.records_path = records_path
        self.context_fields = tuple(context_fields)
        self.n_documents = 0
        self.n_records = 0

    # ------------------------------------------------------------------
    def records(self, document: SourceDocument) -> Iterator[Dict[str, object]]:
        """Flat records of one document, dispatched on its content type."""
        if document.content_type == "xml":
            return parse_xml_records(document, self.record_tag, self.context_fields)
        if document.content_type == "json":
            return parse_json_records(document, self.records_path, self.context_fields)
        raise PipelineError(f"unsupported content type {document.content_type!r}")

    def extract(self, documents: Iterable[SourceDocument]) -> TupleSet:
        """Run the full pipeline over ``documents``."""
        facts = TupleSet(self.mapping.schema)
        tracer = get_tracer()
        with tracer.span("etl.extract", schema=self.mapping.schema.name) as span:
            n_documents = n_records = 0
            for document in documents:
                n_documents += 1
                _M_DOCUMENTS.labels(document.content_type).inc()
                if tracer.enabled:
                    # Parsing is lazy; materialize under the span so it
                    # measures parse cost (disabled path stays a pure
                    # generator pipeline).
                    with tracer.span("etl.parse", content_type=document.content_type):
                        records = list(self.records(document))
                else:
                    records = self.records(document)
                for record in records:
                    n_records += 1
                    fact = self.mapping.extract_one(record)
                    if fact is not None:
                        facts.append(fact)
            self.n_documents += n_documents
            self.n_records += n_records
            _M_RECORDS.inc(n_records)
            _M_FACTS.inc(len(facts))
            span.set("documents", n_documents)
            span.set("facts", len(facts))
        return facts

    def __repr__(self) -> str:
        return (
            f"EtlPipeline(schema={self.mapping.schema.name!r}, "
            f"documents={self.n_documents}, records={self.n_records})"
        )
