"""The ETL pipeline: documents → records → fact tuples.

One :class:`EtlPipeline` bundles a record reader (XML or JSON) with a
:class:`~repro.etl.extractor.FactMapping`, producing the
:class:`~repro.core.tuples.TupleSet` that DWARF construction consumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Sequence

from repro.core.errors import PipelineError
from repro.core.tuples import TupleSet
from repro.etl.documents import SourceDocument
from repro.etl.extractor import FactMapping
from repro.etl.json_source import parse_json_records
from repro.etl.xml_source import parse_xml_records


class EtlPipeline:
    """Extract fact tuples from a stream of XML/JSON documents.

    Parameters
    ----------
    mapping:
        How record fields feed the cube schema.
    record_tag:
        XML element name holding one record (used for XML documents).
    records_path:
        Dotted path to the record array (used for JSON documents).
    context_fields:
        Root-level fields merged into every record (e.g. the snapshot
        timestamp).
    """

    def __init__(
        self,
        mapping: FactMapping,
        record_tag: str = "record",
        records_path: str = "",
        context_fields: Sequence[str] = (),
    ) -> None:
        self.mapping = mapping
        self.record_tag = record_tag
        self.records_path = records_path
        self.context_fields = tuple(context_fields)
        self.n_documents = 0
        self.n_records = 0

    # ------------------------------------------------------------------
    def records(self, document: SourceDocument) -> Iterator[Dict[str, object]]:
        """Flat records of one document, dispatched on its content type."""
        if document.content_type == "xml":
            return parse_xml_records(document, self.record_tag, self.context_fields)
        if document.content_type == "json":
            return parse_json_records(document, self.records_path, self.context_fields)
        raise PipelineError(f"unsupported content type {document.content_type!r}")

    def extract(self, documents: Iterable[SourceDocument]) -> TupleSet:
        """Run the full pipeline over ``documents``."""
        facts = TupleSet(self.mapping.schema)
        for document in documents:
            self.n_documents += 1
            for record in self.records(document):
                self.n_records += 1
                fact = self.mapping.extract_one(record)
                if fact is not None:
                    facts.append(fact)
        return facts

    def __repr__(self) -> str:
        return (
            f"EtlPipeline(schema={self.mapping.schema.name!r}, "
            f"documents={self.n_documents}, records={self.n_records})"
        )
