"""Record → fact-tuple extraction.

A :class:`FactMapping` declares how a flat record from a feed becomes
one DWARF input tuple ``(d1, ..., dn, measure)``: which record field (or
derivation) feeds each dimension of a :class:`~repro.core.schema.CubeSchema`,
and which field is the measure.  This is the "abstraction from the source
format" step the paper shares with the XML-cube literature (§6): once a
record is flat, XML and JSON sources are handled identically.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional, Union

from repro.core.errors import PipelineError
from repro.core.schema import CubeSchema
from repro.core.tuples import FactTuple, TupleSet

FieldSpec = Union[str, Callable[[Dict[str, object]], object]]


class FactMapping:
    """Binds a cube schema to record fields.

    ``dimension_fields`` maps each dimension name to either a record field
    name or a callable deriving the value from the whole record (for
    computed dimensions like *weekday* from a timestamp).  ``measure_field``
    works the same way for the measure.

    ``on_missing`` controls behaviour when a record lacks a field:
    ``"error"`` raises, ``"skip"`` silently drops the record — the right
    choice for noisy public feeds.
    """

    def __init__(
        self,
        schema: CubeSchema,
        dimension_fields: Mapping[str, FieldSpec],
        measure_field: FieldSpec,
        measure_cast: Callable[[object], object] = int,
        on_missing: str = "error",
    ) -> None:
        missing = set(schema.dimension_names) - set(dimension_fields)
        if missing:
            raise PipelineError(f"no field mapping for dimensions: {sorted(missing)}")
        unknown = set(dimension_fields) - set(schema.dimension_names)
        if unknown:
            raise PipelineError(f"mapping for unknown dimensions: {sorted(unknown)}")
        if on_missing not in ("error", "skip"):
            raise PipelineError(f"on_missing must be 'error' or 'skip', got {on_missing!r}")
        self.schema = schema
        self.dimension_fields = dict(dimension_fields)
        self.measure_field = measure_field
        self.measure_cast = measure_cast
        self.on_missing = on_missing
        self.n_skipped = 0

    # ------------------------------------------------------------------
    def _field(self, record: Dict[str, object], spec: FieldSpec):
        if callable(spec):
            return spec(record)
        if spec not in record or record[spec] is None:
            raise KeyError(spec)
        return record[spec]

    def extract_one(self, record: Dict[str, object]) -> Optional[FactTuple]:
        """Map one record to a fact tuple, or None when skipped."""
        try:
            keys = tuple(
                self._field(record, self.dimension_fields[name])
                for name in self.schema.dimension_names
            )
            measure = self.measure_cast(self._field(record, self.measure_field))
        except (KeyError, ValueError, TypeError) as exc:
            if self.on_missing == "skip":
                self.n_skipped += 1
                return None
            raise PipelineError(f"cannot extract fact from record {record!r}: {exc}") from exc
        return FactTuple(keys, measure)

    def extract(self, records: Iterable[Dict[str, object]]) -> TupleSet:
        """Map an iterable of records into a validated :class:`TupleSet`."""
        facts = TupleSet(self.schema)
        for record in records:
            fact = self.extract_one(record)
            if fact is not None:
                facts.append(fact)
        return facts

    def __repr__(self) -> str:
        return f"FactMapping(schema={self.schema.name!r}, measure={self.measure_field!r})"
