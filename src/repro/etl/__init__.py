"""ETL: XML/JSON smart-city documents → flat records → fact tuples."""

from repro.etl.documents import DocumentBatch, SourceDocument
from repro.etl.extractor import FactMapping
from repro.etl.inference import infer_mapping, profile_records
from repro.etl.json_source import parse_json_records
from repro.etl.pipeline import EtlPipeline
from repro.etl.stream import (
    DocumentStream,
    FeedTailer,
    MicroBatch,
    resolve_ingest_batch,
    window_by_count,
    window_by_period,
)
from repro.etl.xml_source import count_xml_records, parse_xml_records

__all__ = [
    "DocumentBatch",
    "DocumentStream",
    "EtlPipeline",
    "FactMapping",
    "FeedTailer",
    "MicroBatch",
    "SourceDocument",
    "resolve_ingest_batch",
    "count_xml_records",
    "infer_mapping",
    "parse_json_records",
    "profile_records",
    "parse_xml_records",
    "window_by_count",
    "window_by_period",
]
