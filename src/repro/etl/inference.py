"""Schema inference: derive a cube definition from raw feed records.

The paper's goal is a *canonical* approach to managing arbitrary XML and
JSON streams; new feeds should not require hand-written cube wiring.
:func:`infer_mapping` inspects a sample of flat records and proposes a
:class:`~repro.core.schema.CubeSchema` plus
:class:`~repro.etl.extractor.FactMapping`:

* fields missing from too many records are dropped;
* numeric fields are measure candidates — the chosen measure is the one
  with the most distinct values (most measure-like), unless named
  explicitly;
* the remaining fields become dimensions, ordered by decreasing
  cardinality (the DWARF-friendly order of [12]);
* high-cardinality non-numeric fields (e.g. free text, timestamps) can
  be capped out with ``max_dimension_cardinality``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import PipelineError
from repro.core.schema import CubeSchema, Dimension
from repro.etl.extractor import FactMapping
from repro.telemetry import get_registry, get_tracer

_M_INFERRED = get_registry().counter(
    "etl_inferred_schemas_total", "schemas proposed by infer_mapping"
)

#: A field must appear in at least this fraction of sampled records.
MIN_PRESENCE = 0.9


class FieldProfile:
    """What the sampler learned about one record field."""

    __slots__ = ("name", "present", "numeric", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.present = 0
        self.numeric = True
        self.values = set()

    def observe(self, value) -> None:
        self.present += 1
        if self.numeric and _as_number(value) is None:
            self.numeric = False
        if len(self.values) <= 10_000:
            self.values.add(str(value))

    @property
    def cardinality(self) -> int:
        return len(self.values)


def _as_number(value):
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        text = value.strip()
        try:
            return int(text)
        except ValueError:
            try:
                return float(text)
            except ValueError:
                return None
    return None


def profile_records(records: Iterable[Dict[str, object]]) -> Tuple[List[FieldProfile], int]:
    """Scan records once and profile every field."""
    profiles: Dict[str, FieldProfile] = {}
    n_records = 0
    for record in records:
        n_records += 1
        for name, value in record.items():
            if value is None:
                continue
            profile = profiles.get(name)
            if profile is None:
                profile = profiles[name] = FieldProfile(name)
            profile.observe(value)
    return list(profiles.values()), n_records


def infer_mapping(
    records: Sequence[Dict[str, object]],
    name: str = "inferred",
    measure: Optional[str] = None,
    max_dimension_cardinality: Optional[int] = None,
    max_dimensions: int = 8,
) -> FactMapping:
    """Propose a cube schema and field mapping for ``records``.

    ``records`` must be a re-iterable sample (a list); raises
    :class:`PipelineError` when no viable measure or dimensions exist.
    """
    with get_tracer().span("etl.infer", schema=name) as span:
        mapping = _infer_mapping(records, name, measure, max_dimension_cardinality,
                                 max_dimensions)
        span.set("dimensions", len(mapping.schema.dimensions))
        _M_INFERRED.inc()
        return mapping


def _infer_mapping(
    records: Sequence[Dict[str, object]],
    name: str,
    measure: Optional[str],
    max_dimension_cardinality: Optional[int],
    max_dimensions: int,
) -> FactMapping:
    profiles, n_records = profile_records(records)
    if n_records == 0:
        raise PipelineError("cannot infer a schema from zero records")
    usable = [p for p in profiles if p.present >= MIN_PRESENCE * n_records]
    if not usable:
        raise PipelineError("no field is present in enough records")

    numeric = [p for p in usable if p.numeric]
    if measure is not None:
        chosen = next((p for p in usable if p.name == measure), None)
        if chosen is None:
            raise PipelineError(f"requested measure {measure!r} not found or too sparse")
        if not chosen.numeric:
            raise PipelineError(f"requested measure {measure!r} is not numeric")
    else:
        if not numeric:
            raise PipelineError("no numeric field to use as the measure")
        # The most distinct numeric field is the most measure-like.
        chosen = max(numeric, key=lambda p: (p.cardinality, p.name))

    dimension_profiles = [p for p in usable if p.name != chosen.name]
    if max_dimension_cardinality is not None:
        dimension_profiles = [
            p for p in dimension_profiles if p.cardinality <= max_dimension_cardinality
        ]
    if not dimension_profiles:
        raise PipelineError("no dimension fields survive the cardinality cap")
    # Decreasing cardinality near the root compresses best ([12]).
    dimension_profiles.sort(key=lambda p: (-p.cardinality, p.name))
    dimension_profiles = dimension_profiles[:max_dimensions]

    schema = CubeSchema(
        name,
        [Dimension(p.name) for p in dimension_profiles],
        measure=chosen.name if chosen.name not in
        {p.name for p in dimension_profiles} else f"{chosen.name}_measure",
    )
    measure_is_int = all(
        isinstance(_as_number(v), int) for v in list(chosen.values)[:100]
    )

    def make_getter(field_name: str):
        def get(record: Dict[str, object]):
            value = record[field_name]
            if value is None:
                raise KeyError(field_name)
            return value if not isinstance(value, str) else value

        return get

    def get_measure(record: Dict[str, object]):
        number = _as_number(record[chosen.name])
        if number is None:
            raise KeyError(chosen.name)
        return number

    return FactMapping(
        schema,
        dimension_fields={p.name: make_getter(p.name) for p in dimension_profiles},
        measure_field=get_measure,
        measure_cast=int if measure_is_int else float,
        on_missing="skip",
    )
