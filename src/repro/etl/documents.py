"""Source documents: the web-generated payloads of smart-city services.

The paper's pipeline consumes XML and JSON objects published by city
services (bike schemes, car parks, sensors).  A :class:`SourceDocument`
carries the raw text plus light metadata; format-specific readers turn
documents into flat records (dicts) for the extractor.
"""

from __future__ import annotations

from typing import Iterator, List, Optional


class SourceDocument:
    """One harvested document (e.g. a station-feed snapshot)."""

    __slots__ = ("content", "content_type", "source", "sequence")

    def __init__(
        self,
        content: str,
        content_type: str,
        source: str = "",
        sequence: int = 0,
    ) -> None:
        if content_type not in ("xml", "json"):
            raise ValueError(f"content_type must be 'xml' or 'json', got {content_type!r}")
        self.content = content
        self.content_type = content_type
        self.source = source
        self.sequence = sequence

    @property
    def size_bytes(self) -> int:
        return len(self.content.encode("utf-8"))

    def __repr__(self) -> str:
        return (
            f"SourceDocument({self.content_type}, source={self.source!r}, "
            f"seq={self.sequence}, {self.size_bytes}B)"
        )


class DocumentBatch:
    """An ordered collection of documents with aggregate accounting."""

    __slots__ = ("_documents",)

    def __init__(self, documents: Optional[List[SourceDocument]] = None) -> None:
        self._documents: List[SourceDocument] = list(documents or [])

    def append(self, document: SourceDocument) -> None:
        self._documents.append(document)

    def __iter__(self) -> Iterator[SourceDocument]:
        return iter(self._documents)

    def __len__(self) -> int:
        return len(self._documents)

    @property
    def size_bytes(self) -> int:
        return sum(d.size_bytes for d in self._documents)

    @property
    def size_mb(self) -> float:
        return self.size_bytes / (1024 * 1024)

    def __repr__(self) -> str:
        return f"DocumentBatch({len(self)} docs, {self.size_mb:.2f} MB)"
