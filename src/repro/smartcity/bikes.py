"""The bike-sharing scheme feed: the paper's evaluation dataset.

Synthesises CitiBikes-shaped station feeds: the harvester polls the
scheme and receives one XML (or JSON) snapshot listing every station
with its live availability.  Availability follows a commuter pattern
(residential stations fill in the morning while business-district
stations drain, reversing in the evening) with seeded noise, so the
cube's dimension correlations resemble the real Dublin scheme.

The generator is record-count exact: ``generate_documents(days,
total_records)`` emits precisely ``total_records`` station readings,
which is how the benchmark datasets hit the paper's tuple counts
(Table 2).
"""

from __future__ import annotations

import datetime as dt
import json
import math
from typing import Dict, Iterator, List, Optional

from repro.core.schema import CubeSchema, Dimension
from repro.etl.documents import SourceDocument
from repro.etl.extractor import FactMapping
from repro.etl.pipeline import EtlPipeline
from repro.etl.stream import DocumentStream
from repro.smartcity.city import CityModel, Station, capacity_bucket, daypart

#: Station count of the synthetic scheme (Dublin's scheme had ~100).
DEFAULT_N_STATIONS = 102

_WEEKDAYS = ("Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday")

#: Feed epoch: all generated periods start here.
FEED_START = dt.datetime(2015, 6, 1, 0, 0, 0)


class BikeFeedGenerator:
    """Generates deterministic snapshots of one bike scheme."""

    def __init__(
        self,
        city: Optional[CityModel] = None,
        n_stations: int = DEFAULT_N_STATIONS,
    ) -> None:
        self.city = city or CityModel()
        self.stations: List[Station] = self.city.bike_stations(n_stations)
        self._rng = self.city.rng("bikes-availability")
        # Per-station phase: business stations drain in the morning,
        # residential ones fill; encoded as a commuter sign in [-1, 1].
        self._commuter_sign = {
            station.number: (1.0 if station.number % 3 else -1.0)
            * self._rng.uniform(0.55, 1.0)
            for station in self.stations
        }

    # ------------------------------------------------------------------
    def availability(self, station: Station, when: dt.datetime) -> int:
        """Available bikes at ``station`` at time ``when``."""
        hour = when.hour + when.minute / 60.0
        weekend = when.weekday() >= 5
        base = 0.5
        if not weekend:
            commute = math.sin((hour - 8.5) / 24.0 * 2.0 * math.pi)
            base += 0.38 * commute * self._commuter_sign[station.number]
        else:
            base += 0.15 * math.sin((hour - 14.0) / 24.0 * 2.0 * math.pi)
        noise = self._rng.uniform(-0.12, 0.12)
        fraction = min(1.0, max(0.0, base + noise))
        return int(round(fraction * station.capacity))

    def status(self, station: Station, when: dt.datetime) -> str:
        """Operational status; a station occasionally closes for rebalancing."""
        closed = (station.number * 31 + when.toordinal()) % 97 == 0
        return "CLOSED" if closed else "OPEN"

    # ------------------------------------------------------------------
    def snapshot_times(self, days: int, total_records: int) -> List[dt.datetime]:
        """Evenly spread harvest times covering ``total_records`` readings."""
        n_snapshots = max(1, math.ceil(total_records / len(self.stations)))
        step_seconds = days * 24 * 3600 / n_snapshots
        return [
            FEED_START + dt.timedelta(seconds=round(i * step_seconds))
            for i in range(n_snapshots)
        ]

    def generate_documents(
        self,
        days: int,
        total_records: int,
        content_type: str = "xml",
    ) -> DocumentStream:
        """Emit snapshot documents containing exactly ``total_records`` readings."""
        if content_type not in ("xml", "json"):
            raise ValueError(f"content_type must be 'xml' or 'json', got {content_type!r}")
        documents: List[SourceDocument] = []
        remaining = total_records
        for sequence, when in enumerate(self.snapshot_times(days, total_records)):
            if remaining <= 0:
                break
            stations = self.stations[: min(remaining, len(self.stations))]
            remaining -= len(stations)
            if content_type == "xml":
                content = self._render_xml(stations, when)
            else:
                content = self._render_json(stations, when)
            documents.append(
                SourceDocument(content, content_type, source="dublin-bikes", sequence=sequence)
            )
        return DocumentStream(documents)

    # ------------------------------------------------------------------
    def _readings(self, stations: List[Station], when: dt.datetime) -> Iterator[Dict]:
        for station in stations:
            bikes = self.availability(station, when)
            yield {
                "id": station.number,
                "name": station.name,
                "district": station.district,
                "latitude": station.latitude,
                "longitude": station.longitude,
                "capacity": station.capacity,
                "available_bikes": bikes,
                "available_stands": station.capacity - bikes,
                "status": self.status(station, when),
                "last_update": when.isoformat(),
            }

    def _render_xml(self, stations: List[Station], when: dt.datetime) -> str:
        parts = [
            '<?xml version="1.0" encoding="UTF-8"?>\n',
            f'<stations city="Dublin" scheme="dublinbikes" timestamp="{when.isoformat()}">\n',
        ]
        for reading in self._readings(stations, when):
            parts.append(
                "  <station>"
                f"<id>{reading['id']}</id>"
                f"<name>{reading['name']}</name>"
                f"<district>{reading['district']}</district>"
                f"<address>{reading['name']}, {reading['district']}</address>"
                f"<latitude>{reading['latitude']}</latitude>"
                f"<longitude>{reading['longitude']}</longitude>"
                f"<capacity>{reading['capacity']}</capacity>"
                f"<available_bikes>{reading['available_bikes']}</available_bikes>"
                f"<available_stands>{reading['available_stands']}</available_stands>"
                f"<status>{reading['status']}</status>"
                f"<last_update>{reading['last_update']}</last_update>"
                "</station>\n"
            )
        parts.append("</stations>\n")
        return "".join(parts)

    def _render_json(self, stations: List[Station], when: dt.datetime) -> str:
        payload = {
            "city": "Dublin",
            "scheme": "dublinbikes",
            "timestamp": when.isoformat(),
            "stations": list(self._readings(stations, when)),
        }
        return json.dumps(payload)


# ----------------------------------------------------------------------
# cube wiring
# ----------------------------------------------------------------------
def bikes_schema(name: str = "bikes") -> CubeSchema:
    """The 8-dimension bike cube used throughout the evaluation."""
    return CubeSchema(
        name,
        [
            Dimension("day"),
            Dimension("weekday"),
            Dimension("daypart"),
            Dimension("hour"),
            Dimension("district", dimension_table="District"),
            Dimension("station", dimension_table="Station"),
            Dimension("status"),
            Dimension("station_size"),
        ],
        measure="available_bikes",
    )


def _day(record: Dict) -> str:
    return str(record["last_update"])[:10]


def _hour(record: Dict) -> int:
    return int(str(record["last_update"])[11:13])


def _weekday(record: Dict) -> str:
    date = dt.date.fromisoformat(_day(record))
    return _WEEKDAYS[date.weekday()]


def bikes_mapping(schema: Optional[CubeSchema] = None) -> FactMapping:
    """Field mapping from a station reading to the 8-dimension fact tuple."""
    return FactMapping(
        schema or bikes_schema(),
        dimension_fields={
            "day": _day,
            "weekday": _weekday,
            "daypart": lambda r: daypart(_hour(r)),
            "hour": _hour,
            "district": "district",
            "station": "name",
            "status": "status",
            "station_size": lambda r: capacity_bucket(int(r["capacity"])),
        },
        measure_field="available_bikes",
        measure_cast=int,
    )


def bikes_pipeline(schema: Optional[CubeSchema] = None) -> EtlPipeline:
    """Ready-made ETL pipeline for bike feed documents (XML or JSON)."""
    return EtlPipeline(
        bikes_mapping(schema),
        record_tag="station",
        records_path="stations",
    )
