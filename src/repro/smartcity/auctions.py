"""Online-auction feed (JSON): closing lots harvested from an auction site.

One of the paper's "not directly associated with the smart city project"
sources that still feed the cubes (§1).
"""

from __future__ import annotations

import datetime as dt
import json
from typing import Dict, List, Optional

from repro.core.schema import CubeSchema, Dimension
from repro.etl.documents import SourceDocument
from repro.etl.extractor import FactMapping
from repro.etl.pipeline import EtlPipeline
from repro.etl.stream import DocumentStream
from repro.smartcity.city import CityModel

FEED_START = dt.datetime(2015, 6, 1, 0, 0, 0)

_CATEGORIES = ("electronics", "furniture", "vehicles", "collectibles", "fashion", "sports")
_CONDITIONS = ("new", "used", "refurbished")


class AuctionFeedGenerator:
    """Synthesises batches of closed auction lots."""

    def __init__(self, city: Optional[CityModel] = None) -> None:
        self.city = city or CityModel()
        self._rng = self.city.rng("auctions")

    def generate_documents(self, days: int, lots_per_day: int = 120) -> DocumentStream:
        documents = []
        lot_number = 0
        for day_index in range(days):
            day = (FEED_START + dt.timedelta(days=day_index)).date()
            lots: List[Dict] = []
            for _ in range(lots_per_day):
                lot_number += 1
                category = self._rng.choice(_CATEGORIES)
                start_price = self._rng.randint(5, 400)
                n_bids = self._rng.randint(0, 25)
                final_price = start_price + int(start_price * 0.12 * n_bids)
                lots.append(
                    {
                        "lot": lot_number,
                        "category": category,
                        "condition": self._rng.choice(_CONDITIONS),
                        "seller_district": self._rng.choice(self.city.districts),
                        "bids": n_bids,
                        "final_price": final_price,
                        "closed_on": day.isoformat(),
                    }
                )
            payload = {"site": "dublin-auctions", "date": day.isoformat(), "lots": lots}
            documents.append(
                SourceDocument(json.dumps(payload), "json", source="auctions", sequence=day_index)
            )
        return DocumentStream(documents)


def auctions_schema(name: str = "auctions") -> CubeSchema:
    return CubeSchema(
        name,
        [
            Dimension("day"),
            Dimension("category"),
            Dimension("condition"),
            Dimension("seller_district"),
        ],
        measure="final_price",
    )


def auctions_mapping(schema: Optional[CubeSchema] = None) -> FactMapping:
    return FactMapping(
        schema or auctions_schema(),
        dimension_fields={
            "day": "closed_on",
            "category": "category",
            "condition": "condition",
            "seller_district": "seller_district",
        },
        measure_field="final_price",
    )


def auctions_pipeline(schema: Optional[CubeSchema] = None) -> EtlPipeline:
    return EtlPipeline(auctions_mapping(schema), records_path="lots")
