"""A deterministic model of the city behind all synthetic feeds.

All generators share one :class:`CityModel` so that entities are
consistent across services (the bike station in "Dublin 2" and the air
quality sensor in "Dublin 2" refer to the same district) and every run
with the same seed reproduces byte-identical feeds.
"""

from __future__ import annotations

import random
from typing import List, Sequence

#: Street-name stems used to synthesise station/car-park addresses.
_STREETS = [
    "Fenian", "Pearse", "Dame", "Capel", "Parnell", "Gardiner", "Baggot",
    "Leeson", "Camden", "Thomas", "James", "Bolton", "Dorset", "Eccles",
    "Talbot", "Abbey", "Store", "Mayor", "Sheriff", "Foley", "Mount",
    "Merrion", "Fitzwilliam", "Hatch", "Harcourt", "Aungier", "Bride",
    "Francis", "Meath", "Cork", "Newmarket", "Clanbrassil", "Heytesbury",
    "Grantham", "Pleasants", "Kevin", "Bishop", "Golden", "Chancery",
    "Ormond", "Arran", "Usher", "Watling", "Bonham", "Echlin", "Grand",
    "Charlemont", "Portobello", "Rathmines", "Ranelagh", "Sandwith",
    "Erne", "Lombard", "Westland", "Denzille", "Holles", "Ely", "Hume",
]

_STREET_KINDS = ["St", "Row", "Quay", "Place", "Square", "Lane", "Road"]

#: Postal districts; each entity is assigned one.
_DISTRICTS = [f"Dublin {n}" for n in (1, 2, 3, 4, 6, 7, 8, 9, 11, 12, 13, 15)]


class Station:
    """A bike-share station."""

    __slots__ = ("number", "name", "district", "latitude", "longitude", "capacity")

    def __init__(self, number, name, district, latitude, longitude, capacity):
        self.number = number
        self.name = name
        self.district = district
        self.latitude = latitude
        self.longitude = longitude
        self.capacity = capacity

    def __repr__(self) -> str:
        return f"Station({self.number}, {self.name!r}, {self.district!r})"


class CityModel:
    """Deterministic registry of city entities.

    Parameters
    ----------
    seed:
        Seed for all derived randomness; identical seeds reproduce
        identical cities and feeds.
    """

    def __init__(self, seed: int = 20160315) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def rng(self, stream: str) -> random.Random:
        """An independent deterministic RNG for one feed type."""
        return random.Random(f"{self.seed}:{stream}")

    @property
    def districts(self) -> Sequence[str]:
        return tuple(_DISTRICTS)

    def street_names(self, count: int, stream: str) -> List[str]:
        """``count`` distinct street names like ``"Fenian St"``."""
        rng = self.rng(f"streets:{stream}")
        names: List[str] = []
        seen = set()
        while len(names) < count:
            name = f"{rng.choice(_STREETS)} {rng.choice(_STREET_KINDS)}"
            if name in seen:
                name = f"{name} {('Upper', 'Lower', 'North', 'South')[len(names) % 4]}"
            if name in seen:
                name = f"{name} {len(names)}"
            seen.add(name)
            names.append(name)
        return names

    def bike_stations(self, count: int) -> List[Station]:
        """Deterministic bike-share stations spread over the districts."""
        rng = self.rng("bikes")
        names = self.street_names(count, "bikes")
        stations: List[Station] = []
        for number, name in enumerate(names, start=1):
            district = _DISTRICTS[(number * 7) % len(_DISTRICTS)]
            stations.append(
                Station(
                    number=number,
                    name=name,
                    district=district,
                    latitude=round(53.33 + rng.uniform(-0.05, 0.05), 6),
                    longitude=round(-6.26 + rng.uniform(-0.06, 0.06), 6),
                    capacity=rng.choice((15, 20, 20, 25, 30, 30, 35, 40)),
                )
            )
        return stations


def daypart(hour: int) -> str:
    """Coarse time-of-day bucket used as a cube dimension."""
    if 0 <= hour < 7:
        return "night"
    if hour < 10:
        return "morning-peak"
    if hour < 16:
        return "daytime"
    if hour < 19:
        return "evening-peak"
    if hour < 24:
        return "evening"
    raise ValueError(f"hour out of range: {hour}")


def capacity_bucket(capacity: int) -> str:
    """Station-size bucket used as a cube dimension."""
    if capacity <= 20:
        return "small"
    if capacity <= 30:
        return "medium"
    return "large"
