"""Retail sales feed (XML): daily point-of-sale rollups.

The last of the paper's intro sources; exercises an XML feed whose
records carry pre-aggregated measures.
"""

from __future__ import annotations

import datetime as dt
from typing import Optional

from repro.core.schema import CubeSchema, Dimension
from repro.etl.documents import SourceDocument
from repro.etl.extractor import FactMapping
from repro.etl.pipeline import EtlPipeline
from repro.etl.stream import DocumentStream
from repro.smartcity.city import CityModel

FEED_START = dt.datetime(2015, 6, 1, 0, 0, 0)

_PRODUCT_LINES = ("grocery", "beverages", "household", "electronics", "clothing")


class SalesFeedGenerator:
    """Synthesises daily per-store, per-product-line sales documents."""

    def __init__(self, city: Optional[CityModel] = None, n_stores: int = 12) -> None:
        self.city = city or CityModel()
        names = self.city.street_names(n_stores, "sales")
        districts = self.city.districts
        self.stores = [
            {"code": f"S{index:02d}", "name": f"{name} Store", "district": districts[index % len(districts)]}
            for index, name in enumerate(names, start=1)
        ]
        self._rng = self.city.rng("sales-values")

    def generate_documents(self, days: int) -> DocumentStream:
        documents = []
        for day_index in range(days):
            day = (FEED_START + dt.timedelta(days=day_index)).date()
            weekend_boost = 1.4 if day.weekday() >= 5 else 1.0
            parts = [f'<sales date="{day.isoformat()}">\n']
            for store in self.stores:
                for line in _PRODUCT_LINES:
                    units = int(self._rng.randint(40, 400) * weekend_boost)
                    parts.append(
                        "  <record>"
                        f"<store>{store['name']}</store>"
                        f"<district>{store['district']}</district>"
                        f"<product_line>{line}</product_line>"
                        f"<units>{units}</units>"
                        f"<revenue>{units * self._rng.randint(3, 40)}</revenue>"
                        "</record>\n"
                    )
            parts.append("</sales>\n")
            documents.append(
                SourceDocument("".join(parts), "xml", source="sales", sequence=day_index)
            )
        return DocumentStream(documents)


def sales_schema(name: str = "sales") -> CubeSchema:
    return CubeSchema(
        name,
        [
            Dimension("day"),
            Dimension("district"),
            Dimension("store", dimension_table="Store"),
            Dimension("product_line"),
        ],
        measure="revenue",
    )


def sales_mapping(schema: Optional[CubeSchema] = None) -> FactMapping:
    return FactMapping(
        schema or sales_schema(),
        dimension_fields={
            "day": "date",
            "district": "district",
            "store": "store",
            "product_line": "product_line",
        },
        measure_field="revenue",
    )


def sales_pipeline(schema: Optional[CubeSchema] = None) -> EtlPipeline:
    return EtlPipeline(sales_mapping(schema), record_tag="record", context_fields=("date",))
