"""Car-park occupancy feed (XML), one of the paper's intro data sources."""

from __future__ import annotations

import datetime as dt
import math
from typing import Dict, List, Optional

from repro.core.schema import CubeSchema, Dimension
from repro.etl.documents import SourceDocument
from repro.etl.extractor import FactMapping
from repro.etl.pipeline import EtlPipeline
from repro.etl.stream import DocumentStream
from repro.smartcity.city import CityModel, daypart

FEED_START = dt.datetime(2015, 6, 1, 0, 0, 0)

_ZONES = ("city-centre", "docklands", "northside", "southside")


class CarPark:
    __slots__ = ("code", "name", "zone", "spaces")

    def __init__(self, code: str, name: str, zone: str, spaces: int) -> None:
        self.code = code
        self.name = name
        self.zone = zone
        self.spaces = spaces


class CarParkFeedGenerator:
    """Synthesises the city council's car-park occupancy XML feed."""

    def __init__(self, city: Optional[CityModel] = None, n_carparks: int = 24) -> None:
        self.city = city or CityModel()
        rng = self.city.rng("carparks")
        names = self.city.street_names(n_carparks, "carparks")
        self.carparks: List[CarPark] = [
            CarPark(
                code=f"CP{index:03d}",
                name=f"{name} Car Park",
                zone=_ZONES[index % len(_ZONES)],
                spaces=rng.choice((150, 220, 300, 420, 600)),
            )
            for index, name in enumerate(names, start=1)
        ]
        self._rng = self.city.rng("carparks-occupancy")

    def occupancy(self, carpark: CarPark, when: dt.datetime) -> int:
        hour = when.hour + when.minute / 60.0
        weekend = when.weekday() >= 5
        base = 0.35 + 0.45 * math.exp(-((hour - (14.0 if weekend else 11.0)) ** 2) / 18.0)
        noise = self._rng.uniform(-0.08, 0.08)
        fraction = min(1.0, max(0.02, base + noise))
        return int(round(fraction * carpark.spaces))

    def generate_documents(self, days: int, snapshots_per_day: int = 48) -> DocumentStream:
        documents = []
        step = dt.timedelta(seconds=24 * 3600 // snapshots_per_day)
        for index in range(days * snapshots_per_day):
            when = FEED_START + index * step
            documents.append(
                SourceDocument(self._render_xml(when), "xml", source="carparks", sequence=index)
            )
        return DocumentStream(documents)

    def _render_xml(self, when: dt.datetime) -> str:
        parts = [f'<carparks timestamp="{when.isoformat()}">\n']
        for carpark in self.carparks:
            taken = self.occupancy(carpark, when)
            parts.append(
                "  <carpark>"
                f"<code>{carpark.code}</code>"
                f"<name>{carpark.name}</name>"
                f"<zone>{carpark.zone}</zone>"
                f"<spaces>{carpark.spaces}</spaces>"
                f"<occupied>{taken}</occupied>"
                f"<free>{carpark.spaces - taken}</free>"
                f"<updated>{when.isoformat()}</updated>"
                "</carpark>\n"
            )
        parts.append("</carparks>\n")
        return "".join(parts)


def carpark_schema(name: str = "carparks") -> CubeSchema:
    return CubeSchema(
        name,
        [
            Dimension("day"),
            Dimension("daypart"),
            Dimension("zone"),
            Dimension("carpark", dimension_table="CarPark"),
        ],
        measure="occupied",
    )


def carpark_mapping(schema: Optional[CubeSchema] = None) -> FactMapping:
    def _hour(record: Dict) -> int:
        return int(str(record["updated"])[11:13])

    return FactMapping(
        schema or carpark_schema(),
        dimension_fields={
            "day": lambda r: str(r["updated"])[:10],
            "daypart": lambda r: daypart(_hour(r)),
            "zone": "zone",
            "carpark": "name",
        },
        measure_field="occupied",
    )


def carpark_pipeline(schema: Optional[CubeSchema] = None) -> EtlPipeline:
    return EtlPipeline(carpark_mapping(schema), record_tag="carpark")
