"""Air-quality sensor feed (JSON), one of the paper's intro data sources."""

from __future__ import annotations

import datetime as dt
import json
import math
from typing import Dict, List, Optional

from repro.core.aggregators import AVG
from repro.core.schema import CubeSchema, Dimension
from repro.etl.documents import SourceDocument
from repro.etl.extractor import FactMapping
from repro.etl.pipeline import EtlPipeline
from repro.etl.stream import DocumentStream
from repro.smartcity.city import CityModel, daypart

FEED_START = dt.datetime(2015, 6, 1, 0, 0, 0)

_POLLUTANTS = ("no2", "pm10", "pm25", "o3")


class Sensor:
    __slots__ = ("sensor_id", "district", "latitude", "longitude")

    def __init__(self, sensor_id: str, district: str, latitude: float, longitude: float) -> None:
        self.sensor_id = sensor_id
        self.district = district
        self.latitude = latitude
        self.longitude = longitude


class AirQualityFeedGenerator:
    """Synthesises a JSON air-quality sensor network feed."""

    def __init__(self, city: Optional[CityModel] = None, n_sensors: int = 16) -> None:
        self.city = city or CityModel()
        rng = self.city.rng("airquality")
        districts = self.city.districts
        self.sensors: List[Sensor] = [
            Sensor(
                sensor_id=f"AQ-{index:02d}",
                district=districts[index % len(districts)],
                latitude=round(53.33 + rng.uniform(-0.06, 0.06), 6),
                longitude=round(-6.26 + rng.uniform(-0.07, 0.07), 6),
            )
            for index in range(1, n_sensors + 1)
        ]
        self._rng = self.city.rng("airquality-values")

    def reading(self, sensor: Sensor, pollutant: str, when: dt.datetime) -> float:
        hour = when.hour
        traffic = 1.0 + 0.6 * math.exp(-((hour - 8.5) ** 2) / 6.0)
        traffic += 0.5 * math.exp(-((hour - 17.5) ** 2) / 6.0)
        base = {"no2": 28.0, "pm10": 16.0, "pm25": 9.0, "o3": 52.0}[pollutant]
        if pollutant == "o3":
            traffic = 2.0 - traffic * 0.5  # ozone dips with traffic NOx
        return round(base * traffic + self._rng.uniform(-2.0, 2.0), 1)

    def generate_documents(self, days: int, snapshots_per_day: int = 24) -> DocumentStream:
        documents = []
        step = dt.timedelta(seconds=24 * 3600 // snapshots_per_day)
        for index in range(days * snapshots_per_day):
            when = FEED_START + index * step
            readings = [
                {
                    "sensor": sensor.sensor_id,
                    "district": sensor.district,
                    "pollutant": pollutant,
                    "value": self.reading(sensor, pollutant, when),
                    "unit": "ug/m3",
                    "observed_at": when.isoformat(),
                }
                for sensor in self.sensors
                for pollutant in _POLLUTANTS
            ]
            payload = {"network": "dublin-air", "timestamp": when.isoformat(), "readings": readings}
            documents.append(
                SourceDocument(json.dumps(payload), "json", source="air-quality", sequence=index)
            )
        return DocumentStream(documents)


def airquality_schema(name: str = "airquality") -> CubeSchema:
    return CubeSchema(
        name,
        [
            Dimension("day"),
            Dimension("daypart"),
            Dimension("district"),
            Dimension("sensor", dimension_table="Sensor"),
            Dimension("pollutant"),
        ],
        measure="value",
        aggregator=AVG,
    )


def airquality_mapping(schema: Optional[CubeSchema] = None) -> FactMapping:
    def _hour(record: Dict) -> int:
        return int(str(record["observed_at"])[11:13])

    return FactMapping(
        schema or airquality_schema(),
        dimension_fields={
            "day": lambda r: str(r["observed_at"])[:10],
            "daypart": lambda r: daypart(_hour(r)),
            "district": "district",
            "sensor": "sensor",
            "pollutant": "pollutant",
        },
        measure_field="value",
        measure_cast=float,
    )


def airquality_pipeline(schema: Optional[CubeSchema] = None) -> EtlPipeline:
    return EtlPipeline(airquality_mapping(schema), records_path="readings")
