"""Synthetic smart-city data sources (paper §1's stream inventory).

Every generator is deterministic under its :class:`CityModel` seed and
ships a ready-made cube schema, field mapping and ETL pipeline, so an
example can go feed → cube in three calls.
"""

from repro.smartcity.airquality import (
    AirQualityFeedGenerator,
    airquality_mapping,
    airquality_pipeline,
    airquality_schema,
)
from repro.smartcity.auctions import (
    AuctionFeedGenerator,
    auctions_mapping,
    auctions_pipeline,
    auctions_schema,
)
from repro.smartcity.bikes import (
    BikeFeedGenerator,
    bikes_mapping,
    bikes_pipeline,
    bikes_schema,
)
from repro.smartcity.carpark import (
    CarParkFeedGenerator,
    carpark_mapping,
    carpark_pipeline,
    carpark_schema,
)
from repro.smartcity.city import CityModel, Station, capacity_bucket, daypart
from repro.smartcity.sales import (
    SalesFeedGenerator,
    sales_mapping,
    sales_pipeline,
    sales_schema,
)

__all__ = [
    "AirQualityFeedGenerator",
    "AuctionFeedGenerator",
    "BikeFeedGenerator",
    "CarParkFeedGenerator",
    "CityModel",
    "SalesFeedGenerator",
    "Station",
    "airquality_mapping",
    "airquality_pipeline",
    "airquality_schema",
    "auctions_mapping",
    "auctions_pipeline",
    "auctions_schema",
    "bikes_mapping",
    "bikes_pipeline",
    "bikes_schema",
    "capacity_bucket",
    "carpark_mapping",
    "carpark_pipeline",
    "carpark_schema",
    "daypart",
    "sales_mapping",
    "sales_pipeline",
    "sales_schema",
]
