"""Declarative cube queries: slices, dices, ranges and group-bys.

The point-query path lives on :class:`~repro.dwarf.cube.DwarfCube`; this
module adds the multi-result query primitives the paper's conclusion calls
"efficient query primitives for our DWARF cubes".  A query assigns one
*constraint* per dimension:

``Member(k)``
    fix the dimension to one member (slice);
``In(keys)``
    any of a set of members (dice);
``Range(lo, hi)``
    inclusive member range, using the cube's sorted cell order;
``Each()``
    enumerate every member — the dimension appears in the result
    coordinates (group-by);
``All()``
    aggregate the dimension away via its ALL cells (the default for
    dimensions a query does not mention).

Results stream as ``(coordinates, value)`` pairs where ``coordinates``
contains one entry per ``Each``/``Member``/``In``/``Range`` dimension in
schema order.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.core.errors import QueryError
from repro.dwarf.cell import ALL
from repro.dwarf.cube import DwarfCube
from repro.dwarf.node import DwarfNode


class Constraint:
    """Base class for per-dimension query constraints."""

    #: whether the dimension contributes a coordinate to result rows
    grouped = True

    def matching_cells(self, node: DwarfNode):
        raise NotImplementedError


class Member(Constraint):
    """Fix a dimension to exactly one member."""

    def __init__(self, key) -> None:
        self.key = key

    def matching_cells(self, node: DwarfNode):
        cell = node.cell(self.key)
        return [cell] if cell is not None else []

    def __repr__(self) -> str:
        return f"Member({self.key!r})"


class In(Constraint):
    """Restrict a dimension to a set of members (dice)."""

    def __init__(self, keys) -> None:
        self.keys = frozenset(keys)

    def matching_cells(self, node: DwarfNode):
        return [cell for cell in node.cells() if cell.key in self.keys]

    def __repr__(self) -> str:
        return f"In({sorted(self.keys, key=repr)!r})"


class Range(Constraint):
    """Inclusive range ``lo <= member <= hi`` over one dimension."""

    def __init__(self, lo, hi) -> None:
        if hi < lo:
            raise QueryError(f"empty range: {lo!r}..{hi!r}")
        self.lo = lo
        self.hi = hi

    def matching_cells(self, node: DwarfNode):
        matching = []
        for cell in node.cells():
            try:
                inside = self.lo <= cell.key <= self.hi
            except TypeError:
                continue  # mixed-type member not comparable to the bounds
            if inside:
                matching.append(cell)
        return matching

    def __repr__(self) -> str:
        return f"Range({self.lo!r}, {self.hi!r})"


class Each(Constraint):
    """Enumerate all members of a dimension (group-by)."""

    def matching_cells(self, node: DwarfNode):
        return list(node.cells())

    def __repr__(self) -> str:
        return "Each()"


class All(Constraint):
    """Aggregate a dimension away through its ALL cell."""

    grouped = False

    def matching_cells(self, node: DwarfNode):
        return [node.all_cell] if node.all_cell is not None else []

    def __repr__(self) -> str:
        return "All()"


ConstraintSpec = Union[Constraint, Mapping[str, Constraint], None]


def select(
    cube: DwarfCube,
    constraints: Optional[Mapping[str, Constraint]] = None,
    **by_name: Constraint,
) -> Iterator[Tuple[Tuple, object]]:
    """Run a declarative query against ``cube``.

    Constraints are given as a ``{dimension_name: Constraint}`` mapping or
    as keyword arguments; unmentioned dimensions default to :class:`All`.
    Yields ``(coordinates, value)`` with coordinates for grouped
    dimensions in schema order.

    >>> select(cube, country=Member("Ireland"), city=Each())  # doctest: +SKIP
    """
    if constraints and by_name:
        raise QueryError("pass either a constraints mapping or keywords, not both")
    spec: Dict[str, Constraint] = dict(constraints or by_name)

    schema = cube.schema
    per_level: List[Constraint] = [All()] * schema.n_dimensions
    for name, constraint in spec.items():
        if not isinstance(constraint, Constraint):
            raise QueryError(
                f"constraint for {name!r} must be a Constraint, got {constraint!r}"
            )
        per_level[schema.dimension_index(name)] = constraint

    finalize = schema.aggregator.finalize
    n_dims = schema.n_dimensions

    def walk(node: Optional[DwarfNode], level: int, coords: Tuple):
        if node is None:
            return
        constraint = per_level[level]
        for cell in constraint.matching_cells(node):
            next_coords = coords + (cell.key,) if constraint.grouped else coords
            if level == n_dims - 1:
                yield next_coords, finalize(cell.value)
            else:
                yield from walk(cell.node, level + 1, next_coords)

    if cube.root.n_cells:
        yield from walk(cube.root, 0, ())


def slice_cube(cube: DwarfCube, **fixed) -> Iterator[Tuple[Tuple, object]]:
    """Slice: fix the given dimensions, group by every other dimension."""
    spec: Dict[str, Constraint] = {
        name: Member(member) for name, member in fixed.items()
    }
    for name in cube.schema.dimension_names:
        if name not in spec:
            spec[name] = Each()
    return select(cube, spec)
