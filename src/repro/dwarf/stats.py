"""DWARF cube statistics.

The ``DWARF_Schema`` column family (paper Table 1-A) records ``node_count``,
``cell_count`` and ``size_as_mb`` per schema; these are obtained "by
scanning the DWARF structure in-memory" (paper §4).  This module performs
that scan.

The storage structures the cube lands in report themselves the same way:
:meth:`repro.storage.btree.BTree.stats`,
:meth:`repro.nosqldb.sstable.SSTable.stats` and
:meth:`repro.nosqldb.columnfamily.ColumnFamily.stats` are re-exported
here (as :class:`BTreeStats` / :class:`SSTableStats` /
:class:`ColumnFamilyStats`, the latter carrying the read-path
:class:`CacheStats` counters), and :func:`describe` dispatches a cube,
tree or table to the right summary.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

from repro.dwarf.traversal import breadth_first
from repro.nosqldb.cache import CacheStats
from repro.nosqldb.columnfamily import ColumnFamilyStats
from repro.nosqldb.sstable import SSTableStats
from repro.storage.btree import BTreeStats

__all__ = [
    "BTreeStats",
    "CacheStats",
    "ColumnFamilyStats",
    "CubeStats",
    "SSTableStats",
    "compute_stats",
    "describe",
]


class CubeStats(NamedTuple):
    """Counts gathered by one full traversal of a DWARF."""

    node_count: int
    cell_count: int          # ordinary + ALL cells
    leaf_cell_count: int     # cells holding measures
    all_cell_count: int      # one per closed node
    shared_node_count: int   # nodes with >1 parent cell (suffix coalescing)
    max_depth: int           # deepest level observed (== n_dims - 1)
    cells_per_level: Dict[int, int]

    @property
    def estimated_bytes(self) -> int:
        """Rough in-memory footprint used for ``size_as_mb`` previews.

        48 bytes per node and 72 per cell approximate the CPython object
        cost of the ``__slots__`` classes; the stored size is always
        re-probed from the storage engine afterwards (paper §4).
        """
        return 48 * self.node_count + 72 * self.cell_count


def compute_stats(cube) -> CubeStats:
    """Scan ``cube`` once and gather :class:`CubeStats`."""
    node_count = 0
    cell_count = 0
    leaf_cells = 0
    all_cells = 0
    max_depth = 0
    cells_per_level: Dict[int, int] = {}
    parent_counts: Dict[int, int] = {}
    nodes_by_id = {}

    for visit in breadth_first(cube.root):
        if visit.cell is None:
            node_count += 1
            max_depth = max(max_depth, visit.node.level)
            nodes_by_id[id(visit.node)] = visit.node
        else:
            cell_count += 1
            level = visit.node.level
            cells_per_level[level] = cells_per_level.get(level, 0) + 1
            if visit.cell.is_leaf:
                leaf_cells += 1
            else:
                child_id = id(visit.cell.node)
                parent_counts[child_id] = parent_counts.get(child_id, 0) + 1
            if visit.cell.is_all:
                all_cells += 1

    shared = sum(1 for count in parent_counts.values() if count > 1)
    return CubeStats(
        node_count=node_count,
        cell_count=cell_count,
        leaf_cell_count=leaf_cells,
        all_cell_count=all_cells,
        shared_node_count=shared,
        max_depth=max_depth,
        cells_per_level=cells_per_level,
    )


def describe(target):
    """One-stop stats: cube → :class:`CubeStats`, storage structure → its own.

    Accepts a :class:`~repro.dwarf.cube.DwarfCube` (traversed via
    :func:`compute_stats`), a query-kernel :class:`~repro.query.Plan` or
    operator node (per-operator execution counters via
    ``operator_stats()``), a telemetry
    :class:`~repro.telemetry.MetricsRegistry` or
    :class:`~repro.telemetry.Tracer` (rendered to their table / span-tree
    text), a merged span forest (the list
    :meth:`~repro.telemetry.Tracer.merged` returns, rendered the same
    way), or anything exposing a ``stats()`` method —
    :class:`~repro.storage.btree.BTree`,
    :class:`~repro.nosqldb.sstable.SSTable`,
    :class:`~repro.nosqldb.columnfamily.ColumnFamily` and
    :class:`~repro.query.PlanCache` today.

    Raises TypeError for objects with none of those shapes, naming every
    accepted one.
    """
    from repro.dwarf.cube import DwarfCube
    from repro.query import Plan, PlanNode
    from repro.telemetry import (
        MetricsRegistry,
        Tracer,
        render_metrics_table,
        render_span_tree,
        snapshot,
    )

    if isinstance(target, DwarfCube):
        return compute_stats(target)
    if isinstance(target, (Plan, PlanNode)):
        return target.operator_stats()
    if isinstance(target, MetricsRegistry):
        return render_metrics_table(snapshot(registry=target, tracer=None))
    if isinstance(target, Tracer):
        return render_span_tree(target.merged())
    if isinstance(target, list) and all(
        isinstance(item, dict) and "name" in item for item in target
    ):
        return render_span_tree(target)
    stats = getattr(target, "stats", None)
    if callable(stats):
        return stats()
    raise TypeError(
        f"no stats available for {type(target).__name__}; describe() accepts "
        "a DwarfCube, a query Plan/PlanNode, a telemetry MetricsRegistry/"
        "Tracer, a merged span list, or any object with a stats() method"
    )
