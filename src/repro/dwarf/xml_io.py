"""XML cube interchange (the XCube idea of the paper's related work).

§6 discusses systems that "store data cubes in native XML format ...
aimed towards interoperability between data warehouses" ([4] XCube, [9]
Meta Cube-X).  This module provides that interchange path for our cubes:
:func:`export_cube_xml` writes a self-contained XML document (schema +
base facts), :func:`import_cube_xml` rebuilds an identical cube from it.

Base facts — not the coalesced structure — are exchanged: the DWARF is
an *encoding*, and any warehouse can rebuild its own from the facts,
which is precisely the interoperability argument of [4].
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.sax.saxutils import escape

from repro.core.errors import PipelineError
from repro.core.schema import CubeSchema, Dimension
from repro.core.tuples import TupleSet
from repro.dwarf.cube import DwarfCube

#: Format marker so importers can reject incompatible documents.
FORMAT_VERSION = "1.0"

_TYPE_TAGS = {"int": int, "float": float, "str": str, "bool": bool}


def _encode_value(value) -> tuple:
    """``(type_tag, text)`` for a dimension member or measure."""
    if isinstance(value, bool):
        return "bool", "1" if value else "0"
    if isinstance(value, int):
        return "int", str(value)
    if isinstance(value, float):
        return "float", repr(value)
    if isinstance(value, str):
        return "str", value
    raise PipelineError(f"cannot export value of type {type(value).__name__}")


def _decode_value(type_tag: str, text: str):
    if type_tag == "bool":
        return text == "1"
    caster = _TYPE_TAGS.get(type_tag)
    if caster is None:
        raise PipelineError(f"corrupt cube XML: unknown type tag {type_tag!r}")
    return caster(text)


def export_cube_xml(cube: DwarfCube) -> str:
    """Serialise ``cube`` (schema + base facts) to an XML document."""
    schema = cube.schema
    parts = [
        '<?xml version="1.0" encoding="UTF-8"?>\n',
        f'<cube name="{escape(schema.name, {chr(34): "&quot;"})}" '
        f'version="{FORMAT_VERSION}" measure="{escape(schema.measure)}" '
        f'aggregator="{schema.aggregator.name}">\n',
        "  <dimensions>\n",
    ]
    for dimension in schema.dimensions:
        table_attr = (
            f' table="{escape(dimension.dimension_table, {chr(34): "&quot;"})}"'
            if dimension.dimension_table
            else ""
        )
        parts.append(f'    <dimension name="{escape(dimension.name)}"{table_attr}/>\n')
    parts.append("  </dimensions>\n  <facts>\n")
    for coordinates, value in cube.leaves():
        parts.append("    <fact>")
        for member in coordinates:
            type_tag, text = _encode_value(member)
            parts.append(f'<d t="{type_tag}">{escape(text)}</d>')
        type_tag, text = _encode_value(value)
        parts.append(f'<m t="{type_tag}">{escape(text)}</m></fact>\n')
    parts.append("  </facts>\n</cube>\n")
    return "".join(parts)


def import_cube_xml(document: str) -> DwarfCube:
    """Rebuild a cube from :func:`export_cube_xml` output."""
    from repro.dwarf.builder import DwarfBuilder

    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise PipelineError(f"malformed cube XML: {exc}") from exc
    if root.tag != "cube":
        raise PipelineError(f"not a cube document (root <{root.tag}>)")
    if root.get("version") != FORMAT_VERSION:
        raise PipelineError(
            f"unsupported cube format version {root.get('version')!r}"
        )

    dimensions_element = root.find("dimensions")
    facts_element = root.find("facts")
    if dimensions_element is None or facts_element is None:
        raise PipelineError("cube XML misses <dimensions> or <facts>")

    dimensions = [
        Dimension(element.get("name"), dimension_table=element.get("table"))
        for element in dimensions_element.findall("dimension")
    ]
    schema = CubeSchema(
        root.get("name") or "imported",
        dimensions,
        measure=root.get("measure") or "measure",
        aggregator=root.get("aggregator") or "sum",
    )

    facts = TupleSet(schema)
    n_dims = schema.n_dimensions
    for fact_element in facts_element.findall("fact"):
        members = [
            _decode_value(d.get("t"), d.text or "")
            for d in fact_element.findall("d")
        ]
        measure_element = fact_element.find("m")
        if len(members) != n_dims or measure_element is None:
            raise PipelineError("cube XML fact does not match the declared schema")
        measure = _decode_value(measure_element.get("t"), measure_element.text or "")
        facts.append(tuple(members) + (measure,))
    return DwarfBuilder(schema).build(facts)
