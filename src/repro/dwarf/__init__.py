"""DWARF cube core: structures, construction, traversal and queries.

Implements the DWARF model of Sismanis et al. (SIGMOD 2002) as used by
the EDBT'16 paper: prefix/suffix-coalesced cubes built from sorted fact
tuples, plus the query primitives and the hierarchical extension the
paper discusses.
"""

from repro.dwarf.builder import DwarfBuilder, build_cube, merge_cubes
from repro.dwarf.cell import ALL, DwarfCell
from repro.dwarf.cube import DwarfCube
from repro.dwarf.delta import DeltaDwarfBuilder, merge_many
from repro.dwarf.hierarchy import DimensionHierarchy, drilldown, rollup
from repro.dwarf.node import DwarfNode
from repro.dwarf.parallel import ParallelDwarfBuilder, build_cube_parallel, resolve_workers
from repro.dwarf.query import All, Constraint, Each, In, Member, Range, select, slice_cube
from repro.dwarf.stats import CubeStats, compute_stats
from repro.dwarf.subcube import extract_subcube
from repro.dwarf.traversal import Visit, breadth_first, iter_cells, iter_nodes
from repro.dwarf.xml_io import export_cube_xml, import_cube_xml

__all__ = [
    "ALL",
    "All",
    "Constraint",
    "CubeStats",
    "DeltaDwarfBuilder",
    "DimensionHierarchy",
    "DwarfBuilder",
    "DwarfCell",
    "DwarfCube",
    "DwarfNode",
    "Each",
    "In",
    "Member",
    "ParallelDwarfBuilder",
    "Range",
    "Visit",
    "breadth_first",
    "build_cube",
    "build_cube_parallel",
    "compute_stats",
    "drilldown",
    "export_cube_xml",
    "extract_subcube",
    "import_cube_xml",
    "iter_cells",
    "iter_nodes",
    "merge_cubes",
    "merge_many",
    "resolve_workers",
    "rollup",
    "select",
    "slice_cube",
]
