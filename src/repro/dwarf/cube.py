"""The in-memory DWARF cube object and its query surface."""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

from repro.core.errors import QueryError
from repro.core.schema import CubeSchema
from repro.dwarf.cell import ALL, DwarfCell
from repro.dwarf.node import DwarfNode


class DwarfCube:
    """A constructed DWARF cube.

    Instances are produced by :class:`~repro.dwarf.builder.DwarfBuilder`
    (or rebuilt from storage by a mapper) and are immutable from the
    caller's point of view.

    Attributes
    ----------
    schema:
        The :class:`~repro.core.schema.CubeSchema` the cube was built for.
    root:
        The top-level :class:`~repro.dwarf.node.DwarfNode`.
    n_source_tuples:
        Number of fact tuples consumed during construction.
    n_merges:
        Number of distinct sub-dwarf merges performed by SuffixCoalesce
        (a cheap proxy for how much view computation coalescing shared).
    """

    __slots__ = ("schema", "root", "n_source_tuples", "n_merges", "_stats")

    def __init__(
        self,
        schema: CubeSchema,
        root: DwarfNode,
        n_source_tuples: int = 0,
        n_merges: int = 0,
    ) -> None:
        self.schema = schema
        self.root = root
        self.n_source_tuples = n_source_tuples
        self.n_merges = n_merges
        self._stats = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def value(
        self,
        coordinates: Union[Sequence, Mapping[str, object], None] = None,
        **by_name,
    ):
        """Point query.

        ``coordinates`` is either a full positional vector (one entry per
        dimension, using :data:`repro.dwarf.ALL` for "aggregate over this
        dimension") or a ``{dimension_name: member}`` mapping; dimensions
        not mentioned aggregate to ALL.  Keyword arguments are a shorthand
        for the mapping form.  Returns ``None`` when no fact matches.

        >>> cube.value(country="Ireland")          # doctest: +SKIP
        >>> cube.value(["Ireland", ALL, "Dublin"])  # doctest: +SKIP
        """
        vector = self._coordinate_vector(coordinates, by_name)
        node = self.root
        cell: Optional[DwarfCell] = None
        for key in vector:
            if node is None:
                return None
            cell = node.cell(key)
            if cell is None:
                return None
            node = cell.node
        if cell is None:  # zero-dimension impossible; defensive
            return None
        return self.schema.aggregator.finalize(cell.value)

    def total(self):
        """The grand total: every dimension aggregated to ALL."""
        return self.value([ALL] * self.schema.n_dimensions)

    def members(self, dimension: str) -> Tuple:
        """All members of ``dimension`` present in the cube, sorted.

        Follows ALL cells down to the dimension's level, which by
        construction reaches a node containing every member.
        """
        level = self.schema.dimension_index(dimension)
        node: Optional[DwarfNode] = self.root
        for _ in range(level):
            if node is None or node.all_cell is None:
                return ()
            node = node.all_cell.node
        if node is None:
            return ()
        return tuple(node.keys())

    def leaves(self) -> Iterator[Tuple[Tuple, object]]:
        """Iterate ``(dimension_vector, finalized_value)`` for the base facts.

        Only paths through ordinary cells (no ALL links) are followed, so
        this enumerates exactly the distinct dimension vectors of the
        source fact tuples with their aggregated measures.
        """
        finalize = self.schema.aggregator.finalize

        def walk(node: DwarfNode, prefix: Tuple):
            for cell in node.cells():
                if cell.is_leaf:
                    yield prefix + (cell.key,), finalize(cell.value)
                else:
                    yield from walk(cell.node, prefix + (cell.key,))

        if self.root.n_cells:
            yield from walk(self.root, ())

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _coordinate_vector(
        self,
        coordinates: Union[Sequence, Mapping[str, object], None],
        by_name: Dict[str, object],
    ) -> Tuple:
        n_dims = self.schema.n_dimensions
        if coordinates is not None and by_name:
            raise QueryError("pass either positional coordinates or keywords, not both")
        if coordinates is None:
            coordinates = by_name
        if isinstance(coordinates, Mapping):
            vector = [ALL] * n_dims
            for name, member in coordinates.items():
                vector[self.schema.dimension_index(name)] = member
            return tuple(vector)
        vector = tuple(coordinates)
        if len(vector) != n_dims:
            raise QueryError(
                f"expected {n_dims} coordinates for schema "
                f"{self.schema.name!r}, got {len(vector)}"
            )
        return vector

    @property
    def stats(self):
        """Node/cell counts and size estimate (computed once, cached)."""
        if self._stats is None:
            from repro.dwarf.stats import compute_stats

            self._stats = compute_stats(self)
        return self._stats

    def __repr__(self) -> str:
        return (
            f"DwarfCube(schema={self.schema.name!r}, "
            f"dims={self.schema.n_dimensions}, tuples={self.n_source_tuples})"
        )
