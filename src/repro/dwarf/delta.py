"""Delta-DWARF construction: the incremental-maintenance primitive.

The paper's conclusion points at maintenance "without full recompute":
build a small cube from the latest stream window and fold it into the
standing cube.  PR 1's parallel builder proved the enabling property —
a memo-seeded merge of independently built sub-dwarfs is structurally
identical to a cold rebuild over the union of their inputs — and
:class:`DeltaDwarfBuilder` turns that property into an append path:

* :meth:`~DeltaDwarfBuilder.build_delta` constructs a *delta cube* from
  one micro-batch of facts (an ordinary coalesced build, small because
  the batch is small);
* :meth:`~DeltaDwarfBuilder.merge` folds the base cube and any number of
  delta cubes into a new cube with **one multi-way SuffixCoalesce merge**
  — the same ``_merge`` the serial build uses for ALL cells — so the
  result carries the same prefix/suffix coalescing a rebuild would.

The merging builder is persistent: its merge memo survives across
:meth:`~DeltaDwarfBuilder.merge` calls, so sub-dwarfs shared between the
previous base and the new one (the overwhelming majority under append
workloads) coalesce from the memo instead of being re-merged — the same
seeding trick :class:`repro.dwarf.parallel.ParallelDwarfBuilder` uses to
stitch partition roots.  ``reset_memo()`` bounds memory between merges.

Because the multi-way merge takes its inputs as a *set* (the memo key is
id-sorted and the per-key union is an unordered dict fold over
commutative aggregator states), folding is order-insensitive and
associative: ``merge(base, d1, d2)`` has the same structural signature
as ``merge(base, d2, d1)``, as ``merge(merge(base, d1), d2)`` and as a
cold rebuild over the union of all source tuples — the invariant the
``cube.delta-consistency`` rule and the hypothesis suite verify.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.core.errors import SchemaError
from repro.core.schema import CubeSchema
from repro.core.tuples import TupleSet
from repro.dwarf.builder import DwarfBuilder
from repro.dwarf.cube import DwarfCube
from repro.telemetry import get_registry, get_tracer, wall_clock

__all__ = ["DeltaDwarfBuilder", "merge_many"]

_REGISTRY = get_registry()
_M_DELTA_BUILDS = _REGISTRY.counter(
    "dwarf_delta_builds_total", "delta cubes built from micro-batches"
)
_M_DELTA_MERGES = _REGISTRY.counter(
    "dwarf_delta_merges_total", "delta cubes folded into a base cube"
)
_H_DELTA_MERGE_SECONDS = _REGISTRY.histogram(
    "delta_merge_seconds", "wall-clock seconds folding delta cubes into the base"
)


class DeltaDwarfBuilder:
    """Build delta cubes from micro-batches and fold them into a base.

    One instance per maintained cube: the delta builds run through a
    dedicated :class:`DwarfBuilder` (whose per-build memo is reset by
    ``build()`` itself), while folds share a second, *persistent* builder
    whose merge memo seeds every subsequent fold.
    """

    def __init__(self, schema: CubeSchema, coalesce: bool = True) -> None:
        self.schema = schema
        self.coalesce = coalesce
        self._builder = DwarfBuilder(schema, coalesce=coalesce)
        self._merger = DwarfBuilder(schema, coalesce=coalesce)
        self._seeded_roots: set = set()

    # ------------------------------------------------------------------
    @property
    def memo_size(self) -> int:
        """Entries in the persistent fold memo (diagnostics and tests)."""
        return len(self._merger._merge_memo)

    def reset_memo(self) -> None:
        """Drop the persistent fold memo (bounds memory between merges)."""
        self._merger._merge_memo.clear()
        self._seeded_roots.clear()

    def _seed_memo(self, cube: DwarfCube) -> None:
        """Replay ``cube``'s own suffix-coalesce merges into the fold memo.

        A finished cube no longer carries its build memo, but every entry
        is recoverable from the structure itself: a node with more than
        one cell closed its ALL sub-dwarf as ``_merge(children)``, and
        inside each such merge the child under a key shared by several
        inputs is ``_merge`` of exactly those inputs' children.  Seeding
        these entries is what keeps the fold structurally identical to a
        cold rebuild: when the fold re-derives a rollup that lives wholly
        inside one input cube (e.g. a day that only the delta has seen),
        the memo hands back that cube's shared sub-dwarf instead of
        materialising a content-equal copy the rebuild would not have.
        """
        if id(cube.root) in self._seeded_roots:
            return
        self._seeded_roots.add(id(cube.root))
        memo = self._merger._merge_memo
        recorded: set = set()

        def record(result, inputs) -> None:
            if id(result) in recorded:
                return
            recorded.add(id(result))
            memo.setdefault(tuple(sorted(inputs, key=id)), result)
            for key, cell in result._cells.items():
                if cell.is_leaf:
                    continue
                sources = [
                    node._cells[key].node for node in inputs
                    if key in node._cells
                ]
                if len(sources) > 1:
                    record(cell.node, sources)

        seen: set = set()

        def walk(node) -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            for cell in node._cells.values():
                if not cell.is_leaf:
                    walk(cell.node)
            all_cell = node.all_cell
            if all_cell is not None and not all_cell.is_leaf:
                if node.n_cells > 1:
                    record(all_cell.node, [c.node for c in node.cells()])
                walk(all_cell.node)

        walk(cube.root)

    # ------------------------------------------------------------------
    def build_delta(self, facts: Union[TupleSet, Iterable[Sequence]]) -> DwarfCube:
        """A small coalesced cube over one micro-batch of facts."""
        with get_tracer().span("ingest.delta_build", schema=self.schema.name):
            cube = self._builder.build(facts)
        _M_DELTA_BUILDS.inc()
        return cube

    def merge(self, base: DwarfCube, *deltas: DwarfCube) -> DwarfCube:
        """Fold ``deltas`` into ``base`` with one multi-way merge.

        Returns a new :class:`DwarfCube`; ``base`` and the deltas are not
        mutated (though sub-dwarfs present in a single input are shared,
        not copied, exactly like the serial build's ALL cells).
        """
        for delta in deltas:
            if delta.schema != base.schema:
                raise SchemaError(
                    f"cannot merge cubes with different schemas: "
                    f"{base.schema.name!r} vs {delta.schema.name!r}"
                )
        if not deltas:
            return base
        t0 = wall_clock()
        roots = (base.root,) + tuple(delta.root for delta in deltas)
        with get_tracer().span(
            "ingest.merge", schema=self.schema.name, deltas=len(deltas)
        ):
            if self.coalesce:
                for cube in (base,) + deltas:
                    self._seed_memo(cube)
            root = self._merger._merge(roots)
        merged = DwarfCube(
            self.schema,
            root,
            n_source_tuples=base.n_source_tuples
            + sum(delta.n_source_tuples for delta in deltas),
            n_merges=len(self._merger._merge_memo),
        )
        _M_DELTA_MERGES.inc(len(deltas))
        _H_DELTA_MERGE_SECONDS.observe(wall_clock() - t0)
        from repro.analysis.flags import checks_enabled

        if checks_enabled():
            from repro.analysis.runner import runtime_check

            # REPRO_CHECK=1 sanitizer mode: a freshly folded cube must
            # satisfy the same structural invariants as a cold build.
            runtime_check(
                merged,
                label=f"DeltaDwarfBuilder.merge[{self.schema.name}]",
                coalesce=self.coalesce,
            )
        return merged


def merge_many(
    base: DwarfCube,
    deltas: Sequence[DwarfCube],
    builder: Optional[DeltaDwarfBuilder] = None,
) -> DwarfCube:
    """One-call convenience: fold ``deltas`` into ``base``.

    Pass an existing :class:`DeltaDwarfBuilder` to reuse its persistent
    fold memo; otherwise a transient one is created.
    """
    if builder is None:
        builder = DeltaDwarfBuilder(base.schema, coalesce=True)
    return builder.merge(base, *deltas)
